//! # gpu-self-join
//!
//! A complete Rust reproduction of *GPU Accelerated Self-Join for the
//! Distance Similarity Metric* (Gowanlock & Karsin, 2018): the GPU-SJ
//! algorithm — ε-grid index, `GPUSELFJOINGLOBAL` kernel, UNICOMP work
//! avoidance, result-set batching — running on a software SIMT device
//! model, together with the paper's baselines (sequential R-tree
//! search-and-refine, multi-threaded Super-EGO, GPU brute force) and its
//! full evaluation harness.
//!
//! This crate is a facade: it re-exports the workspace's five libraries
//! so applications can depend on a single crate.
//!
//! ```
//! use gpu_self_join::prelude::*;
//!
//! let data = uniform(2, 1_000, 42);
//! let out = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
//! println!("avg neighbors: {:.2}", out.table.avg_neighbors());
//! # assert!(out.table.is_symmetric());
//! ```
//!
//! ## Crate map
//!
//! * [`join`] (`grid-join`) — the paper's contribution: [`GpuSelfJoin`],
//!   plus the join-plan IR every path executes through
//!   ([`join::plan`]) and the dataset-resident query session layer
//!   ([`SelfJoinSession`]).
//! * [`gpu`] (`sim-gpu`) — the simulated device substrate.
//! * [`shard`] (`sj-shard`) — the sharded multi-device engine:
//!   [`ShardedSelfJoin`].
//! * [`serve`] (`sj-serve`) — the multi-tenant query service:
//!   [`SelfJoinService`] (admission control, fair-share scheduling, LRU
//!   snapshot eviction over a shared pool).
//! * [`baseline_rtree`] (`rtree`) — CPU-RTREE.
//! * [`baseline_superego`] (`superego`) — Super-EGO.
//! * [`datasets`] (`sj-datasets`) — workload generators (Table I).
//! * [`clustering`] (`sj-clustering`) — DBSCAN over the neighbour table.

pub use grid_join as join;
pub use rtree as baseline_rtree;
pub use sim_gpu as gpu;
pub use sj_clustering as clustering;
pub use sj_datasets as datasets;
pub use sj_serve as serve;
pub use sj_shard as shard;
pub use superego as baseline_superego;

pub use grid_join::{
    Backend, GpuSelfJoin, GridIndex, HotPath, JoinPlan, NeighborTable, Pair, ProjectedCost,
    SelfJoinConfig, SelfJoinError, SelfJoinOutput, SelfJoinSession, SessionConfig, SessionStats,
};
pub use sim_gpu::{Device, DeviceLease, DevicePool, DeviceSpec, MemoryLedger, PoolPressure};
pub use sj_serve::{
    AdmissionConfig, QueryRequest, SelfJoinService, ServeError, ServiceConfig, ServiceMetrics,
};
pub use sj_shard::{ShardedConfig, ShardedOutput, ShardedSelfJoin};

/// Convenience re-exports for examples and quick starts.
pub mod prelude {
    pub use grid_join::{
        gpu_brute_force, host_self_join, GpuSelfJoin, GridIndex, HotPath, NeighborTable, Pair,
        SelfJoinConfig, SelfJoinSession, SessionConfig,
    };
    pub use rtree::rtree_self_join;
    pub use sim_gpu::{Device, DevicePool, DeviceSpec};
    pub use sj_datasets::synthetic::{clustered, lattice, uniform};
    pub use sj_datasets::{euclidean, euclidean_sq, Dataset};
    pub use sj_serve::{QueryRequest, SelfJoinService, ServiceConfig};
    pub use sj_shard::{ShardedConfig, ShardedSelfJoin};
    pub use superego::SuperEgo;
}
