//! Set-associative L1 (unified) cache simulator.
//!
//! On Maxwell/Pascal the unified L1 cache acts as a coalescing buffer for
//! global loads (paper §VI-C, citing the Pascal tuning guide). Table II of
//! the paper explains UNICOMP's super-2× speedups in 5-D/6-D through higher
//! unified-cache utilization, i.e. more of the kernel's load traffic being
//! served from cache. This module provides the cache model that the
//! profiled kernel mode feeds with every traced load.
//!
//! The model is a classic set-associative LRU cache with configurable
//! capacity, line (sector) size and associativity; the TITAN X profile uses
//! 48 KiB per SM with 32-byte sectors (Pascal services global loads at
//! 32-byte sector granularity within 128-byte lines).

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line (sector) size in bytes. Must be a power of two.
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// Pascal-like unified cache: 48 KiB, 32 B sectors, 4-way.
    pub fn pascal_l1() -> Self {
        Self {
            capacity_bytes: 48 * 1024,
            line_bytes: 32,
            associativity: 4,
        }
    }

    fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.associativity)
    }
}

/// Aggregate cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Bytes requested by the kernel (load widths, not line fills).
    pub bytes_requested: u64,
    /// Bytes served from cache lines already resident (hit bytes).
    pub bytes_from_cache: u64,
    /// Bytes filled from simulated DRAM (miss lines × line size).
    pub bytes_from_dram: u64,
}

impl CacheStats {
    /// Hit rate over all accesses (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges statistics from another cache (e.g. another SM).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_requested += other.bytes_requested;
        self.bytes_from_cache += other.bytes_from_cache;
        self.bytes_from_dram += other.bytes_from_dram;
    }
}

/// A set-associative LRU cache over virtual addresses.
///
/// One instance models one SM's unified cache. Lines are tracked by tag;
/// LRU is maintained with a monotonic access clock (exact, not
/// pseudo-LRU — adequate for 4-way sets).
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s][w]` = (tag, last_access_tick); tag == u64::MAX means empty.
    sets: Vec<(u64, u64)>,
    tick: u64,
    stats: CacheStats,
    line_shift: u32,
    num_sets: u64,
}

const EMPTY: u64 = u64::MAX;

impl CacheSim {
    /// Creates a cold cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry is
    /// degenerate.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.associativity >= 1,
            "associativity must be at least 1"
        );
        let sets = config.num_sets();
        assert!(
            sets >= 1,
            "capacity too small for line size × associativity"
        );
        Self {
            config,
            sets: vec![(EMPTY, 0); sets * config.associativity],
            tick: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            num_sets: sets as u64,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Simulates a load of `bytes` at virtual address `addr`. Wide loads
    /// spanning multiple lines touch each line. Returns whether *all*
    /// touched lines hit.
    #[inline]
    pub fn access(&mut self, addr: u64, bytes: usize) -> bool {
        let first_line = addr >> self.line_shift;
        let last_line = (addr + bytes.max(1) as u64 - 1) >> self.line_shift;
        self.stats.bytes_requested += bytes as u64;
        let mut all_hit = true;
        for line in first_line..=last_line {
            let hit = self.touch_line(line);
            if hit {
                self.stats.hits += 1;
                self.stats.bytes_from_cache += bytes as u64;
            } else {
                self.stats.misses += 1;
                self.stats.bytes_from_dram += self.config.line_bytes as u64;
                all_hit = false;
            }
        }
        all_hit
    }

    #[inline]
    fn touch_line(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line % self.num_sets) as usize;
        let ways = self.config.associativity;
        let slots = &mut self.sets[set * ways..(set + 1) * ways];
        // Hit?
        for slot in slots.iter_mut() {
            if slot.0 == line {
                slot.1 = self.tick;
                return true;
            }
        }
        // Miss: fill LRU (or empty) way.
        let victim = slots
            .iter_mut()
            .min_by_key(|s| if s.0 == EMPTY { 0 } else { s.1 })
            .expect("associativity >= 1");
        *victim = (line, self.tick);
        false
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.sets.fill((EMPTY, 0));
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 32 B lines = 256 B.
        CacheSim::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            associativity: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, 8));
        assert!(c.access(8, 8)); // same line
        assert!(c.access(0, 8));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn wide_access_spans_lines() {
        let mut c = tiny();
        // 64-byte load starting at 16 touches lines 0 and 1 and 2? 16..80 →
        // lines 0,1,2 at 32-byte granularity.
        assert!(!c.access(16, 64));
        assert_eq!(c.stats().misses, 3);
        assert!(c.access(16, 64));
        assert_eq!(c.stats().hits, 3);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines mapping to set 0 (4 sets): line numbers 0, 4, 8 all map to
        // set 0. With 2 ways, accessing 0, 4, 8 evicts 0.
        c.access(0, 4);
        c.access(4 * 32, 4);
        c.access(8 * 32, 4); // evicts line 0
        assert!(!c.access(0, 4), "line 0 should have been evicted");
        // Line 8 is most recent and line 4... line 4 was evicted by the
        // refill of line 0. Line 8 must still be resident.
        assert!(c.access(8 * 32, 4));
    }

    #[test]
    fn lru_is_recency_based() {
        let mut c = tiny();
        c.access(0, 4); // set 0, way A
        c.access(4 * 32, 4); // set 0, way B
        c.access(0, 4); // touch line 0 again → line 4 is LRU
        c.access(8 * 32, 4); // evicts line 4, not line 0
        assert!(c.access(0, 4), "line 0 must survive");
    }

    #[test]
    fn streaming_thrash_has_low_hit_rate() {
        let mut c = tiny();
        for i in 0..10_000u64 {
            c.access(i * 32, 8);
        }
        assert!(c.stats().hit_rate() < 0.01);
    }

    #[test]
    fn resident_working_set_has_high_hit_rate() {
        let mut c = tiny();
        for _ in 0..100 {
            for line in 0..8u64 {
                c.access(line * 32, 8);
            }
        }
        assert!(c.stats().hit_rate() > 0.95, "rate {}", c.stats().hit_rate());
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            bytes_requested: 3,
            bytes_from_cache: 4,
            bytes_from_dram: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.hits, 2);
        assert_eq!(a.bytes_from_dram, 10);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, 8);
        c.reset();
        assert_eq!(c.stats(), &CacheStats::default());
        assert!(!c.access(0, 8), "cache must be cold after reset");
    }

    #[test]
    fn pascal_profile_geometry() {
        let c = CacheSim::new(CacheConfig::pascal_l1());
        assert_eq!(c.config().num_sets(), 48 * 1024 / (32 * 4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = CacheSim::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 24,
            associativity: 2,
        });
    }

    #[test]
    fn zero_byte_access_touches_one_line() {
        let mut c = tiny();
        c.access(0, 0);
        assert_eq!(c.stats().hits + c.stats().misses, 1);
    }

    mod reference_model {
        use super::*;
        use proptest::prelude::*;

        /// An obviously-correct LRU cache: vector of (line, tick) with
        /// linear scans.
        struct RefCache {
            lines_per_set: usize,
            sets: usize,
            line_bytes: u64,
            contents: Vec<Vec<u64>>, // per set, most-recent last
        }

        impl RefCache {
            fn new(cfg: CacheConfig) -> Self {
                let sets = cfg.capacity_bytes / (cfg.line_bytes * cfg.associativity);
                Self {
                    lines_per_set: cfg.associativity,
                    sets,
                    line_bytes: cfg.line_bytes as u64,
                    contents: vec![Vec::new(); sets],
                }
            }

            fn touch(&mut self, line: u64) -> bool {
                let set = (line % self.sets as u64) as usize;
                let s = &mut self.contents[set];
                if let Some(pos) = s.iter().position(|&l| l == line) {
                    s.remove(pos);
                    s.push(line);
                    true
                } else {
                    if s.len() == self.lines_per_set {
                        s.remove(0); // least recent
                    }
                    s.push(line);
                    false
                }
            }

            fn access(&mut self, addr: u64, bytes: usize) -> (u64, u64) {
                let first = addr / self.line_bytes;
                let last = (addr + bytes.max(1) as u64 - 1) / self.line_bytes;
                let (mut h, mut m) = (0, 0);
                for line in first..=last {
                    if self.touch(line) {
                        h += 1;
                    } else {
                        m += 1;
                    }
                }
                (h, m)
            }
        }

        proptest! {
            #[test]
            fn cache_sim_matches_reference(
                accesses in proptest::collection::vec((0u64..4096, 1usize..64), 1..400),
                assoc in 1usize..5,
            ) {
                let cfg = CacheConfig {
                    capacity_bytes: 32 * assoc * 8, // 8 sets
                    line_bytes: 32,
                    associativity: assoc,
                };
                let mut sim = CacheSim::new(cfg);
                let mut reference = RefCache::new(cfg);
                let (mut rh, mut rm) = (0u64, 0u64);
                for &(addr, bytes) in &accesses {
                    let (h, m) = reference.access(addr, bytes);
                    rh += h;
                    rm += m;
                    sim.access(addr, bytes);
                }
                prop_assert_eq!(sim.stats().hits, rh);
                prop_assert_eq!(sim.stats().misses, rm);
            }
        }
    }
}
