//! Concurrent append buffer — the device-side result set.
//!
//! The paper's kernels report results by atomically appending key/value
//! pairs to a pre-allocated global-memory buffer (Algorithm 1, line 17:
//! `atomic: resultSet ← resultSet ∪ result`). [`AppendBuffer`] models this:
//! a fixed-capacity device allocation plus an atomic cursor. Threads
//! `push` concurrently; when the cursor passes capacity the buffer reports
//! **overflow** instead of writing out of bounds — the condition the
//! batching scheme (§V-A) must size buffers to avoid, and the signal its
//! executor uses to retry with more headroom.

use crate::memory::{DeviceBuffer, MemoryPool, OutOfMemory};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity device buffer supporting lock-free concurrent appends.
#[derive(Debug)]
pub struct AppendBuffer<T: Copy> {
    buf: DeviceBuffer<T>,
    /// Raw pointer into `buf`'s storage; stable because the backing `Vec`
    /// is never resized after construction.
    ptr: *mut T,
    cursor: AtomicUsize,
}

/// A contiguous slot range claimed from an [`AppendBuffer`] with a single
/// atomic (`AppendBuffer::reserve`). Slots are written individually via
/// [`AppendBuffer::write_reserved`]; the owner must write every in-bounds
/// slot of the range before the launch ends, or the unwritten slots keep
/// their zeroed contents and still count toward [`AppendBuffer::len`].
#[derive(Clone, Copy, Debug)]
pub struct Reservation {
    start: usize,
    len: usize,
}

impl Reservation {
    /// Number of slots claimed (including any past capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the reservation claimed zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First claimed slot index (may lie past capacity on overflow).
    pub fn start(&self) -> usize {
        self.start
    }
}

// SAFETY: concurrent `push` calls receive distinct indices from the atomic
// cursor, so no two threads write the same slot; reads happen only through
// `&mut self` or after the launch completes (external synchronization by
// the engine's fork/join).
unsafe impl<T: Copy + Send> Sync for AppendBuffer<T> {}
unsafe impl<T: Copy + Send> Send for AppendBuffer<T> {}

impl<T: Copy + Default> AppendBuffer<T> {
    /// Allocates an append buffer with room for `capacity` elements.
    pub fn new(pool: &MemoryPool, capacity: usize) -> Result<Self, OutOfMemory> {
        let mut buf = DeviceBuffer::zeroed(pool, capacity)?;
        let ptr = buf.as_mut_slice().as_mut_ptr();
        Ok(Self {
            buf,
            ptr,
            cursor: AtomicUsize::new(0),
        })
    }
}

impl<T: Copy> AppendBuffer<T> {
    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Appends `value`, returning the slot's virtual address on success or
    /// `None` on overflow (the value is discarded, as a CUDA kernel with a
    /// bounds check would do).
    #[inline]
    pub fn push(&self, value: T) -> Option<u64> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        if i < self.buf.len() {
            // SAFETY: `i` is unique to this call and in bounds.
            unsafe { self.ptr.add(i).write(value) };
            Some(self.buf.addr_of(i))
        } else {
            None
        }
    }

    /// Claims `n` consecutive slots with **one** atomic cursor bump — the
    /// batched-reservation fast path: a kernel thread stages results in a
    /// small local buffer and flushes them with a single atomic instead of
    /// one atomic per element. Slots past capacity are reported through
    /// [`Self::write_reserved`] returning `None` (and via
    /// [`Self::overflowed`]), exactly like per-element `push` overflow.
    #[inline]
    pub fn reserve(&self, n: usize) -> Reservation {
        let start = self.cursor.fetch_add(n, Ordering::Relaxed);
        Reservation { start, len: n }
    }

    /// Writes slot `i` of a reservation, returning the slot's virtual
    /// address on success or `None` when the slot lies past capacity (the
    /// value is discarded, as a bounds-checked CUDA kernel would do).
    ///
    /// # Panics
    ///
    /// Panics if `i >= r.len()`.
    #[inline]
    pub fn write_reserved(&self, r: &Reservation, i: usize, value: T) -> Option<u64> {
        assert!(i < r.len, "reservation slot {i} out of range {}", r.len);
        let idx = r.start + i;
        if idx < self.buf.len() {
            // SAFETY: `idx` is in bounds and belongs exclusively to this
            // reservation (the cursor hands out disjoint ranges).
            unsafe { self.ptr.add(idx).write(value) };
            Some(self.buf.addr_of(idx))
        } else {
            None
        }
    }

    /// Number of elements actually stored (≤ capacity).
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.buf.len())
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Acquire) == 0
    }

    /// Total number of append *attempts*, including those that overflowed.
    pub fn attempted(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Whether any append overflowed the capacity.
    pub fn overflowed(&self) -> bool {
        self.attempted() > self.buf.len()
    }

    /// Virtual address of the atomic cursor (for access tracing).
    pub fn cursor_addr(&self) -> u64 {
        // Model the cursor as living just past the data region.
        self.buf.base_addr() + self.buf.size_bytes() as u64
    }

    /// The stored elements (requires exclusive access, i.e. after launch).
    pub fn as_slice(&mut self) -> &[T] {
        let len = self.len();
        &self.buf.as_slice()[..len]
    }

    /// Copies the stored elements to the host and resets the cursor so the
    /// buffer can be reused for the next batch.
    pub fn drain_to_host(&mut self) -> Vec<T> {
        let len = self.len();
        let out = self.buf.as_slice()[..len].to_vec();
        self.cursor.store(0, Ordering::Release);
        out
    }

    /// Resets the cursor without copying.
    pub fn clear(&mut self) {
        self.cursor.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    fn pool() -> MemoryPool {
        MemoryPool::new(1 << 20)
    }

    #[test]
    fn sequential_pushes_preserved() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 10).unwrap();
        for i in 0..5u32 {
            assert!(b.push(i).is_some());
        }
        assert_eq!(b.len(), 5);
        assert!(!b.overflowed());
        let mut v = b.drain_to_host();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let p = pool();
        let mut b = AppendBuffer::<u64>::new(&p, 100_000).unwrap();
        (0..100_000u64).into_par_iter().for_each(|i| {
            b.push(i);
        });
        assert_eq!(b.len(), 100_000);
        let mut v = b.drain_to_host();
        v.sort_unstable();
        assert_eq!(v, (0..100_000).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_detected_and_bounded() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 64).unwrap();
        (0..1000u32).into_par_iter().for_each(|i| {
            b.push(i);
        });
        assert!(b.overflowed());
        assert_eq!(b.len(), 64);
        assert_eq!(b.attempted(), 1000);
        assert_eq!(b.as_slice().len(), 64);
    }

    #[test]
    fn push_returns_address_of_slot() {
        let p = pool();
        let b = AppendBuffer::<u64>::new(&p, 4).unwrap();
        let a0 = b.push(7).unwrap();
        let a1 = b.push(8).unwrap();
        assert_eq!(a1 - a0, 8);
        assert!(b.cursor_addr() >= a0 + 4 * 8 - 8);
    }

    #[test]
    fn memory_accounted() {
        let p = pool();
        let b = AppendBuffer::<u64>::new(&p, 1000).unwrap();
        assert_eq!(p.used(), 8000);
        drop(b);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn oom_propagates() {
        let p = MemoryPool::new(100);
        assert!(AppendBuffer::<u64>::new(&p, 1000).is_err());
    }

    #[test]
    fn reservation_batches_writes_with_one_cursor_bump() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 16).unwrap();
        let r = b.reserve(4);
        assert_eq!(r.len(), 4);
        for i in 0..4u32 {
            assert!(b.write_reserved(&r, i as usize, 10 + i).is_some());
        }
        // Mixed with per-element pushes: disjoint slots.
        b.push(99);
        assert_eq!(b.attempted(), 5);
        let mut v = b.drain_to_host();
        v.sort_unstable();
        assert_eq!(v, vec![10, 11, 12, 13, 99]);
    }

    #[test]
    fn concurrent_reservations_are_disjoint() {
        let p = pool();
        let mut b = AppendBuffer::<u64>::new(&p, 40_000).unwrap();
        (0..10_000u64).into_par_iter().for_each(|i| {
            let r = b.reserve(4);
            for k in 0..4 {
                b.write_reserved(&r, k, i * 4 + k as u64);
            }
        });
        assert_eq!(b.len(), 40_000);
        assert!(!b.overflowed());
        let mut v = b.drain_to_host();
        v.sort_unstable();
        assert_eq!(v, (0..40_000).collect::<Vec<_>>());
    }

    #[test]
    fn reservation_overflow_is_partial_and_detected() {
        let p = pool();
        let b = AppendBuffer::<u32>::new(&p, 6).unwrap();
        let r1 = b.reserve(4);
        let r2 = b.reserve(4); // straddles capacity: slots 6, 7 discarded
        for i in 0..4 {
            assert!(b.write_reserved(&r1, i, i as u32).is_some());
        }
        let written: Vec<bool> = (0..4)
            .map(|i| b.write_reserved(&r2, i, 100 + i as u32).is_some())
            .collect();
        assert_eq!(written, vec![true, true, false, false]);
        assert!(b.overflowed());
        assert_eq!(b.len(), 6);
        assert_eq!(b.attempted(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reservation_slot_bounds_checked() {
        let p = pool();
        let b = AppendBuffer::<u32>::new(&p, 8).unwrap();
        let r = b.reserve(2);
        let _ = b.write_reserved(&r, 2, 0);
    }

    #[test]
    fn clear_allows_reuse() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 8).unwrap();
        for i in 0..8 {
            b.push(i);
        }
        b.clear();
        assert!(b.is_empty());
        b.push(99);
        assert_eq!(b.as_slice(), &[99]);
    }
}
