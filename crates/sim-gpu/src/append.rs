//! Concurrent append buffer — the device-side result set.
//!
//! The paper's kernels report results by atomically appending key/value
//! pairs to a pre-allocated global-memory buffer (Algorithm 1, line 17:
//! `atomic: resultSet ← resultSet ∪ result`). [`AppendBuffer`] models this:
//! a fixed-capacity device allocation plus an atomic cursor. Threads
//! `push` concurrently; when the cursor passes capacity the buffer reports
//! **overflow** instead of writing out of bounds — the condition the
//! batching scheme (§V-A) must size buffers to avoid, and the signal its
//! executor uses to retry with more headroom.

use crate::memory::{DeviceBuffer, MemoryPool, OutOfMemory};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity device buffer supporting lock-free concurrent appends.
#[derive(Debug)]
pub struct AppendBuffer<T: Copy> {
    buf: DeviceBuffer<T>,
    /// Raw pointer into `buf`'s storage; stable because the backing `Vec`
    /// is never resized after construction.
    ptr: *mut T,
    cursor: AtomicUsize,
}

// SAFETY: concurrent `push` calls receive distinct indices from the atomic
// cursor, so no two threads write the same slot; reads happen only through
// `&mut self` or after the launch completes (external synchronization by
// the engine's fork/join).
unsafe impl<T: Copy + Send> Sync for AppendBuffer<T> {}
unsafe impl<T: Copy + Send> Send for AppendBuffer<T> {}

impl<T: Copy + Default> AppendBuffer<T> {
    /// Allocates an append buffer with room for `capacity` elements.
    pub fn new(pool: &MemoryPool, capacity: usize) -> Result<Self, OutOfMemory> {
        let mut buf = DeviceBuffer::zeroed(pool, capacity)?;
        let ptr = buf.as_mut_slice().as_mut_ptr();
        Ok(Self {
            buf,
            ptr,
            cursor: AtomicUsize::new(0),
        })
    }
}

impl<T: Copy> AppendBuffer<T> {
    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Appends `value`, returning the slot's virtual address on success or
    /// `None` on overflow (the value is discarded, as a CUDA kernel with a
    /// bounds check would do).
    #[inline]
    pub fn push(&self, value: T) -> Option<u64> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        if i < self.buf.len() {
            // SAFETY: `i` is unique to this call and in bounds.
            unsafe { self.ptr.add(i).write(value) };
            Some(self.buf.addr_of(i))
        } else {
            None
        }
    }

    /// Number of elements actually stored (≤ capacity).
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.buf.len())
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Acquire) == 0
    }

    /// Total number of append *attempts*, including those that overflowed.
    pub fn attempted(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Whether any append overflowed the capacity.
    pub fn overflowed(&self) -> bool {
        self.attempted() > self.buf.len()
    }

    /// Virtual address of the atomic cursor (for access tracing).
    pub fn cursor_addr(&self) -> u64 {
        // Model the cursor as living just past the data region.
        self.buf.base_addr() + self.buf.size_bytes() as u64
    }

    /// The stored elements (requires exclusive access, i.e. after launch).
    pub fn as_slice(&mut self) -> &[T] {
        let len = self.len();
        &self.buf.as_slice()[..len]
    }

    /// Copies the stored elements to the host and resets the cursor so the
    /// buffer can be reused for the next batch.
    pub fn drain_to_host(&mut self) -> Vec<T> {
        let len = self.len();
        let out = self.buf.as_slice()[..len].to_vec();
        self.cursor.store(0, Ordering::Release);
        out
    }

    /// Resets the cursor without copying.
    pub fn clear(&mut self) {
        self.cursor.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    fn pool() -> MemoryPool {
        MemoryPool::new(1 << 20)
    }

    #[test]
    fn sequential_pushes_preserved() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 10).unwrap();
        for i in 0..5u32 {
            assert!(b.push(i).is_some());
        }
        assert_eq!(b.len(), 5);
        assert!(!b.overflowed());
        let mut v = b.drain_to_host();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let p = pool();
        let mut b = AppendBuffer::<u64>::new(&p, 100_000).unwrap();
        (0..100_000u64).into_par_iter().for_each(|i| {
            b.push(i);
        });
        assert_eq!(b.len(), 100_000);
        let mut v = b.drain_to_host();
        v.sort_unstable();
        assert_eq!(v, (0..100_000).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_detected_and_bounded() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 64).unwrap();
        (0..1000u32).into_par_iter().for_each(|i| {
            b.push(i);
        });
        assert!(b.overflowed());
        assert_eq!(b.len(), 64);
        assert_eq!(b.attempted(), 1000);
        assert_eq!(b.as_slice().len(), 64);
    }

    #[test]
    fn push_returns_address_of_slot() {
        let p = pool();
        let b = AppendBuffer::<u64>::new(&p, 4).unwrap();
        let a0 = b.push(7).unwrap();
        let a1 = b.push(8).unwrap();
        assert_eq!(a1 - a0, 8);
        assert!(b.cursor_addr() >= a0 + 4 * 8 - 8);
    }

    #[test]
    fn memory_accounted() {
        let p = pool();
        let b = AppendBuffer::<u64>::new(&p, 1000).unwrap();
        assert_eq!(p.used(), 8000);
        drop(b);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn oom_propagates() {
        let p = MemoryPool::new(100);
        assert!(AppendBuffer::<u64>::new(&p, 1000).is_err());
    }

    #[test]
    fn clear_allows_reuse() {
        let p = pool();
        let mut b = AppendBuffer::<u32>::new(&p, 8).unwrap();
        for i in 0..8 {
            b.push(i);
        }
        b.clear();
        assert!(b.is_empty());
        b.push(99);
        assert_eq!(b.as_slice(), &[99]);
    }
}
