//! Capacity-accounted global memory.
//!
//! The TITAN X has 12 GiB of global memory; the paper's batching scheme
//! (§V-A) exists because self-join result sets routinely exceed it. The
//! simulator therefore enforces capacity at allocation time: every
//! [`DeviceBuffer`] charges its byte size to the device's [`MemoryPool`]
//! and allocation fails once the pool is exhausted.
//!
//! Each buffer is also assigned a non-overlapping *virtual base address*
//! (256-byte aligned, as CUDA's allocator guarantees) so the cache
//! simulator can map loads from distinct buffers to distinct cache lines.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Error returned when an allocation would exceed device capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the allocation asked for.
    pub requested: usize,
    /// Bytes that were still free.
    pub available: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    used: usize,
    next_addr: u64,
}

/// A device's global-memory accounting pool. Cheap to clone (shared).
#[derive(Clone, Debug)]
pub struct MemoryPool {
    inner: Arc<Mutex<PoolInner>>,
}

/// Allocation alignment, matching CUDA's minimum guarantee.
const ALLOC_ALIGN: u64 = 256;

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                used: 0,
                // Start away from address zero, as real allocators do.
                next_addr: ALLOC_ALIGN,
            })),
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.lock().used
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Reserves `bytes`, returning the assigned base address.
    fn reserve(&self, bytes: usize) -> Result<u64, OutOfMemory> {
        let mut inner = self.inner.lock();
        let free = inner.capacity - inner.used;
        if bytes > free {
            return Err(OutOfMemory {
                requested: bytes,
                available: free,
            });
        }
        inner.used += bytes;
        let addr = inner.next_addr;
        let span = (bytes as u64).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        inner.next_addr += span.max(ALLOC_ALIGN);
        Ok(addr)
    }

    fn release(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.used >= bytes, "double free in MemoryPool");
        inner.used -= bytes;
    }
}

/// A typed allocation in simulated global memory.
///
/// The backing store is host RAM; what makes it a *device* buffer is the
/// capacity accounting and the virtual address used for cache simulation.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    base_addr: u64,
    bytes: usize,
    pool: MemoryPool,
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocates `len` zero-initialized elements.
    pub fn zeroed(pool: &MemoryPool, len: usize) -> Result<Self, OutOfMemory>
    where
        T: Default,
    {
        let bytes = len * std::mem::size_of::<T>();
        let base_addr = pool.reserve(bytes)?;
        Ok(Self {
            data: vec![T::default(); len],
            base_addr,
            bytes,
            pool: pool.clone(),
        })
    }

    /// Allocates a buffer holding a copy of `data`.
    pub fn from_host(pool: &MemoryPool, data: &[T]) -> Result<Self, OutOfMemory> {
        let bytes = std::mem::size_of_val(data);
        let base_addr = pool.reserve(bytes)?;
        Ok(Self {
            data: data.to_vec(),
            base_addr,
            bytes,
            pool: pool.clone(),
        })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (what the allocation is charged).
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Virtual base address (for cache tracing).
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Virtual address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + (i * std::mem::size_of::<T>()) as u64
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the buffer back to a host vector (a device→host download; the
    /// transfer time is modeled separately).
    pub fn to_host(&self) -> Vec<T> {
        self.data.clone()
    }

    /// Overwrites the buffer contents from host data of identical length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (CUDA would fault on out-of-bounds copy).
    pub fn copy_from_host(&mut self, data: &[T]) {
        assert_eq!(data.len(), self.data.len(), "host/device length mismatch");
        self.data.copy_from_slice(data);
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = MemoryPool::new(1000);
        let a = DeviceBuffer::<u8>::zeroed(&pool, 600).unwrap();
        assert_eq!(pool.used(), 600);
        let err = DeviceBuffer::<u8>::zeroed(&pool, 500).unwrap_err();
        assert_eq!(
            err,
            OutOfMemory {
                requested: 500,
                available: 400
            }
        );
        drop(a);
        assert_eq!(pool.used(), 0);
        let _b = DeviceBuffer::<u8>::zeroed(&pool, 1000).unwrap();
    }

    #[test]
    fn addresses_do_not_overlap() {
        let pool = MemoryPool::new(1 << 20);
        let a = DeviceBuffer::<f64>::zeroed(&pool, 100).unwrap();
        let b = DeviceBuffer::<f64>::zeroed(&pool, 100).unwrap();
        let a_end = a.base_addr() + a.size_bytes() as u64;
        assert!(
            b.base_addr() >= a_end,
            "buffer b at {:#x} overlaps a ending at {:#x}",
            b.base_addr(),
            a_end
        );
        assert_eq!(a.base_addr() % 256, 0);
        assert_eq!(b.base_addr() % 256, 0);
    }

    #[test]
    fn addr_of_walks_elements() {
        let pool = MemoryPool::new(1 << 20);
        let a = DeviceBuffer::<f64>::zeroed(&pool, 10).unwrap();
        assert_eq!(a.addr_of(3), a.base_addr() + 24);
    }

    #[test]
    fn from_host_and_back() {
        let pool = MemoryPool::new(1 << 20);
        let buf = DeviceBuffer::from_host(&pool, &[1u32, 2, 3]).unwrap();
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(buf.size_bytes(), 12);
    }

    #[test]
    fn copy_from_host_replaces_contents() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf = DeviceBuffer::<u32>::zeroed(&pool, 3).unwrap();
        buf.copy_from_host(&[7, 8, 9]);
        assert_eq!(buf.as_slice(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_host_length_checked() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf = DeviceBuffer::<u32>::zeroed(&pool, 3).unwrap();
        buf.copy_from_host(&[1, 2]);
    }

    #[test]
    fn zero_length_allocation_is_free() {
        let pool = MemoryPool::new(16);
        let buf = DeviceBuffer::<u64>::zeroed(&pool, 0).unwrap();
        assert_eq!(pool.used(), 0);
        assert!(buf.is_empty());
    }
}
