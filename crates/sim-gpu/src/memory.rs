//! Capacity-accounted global memory.
//!
//! The TITAN X has 12 GiB of global memory; the paper's batching scheme
//! (§V-A) exists because self-join result sets routinely exceed it. The
//! simulator therefore enforces capacity at allocation time: every
//! [`DeviceBuffer`] charges its byte size to the device's [`MemoryPool`]
//! and allocation fails once the pool is exhausted.
//!
//! Each buffer is also assigned a non-overlapping *virtual base address*
//! (256-byte aligned, as CUDA's allocator guarantees) so the cache
//! simulator can map loads from distinct buffers to distinct cache lines.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error returned when an allocation would exceed device capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the allocation asked for.
    pub requested: usize,
    /// Bytes that were still free.
    pub available: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    used: usize,
    next_addr: u64,
}

/// A device's global-memory accounting pool. Cheap to clone (shared).
#[derive(Clone, Debug)]
pub struct MemoryPool {
    inner: Arc<Mutex<PoolInner>>,
}

/// Allocation alignment, matching CUDA's minimum guarantee.
const ALLOC_ALIGN: u64 = 256;

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                used: 0,
                // Start away from address zero, as real allocators do.
                next_addr: ALLOC_ALIGN,
            })),
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.lock().used
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Reserves `bytes`, returning the assigned base address.
    fn reserve(&self, bytes: usize) -> Result<u64, OutOfMemory> {
        let mut inner = self.inner.lock();
        let free = inner.capacity - inner.used;
        if bytes > free {
            return Err(OutOfMemory {
                requested: bytes,
                available: free,
            });
        }
        inner.used += bytes;
        let addr = inner.next_addr;
        let span = (bytes as u64).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        inner.next_addr += span.max(ALLOC_ALIGN);
        Ok(addr)
    }

    fn release(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.used >= bytes, "double free in MemoryPool");
        inner.used -= bytes;
    }
}

/// A typed allocation in simulated global memory.
///
/// The backing store is host RAM; what makes it a *device* buffer is the
/// capacity accounting and the virtual address used for cache simulation.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    base_addr: u64,
    bytes: usize,
    pool: MemoryPool,
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocates `len` zero-initialized elements.
    pub fn zeroed(pool: &MemoryPool, len: usize) -> Result<Self, OutOfMemory>
    where
        T: Default,
    {
        let bytes = len * std::mem::size_of::<T>();
        let base_addr = pool.reserve(bytes)?;
        Ok(Self {
            data: vec![T::default(); len],
            base_addr,
            bytes,
            pool: pool.clone(),
        })
    }

    /// Allocates a buffer holding a copy of `data`.
    pub fn from_host(pool: &MemoryPool, data: &[T]) -> Result<Self, OutOfMemory> {
        let bytes = std::mem::size_of_val(data);
        let base_addr = pool.reserve(bytes)?;
        Ok(Self {
            data: data.to_vec(),
            base_addr,
            bytes,
            pool: pool.clone(),
        })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (what the allocation is charged).
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Virtual base address (for cache tracing).
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Virtual address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + (i * std::mem::size_of::<T>()) as u64
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the buffer back to a host vector (a device→host download; the
    /// transfer time is modeled separately).
    pub fn to_host(&self) -> Vec<T> {
        self.data.clone()
    }

    /// Overwrites the buffer contents from host data of identical length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (CUDA would fault on out-of-bounds copy).
    pub fn copy_from_host(&mut self, data: &[T]) {
        assert_eq!(data.len(), self.data.len(), "host/device length mismatch");
        self.data.copy_from_slice(data);
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

/// Callback that attempts to evict one registered resident allocation.
///
/// Returns `true` when the owner actually dropped the allocation (device
/// memory freed synchronously, and the matching [`LedgerEntry`] guard
/// unregistered the slot before the callback returned); `false` when the
/// allocation is currently in use and could not be evicted. Called
/// *without* any ledger lock held, so the callback may freely drop buffers
/// whose guards re-enter the ledger.
pub type Evictor = Arc<dyn Fn() -> bool + Send + Sync>;

#[derive(Clone)]
struct LedgerSlot {
    owner: u64,
    device: usize,
    bytes: usize,
    /// Recency stamp from the ledger's logical clock (bigger = newer).
    seq: u64,
    evict: Evictor,
}

struct LedgerInner {
    slots: HashMap<u64, LedgerSlot>,
    budget: Option<usize>,
    total: usize,
    next_id: u64,
    clock: u64,
    evictions: u64,
    metrics: LedgerMetrics,
}

/// Registry series of one ledger, labeled per instance so concurrently
/// live ledgers don't clobber each other.
struct LedgerMetrics {
    /// `sj_ledger_evictions_total{ledger}`.
    evictions: sj_obs::Counter,
    /// `sj_ledger_resident_bytes{ledger}`, sampled at register/unregister.
    resident_bytes: sj_obs::Gauge,
}

impl LedgerMetrics {
    fn register() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_LEDGER: AtomicU64 = AtomicU64::new(0);
        let id = NEXT_LEDGER.fetch_add(1, Ordering::Relaxed).to_string();
        let reg = sj_obs::registry();
        Self {
            evictions: reg.counter("sj_ledger_evictions_total", &[("ledger", &id)]),
            resident_bytes: reg.gauge("sj_ledger_resident_bytes", &[("ledger", &id)]),
        }
    }
}

/// Pool-wide LRU ledger of resident (cross-query) device allocations.
///
/// Device memory itself is accounted per device by [`MemoryPool`]; what
/// that accounting cannot see is which allocations are *resident state*
/// (index snapshots a session keeps alive between queries) versus
/// transient working memory, nor which resident state was touched least
/// recently. The ledger tracks exactly that: sessions register each device
/// snapshot with its byte size and an [`Evictor`] callback, touch the
/// entry on every use, and unregister it (via the RAII [`LedgerEntry`])
/// when the snapshot drops on its own.
///
/// With a budget configured ([`Self::set_budget`]), [`Self::make_room`]
/// evicts least-recently-used entries — by invoking their evictors — until
/// an incoming registration fits. Entries whose evictor reports "in use"
/// are skipped, so an eviction never pulls memory out from under a running
/// query. Clones share state; a [`crate::DevicePool`] hands out one ledger
/// shared by every pool clone.
#[derive(Clone)]
pub struct MemoryLedger {
    inner: Arc<Mutex<LedgerInner>>,
    /// Serializes budgeted upload sequences (see [`Self::upload_permit`]).
    upload_lock: Arc<Mutex<()>>,
}

impl Default for MemoryLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MemoryLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MemoryLedger")
            .field("entries", &inner.slots.len())
            .field("total", &inner.total)
            .field("budget", &inner.budget)
            .field("evictions", &inner.evictions)
            .finish()
    }
}

impl MemoryLedger {
    /// An unbudgeted ledger (tracks residency, never evicts).
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(LedgerInner {
                slots: HashMap::new(),
                budget: None,
                total: 0,
                next_id: 1,
                clock: 0,
                evictions: 0,
                metrics: LedgerMetrics::register(),
            })),
            upload_lock: Arc::new(Mutex::new(())),
        }
    }

    /// Serializes a budgeted `make_room → allocate → register` sequence:
    /// hold the returned guard across all three, so two concurrent
    /// uploaders cannot both count the same freed space against the
    /// budget and jointly overshoot it. Callers on unbudgeted ledgers
    /// can skip the permit — there is no invariant to protect.
    pub fn upload_permit(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.upload_lock.lock()
    }

    /// Sets (or clears) the resident-memory budget in bytes. A new budget
    /// below the current total takes effect at the next
    /// [`Self::make_room`] or [`Self::register`].
    pub fn set_budget(&self, budget: Option<usize>) {
        self.inner.lock().budget = budget;
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.inner.lock().budget
    }

    /// Total registered resident bytes across all devices.
    pub fn total(&self) -> usize {
        self.inner.lock().total
    }

    /// Registered resident bytes on one device.
    pub fn device_total(&self, device: usize) -> usize {
        self.inner
            .lock()
            .slots
            .values()
            .filter(|s| s.device == device)
            .map(|s| s.bytes)
            .sum()
    }

    /// Registered entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Whether no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().slots.is_empty()
    }

    /// Successful evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Evicts least-recently-used entries until `incoming` more bytes fit
    /// under the budget (no-op without one). Entries that report
    /// themselves in use are skipped. Returns the bytes actually freed.
    ///
    /// Call this *before* allocating the incoming resident state: evictors
    /// run synchronously, so the freed device memory is available when
    /// this returns.
    pub fn make_room(&self, incoming: usize) -> usize {
        let mut freed = 0usize;
        // Ids whose evictor declined (in use) — skip them this round so
        // the loop terminates even when everything is busy.
        let mut busy: Vec<u64> = Vec::new();
        loop {
            let victim: Option<(u64, Evictor)> = {
                let inner = self.inner.lock();
                let Some(budget) = inner.budget else {
                    return freed;
                };
                if inner.total.saturating_add(incoming) <= budget {
                    return freed;
                }
                inner
                    .slots
                    .iter()
                    .filter(|(id, _)| !busy.contains(id))
                    .min_by_key(|(_, s)| s.seq)
                    .map(|(id, s)| (*id, Arc::clone(&s.evict)))
            };
            let Some((id, evict)) = victim else {
                // Over budget but nothing evictable: every entry is in
                // use. The caller proceeds; pressure clears as queries
                // finish and their snapshots become evictable.
                return freed;
            };
            let before = self.total();
            // The evictor drops the owner's allocation; its LedgerEntry
            // guard unregisters the slot re-entrantly (no lock held here).
            if evict() {
                let mut inner = self.inner.lock();
                inner.evictions += 1;
                inner.metrics.evictions.inc();
                freed += before.saturating_sub(inner.total);
            } else {
                busy.push(id);
            }
        }
    }

    /// Registers `bytes` of resident state owned by `owner` on `device`,
    /// first making room under the budget. The returned guard unregisters
    /// the entry exactly once when dropped.
    pub fn register(&self, owner: u64, device: usize, bytes: usize, evict: Evictor) -> LedgerEntry {
        self.make_room(bytes);
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.clock += 1;
        let seq = inner.clock;
        inner.slots.insert(
            id,
            LedgerSlot {
                owner,
                device,
                bytes,
                seq,
                evict,
            },
        );
        inner.total += bytes;
        inner.metrics.resident_bytes.set(inner.total as f64);
        LedgerEntry {
            ledger: Some(self.clone()),
            id,
        }
    }

    fn touch(&self, id: u64) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(slot) = inner.slots.get_mut(&id) {
            slot.seq = clock;
        }
    }

    fn unregister(&self, id: u64) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.remove(&id) {
            debug_assert!(inner.total >= slot.bytes, "ledger total underflow");
            inner.total = inner.total.saturating_sub(slot.bytes);
            inner.metrics.resident_bytes.set(inner.total as f64);
        }
    }

    /// Owners (with their per-owner byte totals) in LRU-first order —
    /// introspection for service metrics and tests.
    pub fn owners_lru(&self) -> Vec<(u64, usize)> {
        let inner = self.inner.lock();
        let mut slots: Vec<&LedgerSlot> = inner.slots.values().collect();
        slots.sort_by_key(|s| s.seq);
        slots.iter().map(|s| (s.owner, s.bytes)).collect()
    }
}

/// RAII registration guard handed out by [`MemoryLedger::register`].
///
/// Dropping the guard unregisters the entry exactly once — whether the
/// owner dropped its allocation on its own (generation replaced, session
/// dropped) or an evictor did it on the ledger's behalf.
#[derive(Debug)]
pub struct LedgerEntry {
    /// Taken on drop so a second drop path can never double-unregister.
    ledger: Option<MemoryLedger>,
    id: u64,
}

impl LedgerEntry {
    /// Marks the entry most-recently-used.
    pub fn touch(&self) {
        if let Some(ledger) = &self.ledger {
            ledger.touch(self.id);
        }
    }
}

impl Drop for LedgerEntry {
    fn drop(&mut self) {
        if let Some(ledger) = self.ledger.take() {
            ledger.unregister(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = MemoryPool::new(1000);
        let a = DeviceBuffer::<u8>::zeroed(&pool, 600).unwrap();
        assert_eq!(pool.used(), 600);
        let err = DeviceBuffer::<u8>::zeroed(&pool, 500).unwrap_err();
        assert_eq!(
            err,
            OutOfMemory {
                requested: 500,
                available: 400
            }
        );
        drop(a);
        assert_eq!(pool.used(), 0);
        let _b = DeviceBuffer::<u8>::zeroed(&pool, 1000).unwrap();
    }

    #[test]
    fn addresses_do_not_overlap() {
        let pool = MemoryPool::new(1 << 20);
        let a = DeviceBuffer::<f64>::zeroed(&pool, 100).unwrap();
        let b = DeviceBuffer::<f64>::zeroed(&pool, 100).unwrap();
        let a_end = a.base_addr() + a.size_bytes() as u64;
        assert!(
            b.base_addr() >= a_end,
            "buffer b at {:#x} overlaps a ending at {:#x}",
            b.base_addr(),
            a_end
        );
        assert_eq!(a.base_addr() % 256, 0);
        assert_eq!(b.base_addr() % 256, 0);
    }

    #[test]
    fn addr_of_walks_elements() {
        let pool = MemoryPool::new(1 << 20);
        let a = DeviceBuffer::<f64>::zeroed(&pool, 10).unwrap();
        assert_eq!(a.addr_of(3), a.base_addr() + 24);
    }

    #[test]
    fn from_host_and_back() {
        let pool = MemoryPool::new(1 << 20);
        let buf = DeviceBuffer::from_host(&pool, &[1u32, 2, 3]).unwrap();
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(buf.size_bytes(), 12);
    }

    #[test]
    fn copy_from_host_replaces_contents() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf = DeviceBuffer::<u32>::zeroed(&pool, 3).unwrap();
        buf.copy_from_host(&[7, 8, 9]);
        assert_eq!(buf.as_slice(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_host_length_checked() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf = DeviceBuffer::<u32>::zeroed(&pool, 3).unwrap();
        buf.copy_from_host(&[1, 2]);
    }

    #[test]
    fn zero_length_allocation_is_free() {
        let pool = MemoryPool::new(16);
        let buf = DeviceBuffer::<u64>::zeroed(&pool, 0).unwrap();
        assert_eq!(pool.used(), 0);
        assert!(buf.is_empty());
    }

    use parking_lot::Mutex as PlMutex;

    /// A registered "snapshot" stand-in: the shared slot owns the guard,
    /// the evictor clears the slot (dropping the guard → unregistering).
    fn register_slot(
        ledger: &MemoryLedger,
        owner: u64,
        bytes: usize,
        busy: Arc<std::sync::atomic::AtomicBool>,
    ) -> Arc<PlMutex<Option<LedgerEntry>>> {
        let slot: Arc<PlMutex<Option<LedgerEntry>>> = Arc::new(PlMutex::new(None));
        let weak = Arc::downgrade(&slot);
        let evict: Evictor = Arc::new(move || {
            let Some(slot) = weak.upgrade() else {
                return false;
            };
            if busy.load(std::sync::atomic::Ordering::SeqCst) {
                return false;
            }
            let taken = slot.lock().take();
            taken.is_some()
        });
        *slot.lock() = Some(ledger.register(owner, 0, bytes, evict));
        slot
    }

    fn idle() -> Arc<std::sync::atomic::AtomicBool> {
        Arc::new(std::sync::atomic::AtomicBool::new(false))
    }

    #[test]
    fn ledger_tracks_registration_and_raii_unregister() {
        let ledger = MemoryLedger::new();
        assert!(ledger.is_empty());
        let a = register_slot(&ledger, 1, 600, idle());
        let b = register_slot(&ledger, 2, 400, idle());
        assert_eq!(ledger.total(), 1000);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.device_total(0), 1000);
        a.lock().take();
        assert_eq!(ledger.total(), 400);
        drop(b);
        // Guard inside the slot dropped with the Arc.
        assert_eq!(ledger.total(), 0);
        assert_eq!(ledger.evictions(), 0, "RAII teardown is not an eviction");
    }

    #[test]
    fn make_room_evicts_lru_first() {
        let ledger = MemoryLedger::new();
        ledger.set_budget(Some(1000));
        let a = register_slot(&ledger, 1, 400, idle());
        let b = register_slot(&ledger, 2, 400, idle());
        // Touch a: b becomes the LRU victim.
        a.lock().as_ref().unwrap().touch();
        let freed = ledger.make_room(400);
        assert_eq!(freed, 400);
        assert!(b.lock().is_none(), "LRU entry b evicted");
        assert!(a.lock().is_some(), "recently touched a survives");
        assert_eq!(ledger.evictions(), 1);
        assert_eq!(ledger.total(), 400);
    }

    #[test]
    fn register_enforces_budget() {
        let ledger = MemoryLedger::new();
        ledger.set_budget(Some(1000));
        let a = register_slot(&ledger, 1, 600, idle());
        let _b = register_slot(&ledger, 2, 600, idle());
        assert!(a.lock().is_none(), "a evicted to fit b");
        assert!(ledger.total() <= 1000);
    }

    #[test]
    fn busy_entries_are_skipped() {
        let ledger = MemoryLedger::new();
        ledger.set_budget(Some(1000));
        let busy_flag = idle();
        busy_flag.store(true, std::sync::atomic::Ordering::SeqCst);
        let a = register_slot(&ledger, 1, 500, Arc::clone(&busy_flag));
        let b = register_slot(&ledger, 2, 400, idle());
        // a is LRU but in use: make_room must take b instead.
        let freed = ledger.make_room(300);
        assert_eq!(freed, 400);
        assert!(a.lock().is_some());
        assert!(b.lock().is_none());
        // Everything busy: make_room gives up without freeing.
        let c = register_slot(&ledger, 3, 400, Arc::clone(&busy_flag));
        busy_flag.store(true, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(ledger.make_room(10_000), 0);
        assert!(a.lock().is_some());
        assert!(c.lock().is_some());
    }

    #[test]
    fn unbudgeted_ledger_never_evicts() {
        let ledger = MemoryLedger::new();
        let a = register_slot(&ledger, 1, 1 << 20, idle());
        assert_eq!(ledger.make_room(usize::MAX / 2), 0);
        assert!(a.lock().is_some());
    }

    #[test]
    fn owners_lru_orders_by_recency() {
        let ledger = MemoryLedger::new();
        let a = register_slot(&ledger, 7, 100, idle());
        let _b = register_slot(&ledger, 8, 200, idle());
        a.lock().as_ref().unwrap().touch();
        assert_eq!(ledger.owners_lru(), vec![(8, 200), (7, 100)]);
    }
}
