//! Host↔device transfer timing and multi-stream overlap accounting.
//!
//! The batching scheme (paper §V-A) exists for two reasons: result sets can
//! exceed global memory, and splitting work into ≥3 batches lets the GPU
//! overlap kernel execution with bidirectional PCIe transfers. This module
//! models that pipeline so the executor can report how much transfer time
//! the batching hides.
//!
//! The model has three resources, mirroring a Pascal GPU with dual copy
//! engines: an H2D engine, a compute engine, and a D2H engine. A batch is
//! an (upload, kernel, download) triple; batches are issued round-robin
//! across `k` streams, operations within a stream serialize, and each
//! resource serves one operation at a time in issue order. With one stream
//! the pipeline degenerates to fully serial execution; with ≥3 streams
//! transfers hide behind neighbouring batches' kernels.

use std::time::Duration;

/// PCIe-like transfer cost model: fixed latency plus bandwidth term.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferModel {
    /// Sustained bandwidth in GiB/s.
    pub gib_per_s: f64,
    /// Per-transfer fixed cost in microseconds (driver + DMA setup).
    pub latency_us: f64,
}

impl TransferModel {
    /// Creates a model with the given bandwidth and latency.
    pub fn new(gib_per_s: f64, latency_us: f64) -> Self {
        assert!(gib_per_s > 0.0, "bandwidth must be positive");
        assert!(latency_us >= 0.0, "latency must be non-negative");
        Self {
            gib_per_s,
            latency_us,
        }
    }

    /// Modeled duration of a transfer of `bytes`.
    pub fn time(&self, bytes: usize) -> Duration {
        let secs =
            self.latency_us * 1e-6 + bytes as f64 / (self.gib_per_s * 1024.0 * 1024.0 * 1024.0);
        Duration::from_secs_f64(secs)
    }
}

/// One batch's resource demands.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchCost {
    /// Bytes uploaded before the kernel runs.
    pub h2d_bytes: usize,
    /// Kernel execution time.
    pub kernel: Duration,
    /// Bytes downloaded after the kernel completes.
    pub d2h_bytes: usize,
}

/// Outcome of scheduling a batch sequence onto streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineReport {
    /// Pipelined makespan.
    pub total: Duration,
    /// What the same work would take fully serialized (1 stream, no
    /// overlap) — the baseline the paper's overlap hides.
    pub serial_total: Duration,
    /// Total kernel-engine busy time.
    pub compute_busy: Duration,
    /// Total H2D engine busy time.
    pub h2d_busy: Duration,
    /// Total D2H engine busy time.
    pub d2h_busy: Duration,
}

impl TimelineReport {
    /// Fraction of transfer time hidden by overlap, in `[0, 1]`.
    pub fn overlap_efficiency(&self) -> f64 {
        let transfers = self.h2d_busy + self.d2h_busy;
        if transfers.is_zero() {
            return 1.0;
        }
        let hidden = self.serial_total.saturating_sub(self.total);
        (hidden.as_secs_f64() / transfers.as_secs_f64()).clamp(0.0, 1.0)
    }
}

/// Schedules batches onto `streams` CUDA-style streams over the three
/// engine resources.
#[derive(Clone, Debug)]
pub struct StreamTimeline {
    model: TransferModel,
    streams: usize,
}

impl StreamTimeline {
    /// Creates a scheduler with the given transfer model and stream count.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0`.
    pub fn new(model: TransferModel, streams: usize) -> Self {
        assert!(streams > 0, "need at least one stream");
        Self { model, streams }
    }

    /// Computes the pipelined makespan of the batch sequence.
    pub fn schedule(&self, batches: &[BatchCost]) -> TimelineReport {
        let mut h2d_free = 0.0f64;
        let mut compute_free = 0.0f64;
        let mut d2h_free = 0.0f64;
        let mut stream_free = vec![0.0f64; self.streams];
        let mut h2d_busy = 0.0f64;
        let mut compute_busy = 0.0f64;
        let mut d2h_busy = 0.0f64;
        let mut end = 0.0f64;

        for (i, b) in batches.iter().enumerate() {
            let stream = i % self.streams;
            let t_h2d = self.model.time(b.h2d_bytes).as_secs_f64();
            let t_k = b.kernel.as_secs_f64();
            let t_d2h = self.model.time(b.d2h_bytes).as_secs_f64();

            let h2d_start = h2d_free.max(stream_free[stream]);
            let h2d_end = h2d_start + t_h2d;
            h2d_free = h2d_end;
            h2d_busy += t_h2d;

            let k_start = compute_free.max(h2d_end);
            let k_end = k_start + t_k;
            compute_free = k_end;
            compute_busy += t_k;

            let d2h_start = d2h_free.max(k_end);
            let d2h_end = d2h_start + t_d2h;
            d2h_free = d2h_end;
            d2h_busy += t_d2h;

            stream_free[stream] = d2h_end;
            end = end.max(d2h_end);
        }

        TimelineReport {
            total: Duration::from_secs_f64(end),
            serial_total: Duration::from_secs_f64(h2d_busy + compute_busy + d2h_busy),
            compute_busy: Duration::from_secs_f64(compute_busy),
            h2d_busy: Duration::from_secs_f64(h2d_busy),
            d2h_busy: Duration::from_secs_f64(d2h_busy),
        }
    }

    /// The underlying transfer model.
    pub fn model(&self) -> &TransferModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferModel {
        // 1 GiB/s, zero latency → easy arithmetic.
        TransferModel::new(1.0, 0.0)
    }

    fn batch(mib_up: usize, kernel_ms: u64, mib_down: usize) -> BatchCost {
        BatchCost {
            h2d_bytes: mib_up * 1024 * 1024,
            kernel: Duration::from_millis(kernel_ms),
            d2h_bytes: mib_down * 1024 * 1024,
        }
    }

    #[test]
    fn transfer_time_arithmetic() {
        let m = TransferModel::new(2.0, 100.0);
        let t = m.time(2 * 1024 * 1024 * 1024);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-9, "{t:?}");
        assert_eq!(m.time(0), Duration::from_secs_f64(1e-4));
    }

    #[test]
    fn single_stream_is_fully_serial() {
        let tl = StreamTimeline::new(model(), 1);
        // Each batch: ~1s up + 0.5s kernel + ~1s down (1024 MiB = 1 GiB).
        let batches = vec![batch(1024, 500, 1024); 3];
        let r = tl.schedule(&batches);
        assert!(
            (r.total.as_secs_f64() - r.serial_total.as_secs_f64()).abs() < 1e-9,
            "single stream must not overlap: {r:?}"
        );
        assert!((r.serial_total.as_secs_f64() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn three_streams_hide_transfers() {
        let tl = StreamTimeline::new(model(), 3);
        let batches = vec![batch(1024, 2000, 1024); 6];
        let r = tl.schedule(&batches);
        // Kernels dominate (2s each, 12s total); transfers (1s each side)
        // should hide almost entirely behind neighbouring kernels.
        let total = r.total.as_secs_f64();
        assert!(
            total < 15.0,
            "pipelined total {total} too close to serial 24"
        );
        assert!(total >= 12.0, "cannot beat pure compute time");
        assert!(r.overlap_efficiency() > 0.7, "{}", r.overlap_efficiency());
    }

    #[test]
    fn compute_engine_never_overlaps_itself() {
        let tl = StreamTimeline::new(model(), 4);
        let batches = vec![batch(0, 1000, 0); 4];
        let r = tl.schedule(&batches);
        assert!((r.total.as_secs_f64() - 4.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn pipeline_latency_bound_by_longest_stage_chain() {
        let tl = StreamTimeline::new(model(), 2);
        let batches = vec![batch(1024, 0, 0), batch(1024, 0, 0)];
        // Two uploads share one H2D engine: 2 seconds total.
        let r = tl.schedule(&batches);
        assert!((r.total.as_secs_f64() - 2.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn empty_schedule_is_zero() {
        let tl = StreamTimeline::new(model(), 3);
        let r = tl.schedule(&[]);
        assert_eq!(r.total, Duration::ZERO);
        assert_eq!(r.overlap_efficiency(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = StreamTimeline::new(model(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_batches() -> impl Strategy<Value = Vec<BatchCost>> {
            proptest::collection::vec(
                (0usize..50, 0u64..100, 0usize..80).prop_map(|(up, k, down)| BatchCost {
                    h2d_bytes: up * 1024 * 1024,
                    kernel: Duration::from_millis(k),
                    d2h_bytes: down * 1024 * 1024,
                }),
                0..24,
            )
        }

        proptest! {
            #[test]
            fn makespan_bounds(batches in arb_batches(), streams in 1usize..6) {
                let tl = StreamTimeline::new(TransferModel::new(1.0, 5.0), streams);
                let r = tl.schedule(&batches);
                // Lower bound: the busiest single engine.
                let busiest = r.compute_busy.max(r.h2d_busy).max(r.d2h_busy);
                prop_assert!(r.total + Duration::from_nanos(1) > busiest);
                // Upper bound: fully serialized execution.
                prop_assert!(r.total <= r.serial_total + Duration::from_nanos(1));
                prop_assert!((0.0..=1.0).contains(&r.overlap_efficiency()));
            }

            #[test]
            fn single_stream_serializes(batches in arb_batches()) {
                let tl = StreamTimeline::new(TransferModel::new(2.0, 1.0), 1);
                let r = tl.schedule(&batches);
                let diff = (r.total.as_secs_f64() - r.serial_total.as_secs_f64()).abs();
                prop_assert!(diff < 1e-9, "serial gap {diff}");
            }
        }
    }

    #[test]
    fn more_streams_never_slower() {
        let batches: Vec<BatchCost> = (0..8).map(|i| batch(256, 300 + i * 50, 512)).collect();
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let r = StreamTimeline::new(model(), k).schedule(&batches);
            let t = r.total.as_secs_f64();
            assert!(t <= prev + 1e-9, "streams {k}: {t} > {prev}");
            prev = t;
        }
    }
}
