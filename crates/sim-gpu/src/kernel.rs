//! Kernel abstraction and the block-parallel execution engine.
//!
//! A [`Kernel`] is written exactly like the paper's CUDA kernels: a
//! `thread` body parameterized by a global thread id, launched over a grid
//! of fixed-size thread blocks. The engine executes whole blocks as
//! parallel tasks on the host thread pool (rayon), which preserves the
//! SIMT programming model — one logical thread per data element, atomics
//! for result aggregation — while running on CPU cores.
//!
//! Every global-memory access in a kernel body goes through the
//! [`ThreadCtx`], which is generic over a [`Tracer`]. The fast path uses
//! [`NoTrace`] (every hook is an empty `#[inline]` body, so the optimizer
//! erases it); the profiled path uses a cache-simulating tracer to produce
//! the Table II metrics. One kernel implementation serves both modes.

use crate::cache::{CacheSim, CacheStats};
use crate::device::Device;
use crate::memory::DeviceBuffer;
use crate::occupancy::{occupancy, KernelResources, OccupancyResult};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Receives every traced global-memory access of a kernel thread.
pub trait Tracer {
    /// A global-memory load of `bytes` at virtual address `addr`.
    fn load(&mut self, addr: u64, bytes: usize);

    /// A global-memory store (defaults to the load path: the unified cache
    /// on Pascal is write-through, stores still allocate lines).
    #[inline]
    fn store(&mut self, addr: u64, bytes: usize) {
        self.load(addr, bytes);
    }

    /// An atomic read-modify-write (defaults to the store path).
    #[inline]
    fn atomic(&mut self, addr: u64, bytes: usize) {
        self.store(addr, bytes);
    }

    /// Called before each logical thread's body runs (per-thread tracers
    /// use it to switch accumulation slots). Default: no-op.
    #[inline]
    fn begin_thread(&mut self, _global_id: usize, _thread_in_block: usize) {}
}

/// The zero-overhead tracer used for timing runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTrace;

impl Tracer for NoTrace {
    #[inline(always)]
    fn load(&mut self, _addr: u64, _bytes: usize) {}
}

/// A tracer that drives the L1 cache simulator (one per simulated SM).
#[derive(Debug)]
pub struct CacheTracer {
    /// The SM's unified cache.
    pub cache: CacheSim,
}

impl Tracer for CacheTracer {
    #[inline]
    fn load(&mut self, addr: u64, bytes: usize) {
        self.cache.access(addr, bytes);
    }
}

/// Per-thread execution context handed to the kernel body.
pub struct ThreadCtx<'t, T: Tracer> {
    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub global_id: usize,
    /// Block index within the grid.
    pub block_id: usize,
    /// Thread index within the block.
    pub thread_in_block: usize,
    tracer: &'t mut T,
}

impl<'t, T: Tracer> ThreadCtx<'t, T> {
    /// Reads element `i` of a device buffer, tracing the access.
    #[inline(always)]
    pub fn read<E: Copy>(&mut self, buf: &DeviceBuffer<E>, i: usize) -> E {
        self.tracer.load(buf.addr_of(i), std::mem::size_of::<E>());
        buf.as_slice()[i]
    }

    /// Reads a contiguous range of a device buffer (e.g. one point's
    /// coordinates), tracing it as a single wide access.
    #[inline(always)]
    pub fn read_range<'b, E: Copy>(
        &mut self,
        buf: &'b DeviceBuffer<E>,
        start: usize,
        len: usize,
    ) -> &'b [E] {
        self.tracer
            .load(buf.addr_of(start), len * std::mem::size_of::<E>());
        &buf.as_slice()[start..start + len]
    }

    /// Records an atomic RMW on address `addr` (used by append buffers).
    #[inline(always)]
    pub fn trace_atomic(&mut self, addr: u64, bytes: usize) {
        self.tracer.atomic(addr, bytes);
    }

    /// Records a plain store.
    #[inline(always)]
    pub fn trace_store(&mut self, addr: u64, bytes: usize) {
        self.tracer.store(addr, bytes);
    }

    /// Direct access to the tracer (for custom instrumentation).
    #[inline(always)]
    pub fn tracer(&mut self) -> &mut T {
        self.tracer
    }
}

/// A GPU kernel: a per-thread body plus its resource footprint.
///
/// `thread` is generic over the tracer so one implementation serves both
/// the fast and profiled modes (the trait is deliberately not object-safe).
pub trait Kernel: Sync {
    /// Registers/thread and shared memory the "compiled" kernel would use;
    /// feeds the occupancy calculator.
    fn resources(&self) -> KernelResources;

    /// The per-thread body. Called once for every global thread id in
    /// `0..total_threads` of the launch.
    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>);
}

/// Launch configuration (the paper uses 256 threads per block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threads per block.
    pub block_threads: usize,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        // Paper §VI-B: "configured to run with 256 threads per block".
        Self { block_threads: 256 }
    }
}

/// Timing and configuration facts about one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchStats {
    /// Wall-clock execution time of the launch on the **host** pool.
    pub wall: Duration,
    /// Modeled execution time on the simulated device: the aggregate
    /// thread work (`wall × host threads used`) divided by the device's
    /// [`throughput_vs_host_core`](crate::DeviceSpec::throughput_vs_host_core).
    /// Relative comparisons between launches are unaffected by the model
    /// constant; only absolute magnitudes depend on it.
    pub modeled_wall: Duration,
    /// Number of thread blocks executed.
    pub blocks: usize,
    /// Total logical threads.
    pub threads: usize,
    /// Theoretical occupancy for this kernel/config on this device.
    pub occupancy: OccupancyResult,
}

/// Executes `kernel` over `total_threads` logical threads in fast mode.
///
/// Blocks are independent parallel tasks, mirroring how a GPU schedules
/// blocks onto SMs in any order. Within a block, threads run sequentially
/// (a valid SIMT interleaving since the paper's kernels have no intra-block
/// synchronization).
pub fn launch<K: Kernel>(
    device: &Device,
    cfg: LaunchConfig,
    total_threads: usize,
    kernel: &K,
) -> LaunchStats {
    let occ = occupancy(device.spec(), kernel.resources(), cfg.block_threads);
    let blocks = total_threads.div_ceil(cfg.block_threads.max(1));
    let mut span = sj_obs::Span::enter("gpu.launch");
    let start = Instant::now();
    (0..blocks).into_par_iter().for_each(|block_id| {
        let mut tracer = NoTrace;
        run_block(kernel, cfg, total_threads, block_id, &mut tracer);
    });
    let wall = start.elapsed();
    let stats = LaunchStats {
        wall,
        modeled_wall: model_device_time(device, wall),
        blocks,
        threads: total_threads,
        occupancy: occ,
    };
    span.label("blocks", blocks);
    span.label("threads", total_threads);
    span.set_modeled_dur(stats.modeled_wall.as_secs_f64());
    stats
}

/// Converts measured host wall time into modeled device time (see
/// [`LaunchStats::modeled_wall`]).
pub fn model_device_time(device: &Device, host_wall: Duration) -> Duration {
    let host_threads = rayon::current_num_threads().max(1) as f64;
    let factor = device.spec().throughput_vs_host_core.max(1e-9);
    Duration::from_secs_f64(host_wall.as_secs_f64() * host_threads / factor)
}

/// Executes `kernel` in profiled mode: blocks are assigned round-robin to
/// the device's SMs, each SM owns a cold L1 cache simulator and executes
/// its blocks sequentially (SMs in parallel). Returns launch stats plus the
/// merged cache statistics.
pub fn launch_profiled<K: Kernel>(
    device: &Device,
    cfg: LaunchConfig,
    total_threads: usize,
    kernel: &K,
) -> (LaunchStats, CacheStats) {
    let spec = device.spec();
    let occ = occupancy(spec, kernel.resources(), cfg.block_threads);
    let blocks = total_threads.div_ceil(cfg.block_threads.max(1));
    let sm_count = spec.sm_count;
    let cache_cfg = crate::cache::CacheConfig {
        capacity_bytes: spec.l1_bytes_per_sm,
        line_bytes: spec.l1_line_bytes,
        associativity: spec.l1_associativity,
    };
    let mut span = sj_obs::Span::enter("gpu.launch");
    span.label("profiled", 1u64);
    let start = Instant::now();
    let per_sm: Vec<CacheStats> = (0..sm_count)
        .into_par_iter()
        .map(|sm| {
            let mut tracer = CacheTracer {
                cache: CacheSim::new(cache_cfg),
            };
            let mut block_id = sm;
            while block_id < blocks {
                run_block(kernel, cfg, total_threads, block_id, &mut tracer);
                block_id += sm_count;
            }
            *tracer.cache.stats()
        })
        .collect();
    let mut merged = CacheStats::default();
    for s in &per_sm {
        merged.merge(s);
    }
    let wall = start.elapsed();
    let stats = LaunchStats {
        wall,
        modeled_wall: model_device_time(device, wall),
        blocks,
        threads: total_threads,
        occupancy: occ,
    };
    span.label("blocks", blocks);
    span.label("threads", total_threads);
    span.set_modeled_dur(stats.modeled_wall.as_secs_f64());
    (stats, merged)
}

#[inline]
fn run_block<K: Kernel, T: Tracer>(
    kernel: &K,
    cfg: LaunchConfig,
    total_threads: usize,
    block_id: usize,
    tracer: &mut T,
) {
    let base = block_id * cfg.block_threads;
    let end = (base + cfg.block_threads).min(total_threads);
    for global_id in base..end {
        tracer.begin_thread(global_id, global_id - base);
        let mut ctx = ThreadCtx {
            global_id,
            block_id,
            thread_in_block: global_id - base,
            tracer,
        };
        kernel.thread(&mut ctx);
    }
}

/// Crate-public block runner for alternative launch drivers (work
/// profiling lives in [`crate::work`]).
pub(crate) fn run_block_pub<K: Kernel, T: Tracer>(
    kernel: &K,
    cfg: LaunchConfig,
    total_threads: usize,
    block_id: usize,
    tracer: &mut T,
) {
    run_block(kernel, cfg, total_threads, block_id, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Doubles every element: out[i] = 2 * in[i].
    struct DoubleKernel<'a> {
        input: &'a DeviceBuffer<f64>,
        output: &'a [AtomicU64],
    }

    impl Kernel for DoubleKernel<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                registers_per_thread: 16,
                shared_mem_per_block: 0,
            }
        }

        fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
            let i = ctx.global_id;
            if i >= self.input.len() {
                return;
            }
            let x = ctx.read(self.input, i);
            self.output[i].store((2.0 * x).to_bits(), Ordering::Relaxed);
        }
    }

    #[test]
    fn launch_covers_every_thread_exactly_once() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let n = 1000;
        let counter = AtomicUsize::new(0);
        struct CountKernel<'a>(&'a AtomicUsize);
        impl Kernel for CountKernel<'_> {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    registers_per_thread: 8,
                    shared_mem_per_block: 0,
                }
            }
            fn thread<T: Tracer>(&self, _ctx: &mut ThreadCtx<'_, T>) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stats = launch(&dev, LaunchConfig::default(), n, &CountKernel(&counter));
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(stats.blocks, 4); // ceil(1000/256)
        assert_eq!(stats.threads, n);
    }

    #[test]
    fn kernel_computes_correct_results() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let input_data: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let input = dev.alloc_from_host(&input_data).unwrap();
        let output: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let k = DoubleKernel {
            input: &input,
            output: &output,
        };
        launch(&dev, LaunchConfig::default(), 500, &k);
        for (i, o) in output.iter().enumerate() {
            assert_eq!(f64::from_bits(o.load(Ordering::Relaxed)), 2.0 * i as f64);
        }
    }

    #[test]
    fn profiled_mode_matches_fast_mode_results() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let input_data: Vec<f64> = (0..300).map(|i| i as f64 * 0.5).collect();
        let input = dev.alloc_from_host(&input_data).unwrap();
        let fast: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(0)).collect();
        let prof: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(0)).collect();
        launch(
            &dev,
            LaunchConfig::default(),
            300,
            &DoubleKernel {
                input: &input,
                output: &fast,
            },
        );
        let (_stats, cache) = launch_profiled(
            &dev,
            LaunchConfig::default(),
            300,
            &DoubleKernel {
                input: &input,
                output: &prof,
            },
        );
        for (a, b) in fast.iter().zip(&prof) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
        // 300 8-byte loads = 2400 bytes requested.
        assert_eq!(cache.bytes_requested, 2400);
        assert!(cache.hits + cache.misses >= 300);
    }

    #[test]
    fn sequential_scan_has_good_cache_behaviour() {
        // A sequential 8-byte-stride scan touches each 32-byte line 4 times:
        // 1 miss + 3 hits → 75% hit rate.
        let dev = Device::new(DeviceSpec::small_test_device());
        let input_data: Vec<f64> = vec![1.0; 4096];
        let input = dev.alloc_from_host(&input_data).unwrap();
        struct ScanKernel<'a>(&'a DeviceBuffer<f64>);
        impl Kernel for ScanKernel<'_> {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    registers_per_thread: 8,
                    shared_mem_per_block: 0,
                }
            }
            fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
                if ctx.global_id < self.0.len() {
                    let _ = ctx.read(self.0, ctx.global_id);
                }
            }
        }
        let (_s, cache) = launch_profiled(&dev, LaunchConfig::default(), 4096, &ScanKernel(&input));
        let rate = cache.hit_rate();
        assert!(
            (rate - 0.75).abs() < 0.02,
            "sequential scan hit rate {rate}, expected ~0.75"
        );
    }

    #[test]
    fn empty_launch_is_fine() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let counter = AtomicUsize::new(0);
        struct CountKernel<'a>(&'a AtomicUsize);
        impl Kernel for CountKernel<'_> {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    registers_per_thread: 8,
                    shared_mem_per_block: 0,
                }
            }
            fn thread<T: Tracer>(&self, _ctx: &mut ThreadCtx<'_, T>) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stats = launch(&dev, LaunchConfig::default(), 0, &CountKernel(&counter));
        assert_eq!(stats.blocks, 0);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn block_and_thread_ids_are_consistent() {
        let dev = Device::new(DeviceSpec::small_test_device());
        struct CheckKernel;
        impl Kernel for CheckKernel {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    registers_per_thread: 8,
                    shared_mem_per_block: 0,
                }
            }
            fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
                assert_eq!(ctx.global_id, ctx.block_id * 64 + ctx.thread_in_block);
                assert!(ctx.thread_in_block < 64);
            }
        }
        launch(&dev, LaunchConfig { block_threads: 64 }, 1000, &CheckKernel);
    }
}
