//! A software SIMT device model — the substrate that stands in for the
//! paper's NVIDIA TITAN X (Pascal).
//!
//! The container this reproduction runs in has no GPU, and Rust GPU-kernel
//! authoring remains immature, so the paper's CUDA device is replaced by a
//! simulator that preserves every property the paper's *arguments* rely on:
//!
//! * **Massive data parallelism** — kernels are written one-thread-per-point
//!   exactly as in the paper (Algorithm 1) and executed block-by-block on a
//!   thread pool ([`kernel`]).
//! * **Bounded global memory** — allocations are accounted against the
//!   device capacity and fail when exhausted ([`memory`]), which is what
//!   forces the result-set batching scheme of §V-A to exist.
//! * **Occupancy arithmetic** — a CUDA-style theoretical-occupancy
//!   calculator driven by registers/thread and block size ([`mod@occupancy`]),
//!   reproducing Table II's occupancy column.
//! * **Unified (L1) cache behaviour** — a per-SM set-associative cache
//!   simulator fed by traced kernel loads ([`cache`]), reproducing Table
//!   II's cache-utilization column.
//! * **Host↔device transfer cost** — a PCIe bandwidth/latency model with
//!   multi-stream overlap accounting ([`transfer`]), used by the batching
//!   executor to model computation/communication overlap.
//! * **Multi-device pools** — several devices with independent memory
//!   pools plus per-device usage aggregation ([`pool`]), the substrate of
//!   the sharded multi-device engine.
//! * **Fault injection** — seeded, reproducible schedules of device
//!   crashes, transient upload/launch failures and straggler slowdowns
//!   ([`fault`]), with a per-device health ledger (probation +
//!   exponential-backoff reinstatement probes) the pool consults when
//!   leasing — the adversarial substrate the layers above prove their
//!   failover against.
//!
//! Kernels run in two modes sharing one code path: a **fast mode** (no-op
//! tracer, zero overhead after monomorphization) used for timing figures,
//! and a **profiled mode** (cache-simulating tracer) used for Table II.

pub mod append;
pub mod cache;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod pool;
pub mod profiler;
pub mod transfer;
pub mod work;

pub use append::{AppendBuffer, Reservation};
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use device::{Device, DeviceSpec};
pub use fault::{
    DeviceFault, DeviceHealth, FaultEvent, FaultInjector, FaultKind, FaultOp, FaultPlan,
    HealthConfig, HealthLedger, StormConfig,
};
pub use kernel::{
    launch, launch_profiled, model_device_time, Kernel, LaunchConfig, LaunchStats, NoTrace,
    ThreadCtx, Tracer,
};
pub use memory::{DeviceBuffer, Evictor, LedgerEntry, MemoryLedger, MemoryPool, OutOfMemory};
pub use occupancy::{occupancy, KernelResources, OccupancyResult};
pub use pool::{DeviceLease, DevicePool, DeviceTally, PoolPressure, PoolProfiler, QueuedWork};
pub use profiler::{KernelMetrics, ProfiledLaunch};
pub use transfer::{BatchCost, StreamTimeline, TimelineReport, TransferModel};
pub use work::{launch_work_profiled, WorkProfile, WorkTracer};
