//! Profiler-style metric reports (the simulator's "nvprof").
//!
//! The paper collects two metrics with the NVIDIA Visual Profiler to
//! explain UNICOMP's behaviour (Table II): *theoretical occupancy* and
//! *unified cache bandwidth utilization*. [`ProfiledLaunch`] packages the
//! simulator's equivalents: the occupancy calculation plus the cache
//! simulator's statistics, with bandwidth figures derived from the fast-run
//! wall time (profiled runs pay simulation overhead, so throughput is
//! always computed against an untraced execution of the same kernel).

use crate::cache::CacheStats;
use crate::device::Device;
use crate::kernel::{launch, launch_profiled, Kernel, LaunchConfig, LaunchStats};
use std::time::Duration;

/// Combined metrics for one kernel, mirroring the paper's Table II columns.
#[derive(Clone, Debug)]
pub struct KernelMetrics {
    /// Wall time of the *fast* (untraced) execution.
    pub wall: Duration,
    /// Theoretical occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource limited occupancy.
    pub occupancy_limiter: &'static str,
    /// Merged L1 cache statistics across SMs.
    pub cache: CacheStats,
    /// Unified-cache bandwidth utilization in GB/s: bytes served from cache
    /// per second of fast-run wall time. The paper's absolute numbers
    /// depend on its hardware; what Table II interprets are the *ratios*
    /// between kernel variants, which this metric preserves.
    pub unified_cache_gbs: f64,
    /// DRAM traffic in GB/s by the same construction.
    pub dram_gbs: f64,
}

impl KernelMetrics {
    /// L1 hit rate convenience accessor.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Runs a kernel twice — once untraced for timing, once traced for cache
/// statistics — and combines the results.
pub struct ProfiledLaunch;

impl ProfiledLaunch {
    /// Profiles `kernel` over `total_threads` threads.
    pub fn run<K: Kernel>(
        device: &Device,
        cfg: LaunchConfig,
        total_threads: usize,
        kernel: &K,
    ) -> (LaunchStats, KernelMetrics) {
        let fast = launch(device, cfg, total_threads, kernel);
        let (_, cache) = launch_profiled(device, cfg, total_threads, kernel);
        let secs = fast.wall.as_secs_f64().max(1e-12);
        let metrics = KernelMetrics {
            wall: fast.wall,
            occupancy: fast.occupancy.occupancy,
            occupancy_limiter: fast.occupancy.limiter,
            unified_cache_gbs: cache.bytes_from_cache as f64 / secs / 1e9,
            dram_gbs: cache.bytes_from_dram as f64 / secs / 1e9,
            cache,
        };
        (fast, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::{ThreadCtx, Tracer};
    use crate::memory::DeviceBuffer;
    use crate::occupancy::KernelResources;

    struct SumKernel<'a> {
        data: &'a DeviceBuffer<f64>,
        regs: usize,
    }

    impl Kernel for SumKernel<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                registers_per_thread: self.regs,
                shared_mem_per_block: 0,
            }
        }
        fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
            if ctx.global_id < self.data.len() {
                let v = ctx.read(self.data, ctx.global_id);
                std::hint::black_box(v);
            }
        }
    }

    #[test]
    fn profiled_launch_reports_consistent_metrics() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let data = dev.alloc_from_host(&vec![1.0f64; 10_000]).unwrap();
        let (stats, metrics) = ProfiledLaunch::run(
            &dev,
            LaunchConfig::default(),
            10_000,
            &SumKernel {
                data: &data,
                regs: 32,
            },
        );
        assert_eq!(stats.threads, 10_000);
        assert_eq!(metrics.occupancy, 1.0);
        assert_eq!(metrics.cache.bytes_requested, 80_000);
        assert!(metrics.unified_cache_gbs >= 0.0);
        assert!(metrics.hit_rate() > 0.5); // sequential 8B stride → 75%
    }

    #[test]
    fn higher_register_usage_lowers_reported_occupancy() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let data = dev.alloc_from_host(&vec![1.0f64; 1000]).unwrap();
        let (_, light) = ProfiledLaunch::run(
            &dev,
            LaunchConfig::default(),
            1000,
            &SumKernel {
                data: &data,
                regs: 32,
            },
        );
        let (_, heavy) = ProfiledLaunch::run(
            &dev,
            LaunchConfig::default(),
            1000,
            &SumKernel {
                data: &data,
                regs: 64,
            },
        );
        assert!(heavy.occupancy < light.occupancy);
        assert_eq!(heavy.occupancy_limiter, "registers");
    }
}
