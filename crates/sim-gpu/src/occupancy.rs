//! CUDA-style theoretical occupancy calculation.
//!
//! Theoretical occupancy is the ratio of resident warps to the SM's maximum
//! resident warps, given a kernel's resource footprint (registers per
//! thread, shared memory per block) and launch configuration. It is the
//! first metric the paper inspects in Table II: UNICOMP raises register
//! pressure, which lowers how many blocks fit on an SM, which lowers
//! occupancy (100% → 75% in 2-D; 62.5% → 50% in 5-/6-D).
//!
//! The arithmetic follows the CUDA occupancy calculator: the number of
//! blocks resident on one SM is the minimum of four limits (block-count
//! limit, thread-count limit, register-file limit, shared-memory limit).

use crate::device::DeviceSpec;

/// Resource footprint of a compiled kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelResources {
    /// Registers used per thread.
    pub registers_per_thread: usize,
    /// Static shared memory per block in bytes.
    pub shared_mem_per_block: usize,
}

/// Result of the occupancy calculation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OccupancyResult {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// Theoretical occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource bound the result ("blocks", "threads", "registers",
    /// "shared").
    pub limiter: &'static str,
}

/// Computes theoretical occupancy for a kernel on a device at the given
/// block size.
///
/// # Panics
///
/// Panics if `block_threads` is zero or exceeds the device block limit.
pub fn occupancy(spec: &DeviceSpec, res: KernelResources, block_threads: usize) -> OccupancyResult {
    assert!(block_threads > 0, "block size must be positive");
    assert!(
        block_threads <= spec.max_threads_per_block,
        "block size {} exceeds device limit {}",
        block_threads,
        spec.max_threads_per_block
    );

    let warps_per_block = block_threads.div_ceil(spec.warp_size);

    // Register limit: registers are allocated per warp with a granularity.
    let regs_per_warp = res.registers_per_thread * spec.warp_size;
    let regs_per_warp =
        regs_per_warp.div_ceil(spec.register_alloc_granularity) * spec.register_alloc_granularity;
    let regs_per_block = regs_per_warp * warps_per_block;
    let reg_limit = spec
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(usize::MAX);

    // Shared memory limit.
    let shared_limit = spec
        .shared_mem_per_sm
        .checked_div(res.shared_mem_per_block)
        .unwrap_or(usize::MAX);

    let thread_limit = spec.max_threads_per_sm / block_threads;
    let block_limit = spec.max_blocks_per_sm;

    let (blocks_per_sm, limiter) = [
        (block_limit, "blocks"),
        (thread_limit, "threads"),
        (reg_limit, "registers"),
        (shared_limit, "shared"),
    ]
    .into_iter()
    .min_by_key(|&(v, _)| v)
    .expect("non-empty limit list");

    let max_warps = spec.max_threads_per_sm / spec.warp_size;
    let warps = blocks_per_sm * warps_per_block;
    OccupancyResult {
        blocks_per_sm,
        warps_per_sm: warps,
        occupancy: warps as f64 / max_warps as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> DeviceSpec {
        DeviceSpec::titan_x_pascal()
    }

    fn occ(regs: usize) -> f64 {
        occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: regs,
                shared_mem_per_block: 0,
            },
            256,
        )
        .occupancy
    }

    /// The four occupancy values that appear in the paper's Table II, at
    /// the paper's launch configuration of 256 threads/block.
    #[test]
    fn table_two_occupancy_points() {
        assert_eq!(occ(32), 1.0); // GPU kernel, 2-D
        assert_eq!(occ(40), 0.75); // UNICOMP kernel, 2-D
        assert_eq!(occ(44), 0.625); // GPU kernel, 5-D/6-D
        assert_eq!(occ(64), 0.5); // UNICOMP kernel, 5-D/6-D
    }

    #[test]
    fn register_limited_kernel_reports_limiter() {
        let r = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 64,
                shared_mem_per_block: 0,
            },
            256,
        );
        assert_eq!(r.limiter, "registers");
        assert_eq!(r.blocks_per_sm, 4);
        assert_eq!(r.warps_per_sm, 32);
    }

    #[test]
    fn thread_limited_when_registers_are_light() {
        let r = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 16,
                shared_mem_per_block: 0,
            },
            256,
        );
        assert_eq!(r.limiter, "threads");
        assert_eq!(r.occupancy, 1.0);
        assert_eq!(r.blocks_per_sm, 8);
    }

    #[test]
    fn shared_memory_can_limit() {
        let r = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 16,
                shared_mem_per_block: 48 * 1024,
            },
            256,
        );
        assert_eq!(r.limiter, "shared");
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.occupancy, 0.25);
    }

    #[test]
    fn block_limit_binds_tiny_blocks() {
        let r = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 8,
                shared_mem_per_block: 0,
            },
            32,
        );
        assert_eq!(r.limiter, "blocks");
        assert_eq!(r.blocks_per_sm, 32);
        assert_eq!(r.occupancy, 0.5); // 32 blocks × 1 warp / 64 warps
    }

    #[test]
    fn occupancy_monotone_in_registers() {
        let mut prev = 2.0;
        for regs in [16, 32, 48, 64, 96, 128, 255] {
            let o = occ(regs);
            assert!(o <= prev, "occupancy must not increase with registers");
            prev = o;
        }
    }

    #[test]
    fn register_granularity_rounds_up() {
        // 33 regs/thread × 32 = 1056 → rounds to 1280 (granularity 256) per
        // warp; 8 warps/block → 10240 per block → 6 blocks, not 7.
        let r = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 33,
                shared_mem_per_block: 0,
            },
            256,
        );
        assert_eq!(r.blocks_per_sm, 6);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let _ = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 32,
                shared_mem_per_block: 0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        let _ = occupancy(
            &titan(),
            KernelResources {
                registers_per_thread: 32,
                shared_mem_per_block: 0,
            },
            2048,
        );
    }
}
