//! Device specifications and the device handle.

use crate::fault::{DeviceFault, FaultInjector, FaultOp};
use crate::memory::{DeviceBuffer, MemoryPool, OutOfMemory};
use crate::transfer::TransferModel;
use std::sync::{Arc, OnceLock};

/// Static hardware parameters of a simulated device.
///
/// Defaults mirror the paper's evaluation platform, an NVIDIA TITAN X
/// (Pascal, GP102): 28 SMs, 12 GiB global memory, 64K 32-bit registers and
/// up to 2048 resident threads per SM, 48 KiB unified (L1) cache per SM.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp (32 on every NVIDIA architecture).
    pub warp_size: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Register allocation granularity (registers are allocated per warp in
    /// multiples of this).
    pub register_alloc_granularity: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Unified (L1) cache size per SM in bytes.
    pub l1_bytes_per_sm: usize,
    /// Cache line (sector) size in bytes.
    pub l1_line_bytes: usize,
    /// L1 associativity.
    pub l1_associativity: usize,
    /// Host↔device interconnect bandwidth in GiB/s (PCIe 3.0 x16 effective).
    pub pcie_gib_per_s: f64,
    /// Per-transfer fixed latency in microseconds.
    pub pcie_latency_us: f64,
    /// Modeled device throughput relative to **one host CPU core** for the
    /// memory-bound FP64 kernels this workspace runs.
    ///
    /// The simulator executes kernel threads on host cores, so measured
    /// wall time reflects host throughput; multiplying the aggregate
    /// thread work by `1 / throughput_vs_host_core` yields the modeled
    /// device-kernel time. The TITAN X default of 25 sits between the
    /// FP64-compute ratio (≈342 GFLOP/s GPU vs ≈34 GFLOP/s for one 2.1 GHz
    /// AVX2 core ⇒ ~10×) and the memory-bandwidth ratio (≈480 GB/s GDDR5X
    /// vs ≈15 GB/s per-core ⇒ ~32×); the paper's kernels are
    /// bandwidth-bound, and its own measured average speedup over one CPU
    /// core (26.9×) falls in the same band. This single parameter scales
    /// *absolute* modeled times only — every relative comparison between
    /// kernel variants, ε values, datasets and dimensionalities comes
    /// from measured work.
    pub throughput_vs_host_core: f64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU.
    pub fn titan_x_pascal() -> Self {
        Self {
            name: "SIM TITAN X (Pascal)",
            sm_count: 28,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            registers_per_sm: 65_536,
            register_alloc_granularity: 256,
            shared_mem_per_sm: 96 * 1024,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            l1_bytes_per_sm: 48 * 1024,
            l1_line_bytes: 32,
            l1_associativity: 4,
            pcie_gib_per_s: 11.5,
            pcie_latency_us: 10.0,
            throughput_vs_host_core: 25.0,
        }
    }

    /// A tiny device for tests: 2 SMs, small memory, so out-of-memory paths
    /// and batching are exercised without gigabyte allocations.
    pub fn small_test_device() -> Self {
        Self {
            name: "SIM test device",
            sm_count: 2,
            global_mem_bytes: 8 * 1024 * 1024,
            l1_bytes_per_sm: 4 * 1024,
            ..Self::titan_x_pascal()
        }
    }

    /// Same compute configuration as the TITAN X but with a custom global
    /// memory capacity — used to force batching at reproduction scale.
    pub fn titan_x_with_memory(global_mem_bytes: usize) -> Self {
        Self {
            global_mem_bytes,
            ..Self::titan_x_pascal()
        }
    }

    /// The host↔device transfer model implied by the PCIe parameters.
    pub fn transfer_model(&self) -> TransferModel {
        TransferModel::new(self.pcie_gib_per_s, self.pcie_latency_us)
    }
}

/// A handle to a simulated device: a spec plus its global-memory pool.
///
/// Cloning the handle shares the pool (as multiple host threads share one
/// physical GPU).
#[derive(Clone, Debug)]
pub struct Device {
    spec: Arc<DeviceSpec>,
    pool: MemoryPool,
    /// Armed at most once per device (shared across clones, like the
    /// memory pool): the fault injector this device consults at its
    /// upload/launch boundaries, plus the device's pool index. Empty on
    /// standalone devices and on pools that never arm a [`FaultPlan`] —
    /// the fault-free fast path is a single `OnceLock` read.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    faults: Arc<OnceLock<FaultHandle>>,
}

#[derive(Debug)]
struct FaultHandle {
    injector: Arc<FaultInjector>,
    index: usize,
}

impl Device {
    /// Brings up a device with the given spec.
    pub fn new(spec: DeviceSpec) -> Self {
        let pool = MemoryPool::new(spec.global_mem_bytes);
        Self {
            spec: Arc::new(spec),
            pool,
            faults: Arc::new(OnceLock::new()),
        }
    }

    /// The device's static parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Bytes of global memory currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.pool.used()
    }

    /// Bytes of global memory still available.
    pub fn free_bytes(&self) -> usize {
        self.spec.global_mem_bytes - self.pool.used()
    }

    /// Allocates a zero-initialized buffer of `len` elements in global
    /// memory. Fails with [`OutOfMemory`] if capacity would be exceeded —
    /// exactly the constraint that motivates the paper's batching scheme.
    pub fn alloc_zeroed<T: Copy + Default>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OutOfMemory> {
        DeviceBuffer::zeroed(&self.pool, len)
    }

    /// Allocates a buffer and copies `data` into it (a host→device upload;
    /// the transfer time is modeled separately via
    /// [`DeviceSpec::transfer_model`]).
    pub fn alloc_from_host<T: Copy>(&self, data: &[T]) -> Result<DeviceBuffer<T>, OutOfMemory> {
        DeviceBuffer::from_host(&self.pool, data)
    }

    /// The memory pool (for advanced allocation patterns in tests).
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// Installs the pool's armed fault injector on this device. Called by
    /// [`crate::DevicePool::inject_faults`]; every clone of the device
    /// (leases, snapshots, sessions) shares the installed handle.
    ///
    /// # Panics
    ///
    /// Panics if an injector is already installed.
    pub(crate) fn arm_faults(&self, injector: Arc<FaultInjector>, index: usize) {
        if self.faults.set(FaultHandle { injector, index }).is_err() {
            panic!("device {index} already has a fault injector armed");
        }
    }

    /// Counts one device operation against the armed fault injector and
    /// fails it if a fault fires (or the device is down). A no-op
    /// returning `Ok` on devices with no injector armed.
    ///
    /// Execution paths call this at the two boundaries the fault model
    /// covers: before a host→device snapshot upload ([`FaultOp::Upload`])
    /// and before a batched kernel-launch sequence ([`FaultOp::Launch`]).
    pub fn fault_check(&self, op: FaultOp) -> Result<(), DeviceFault> {
        match self.faults.get() {
            Some(h) => h.injector.check(h.index, op),
            None => Ok(()),
        }
    }

    /// Modeled-time inflation factor from an open straggler window (1.0
    /// when healthy or no injector is armed). Execution paths multiply
    /// their modeled device times by this — a straggling device answers
    /// exactly, just late.
    pub fn slowdown(&self) -> f64 {
        match self.faults.get() {
            Some(h) => h.injector.slowdown(h.index),
            None => 1.0,
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::new(DeviceSpec::titan_x_pascal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_parameters() {
        let s = DeviceSpec::titan_x_pascal();
        assert_eq!(s.sm_count, 28);
        assert_eq!(s.warp_size, 32);
        assert_eq!(s.global_mem_bytes, 12 * 1024 * 1024 * 1024);
        assert_eq!(s.registers_per_sm, 65_536);
    }

    #[test]
    fn allocation_accounting() {
        let dev = Device::new(DeviceSpec::small_test_device());
        assert_eq!(dev.used_bytes(), 0);
        let buf = dev.alloc_zeroed::<f64>(1024).unwrap();
        assert_eq!(dev.used_bytes(), 8 * 1024);
        drop(buf);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let cap = dev.spec().global_mem_bytes;
        let err = dev.alloc_zeroed::<u8>(cap + 1).unwrap_err();
        assert!(err.requested > err.available);
        // An allocation that exactly fits succeeds.
        let buf = dev.alloc_zeroed::<u8>(cap).unwrap();
        assert_eq!(dev.free_bytes(), 0);
        drop(buf);
    }

    #[test]
    fn cloned_handles_share_the_pool() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let dev2 = dev.clone();
        let _buf = dev.alloc_zeroed::<u64>(100).unwrap();
        assert_eq!(dev2.used_bytes(), 800);
    }

    #[test]
    fn upload_roundtrip() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let buf = dev.alloc_from_host(&[1.0f64, 2.0, 3.0]).unwrap();
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
