//! Per-thread work accounting and warp-imbalance analysis.
//!
//! The paper's case for a grid index over index-trees is *regularity*:
//! bounded adjacent-cell searches keep threads in a warp on similar
//! control paths, where tree traversals diverge (§IV-A, citing Han &
//! Abdelrahman on branch divergence). The simulator cannot execute warps
//! in lockstep, but it can measure the quantity that matters: how evenly
//! traced work is distributed across the threads of each warp. A warp
//! whose threads perform very different amounts of work serializes on a
//! real SIMD machine; the max/mean work ratio per warp is the standard
//! first-order divergence proxy.

use crate::device::Device;
use crate::kernel::{Kernel, LaunchConfig, LaunchStats, Tracer};
use crate::occupancy::occupancy;
use rayon::prelude::*;
use std::time::Instant;

/// Tracer that counts traced operations and bytes per thread.
#[derive(Debug, Default)]
pub struct WorkTracer {
    current: usize,
    /// Traced accesses per thread (indexed by thread-in-block).
    pub ops: Vec<u64>,
    /// Traced bytes per thread.
    pub bytes: Vec<u64>,
}

impl Tracer for WorkTracer {
    #[inline]
    fn load(&mut self, _addr: u64, bytes: usize) {
        self.ops[self.current] += 1;
        self.bytes[self.current] += bytes as u64;
    }

    #[inline]
    fn begin_thread(&mut self, _global_id: usize, thread_in_block: usize) {
        if thread_in_block >= self.ops.len() {
            self.ops.resize(thread_in_block + 1, 0);
            self.bytes.resize(thread_in_block + 1, 0);
        }
        self.current = thread_in_block;
    }
}

/// Aggregated per-thread work of one launch.
#[derive(Clone, Debug)]
pub struct WorkProfile {
    /// Traced accesses per logical thread (global id order).
    pub ops: Vec<u64>,
    /// Traced bytes per logical thread.
    pub bytes: Vec<u64>,
    warp_size: usize,
}

impl WorkProfile {
    /// Total traced accesses.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Total traced bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Per-warp imbalance factors: `max(ops) / mean(ops)` over each
    /// 32-thread warp (1.0 = perfectly regular; warp_size = fully
    /// serialized single-thread work). Warps with no work are skipped.
    pub fn warp_imbalance(&self) -> Vec<f64> {
        self.ops
            .chunks(self.warp_size)
            .filter_map(|warp| {
                let max = *warp.iter().max()? as f64;
                let sum: u64 = warp.iter().sum();
                if sum == 0 {
                    None
                } else {
                    Some(max * warp.len() as f64 / sum as f64)
                }
            })
            .collect()
    }

    /// Mean warp imbalance (the headline divergence proxy).
    pub fn mean_warp_imbalance(&self) -> f64 {
        let v = self.warp_imbalance();
        if v.is_empty() {
            1.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Modeled SIMD efficiency in `(0, 1]`: useful lanes ÷ issued lanes
    /// when every warp serializes to its slowest thread.
    pub fn simd_efficiency(&self) -> f64 {
        let mut useful = 0u64;
        let mut issued = 0u64;
        for warp in self.ops.chunks(self.warp_size) {
            let max = warp.iter().copied().max().unwrap_or(0);
            useful += warp.iter().sum::<u64>();
            issued += max * warp.len() as u64;
        }
        if issued == 0 {
            1.0
        } else {
            useful as f64 / issued as f64
        }
    }
}

/// Runs a kernel with per-thread work tracing. Blocks execute in
/// parallel, each with its own [`WorkTracer`]; the per-block counters are
/// stitched into a launch-wide [`WorkProfile`].
pub fn launch_work_profiled<K: Kernel>(
    device: &Device,
    cfg: LaunchConfig,
    total_threads: usize,
    kernel: &K,
) -> (LaunchStats, WorkProfile) {
    let occ = occupancy(device.spec(), kernel.resources(), cfg.block_threads);
    let blocks = total_threads.div_ceil(cfg.block_threads.max(1));
    let start = Instant::now();
    let per_block: Vec<(usize, WorkTracer)> = (0..blocks)
        .into_par_iter()
        .map(|block_id| {
            let mut tracer = WorkTracer::default();
            crate::kernel::run_block_pub(kernel, cfg, total_threads, block_id, &mut tracer);
            (block_id, tracer)
        })
        .collect();
    let wall = start.elapsed();
    let mut ops = vec![0u64; total_threads];
    let mut bytes = vec![0u64; total_threads];
    for (block_id, tracer) in per_block {
        let base = block_id * cfg.block_threads;
        for (i, (&o, &b)) in tracer.ops.iter().zip(&tracer.bytes).enumerate() {
            if base + i < total_threads {
                ops[base + i] = o;
                bytes[base + i] = b;
            }
        }
    }
    (
        LaunchStats {
            wall,
            modeled_wall: crate::kernel::model_device_time(device, wall),
            blocks,
            threads: total_threads,
            occupancy: occ,
        },
        WorkProfile {
            ops,
            bytes,
            warp_size: device.spec().warp_size,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::ThreadCtx;
    use crate::memory::DeviceBuffer;
    use crate::occupancy::KernelResources;

    /// Thread i performs i % 4 + 1 traced reads — known imbalance.
    struct SkewKernel<'a>(&'a DeviceBuffer<f64>);

    impl Kernel for SkewKernel<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                registers_per_thread: 8,
                shared_mem_per_block: 0,
            }
        }
        fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
            let reps = ctx.global_id % 4 + 1;
            for r in 0..reps {
                let _ = ctx.read(self.0, r);
            }
        }
    }

    #[test]
    fn per_thread_counts_are_exact() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let buf = dev.alloc_from_host(&[0.0f64; 8]).unwrap();
        let (_stats, profile) = launch_work_profiled(
            &dev,
            LaunchConfig { block_threads: 64 },
            200,
            &SkewKernel(&buf),
        );
        for (i, &o) in profile.ops.iter().enumerate() {
            assert_eq!(o, (i % 4 + 1) as u64, "thread {i}");
        }
        assert_eq!(
            profile.total_ops(),
            (0..200).map(|i| (i % 4 + 1) as u64).sum()
        );
        assert_eq!(profile.total_bytes(), profile.total_ops() * 8);
    }

    #[test]
    fn imbalance_matches_hand_computation() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let buf = dev.alloc_from_host(&[0.0f64; 8]).unwrap();
        // Full warps of the repeating 1,2,3,4 pattern: max 4, mean 2.5.
        let (_s, profile) = launch_work_profiled(
            &dev,
            LaunchConfig { block_threads: 64 },
            64,
            &SkewKernel(&buf),
        );
        let imb = profile.mean_warp_imbalance();
        assert!((imb - 4.0 / 2.5).abs() < 1e-9, "imbalance {imb}");
        let eff = profile.simd_efficiency();
        assert!((eff - 2.5 / 4.0).abs() < 1e-9, "efficiency {eff}");
    }

    #[test]
    fn uniform_kernel_is_perfectly_regular() {
        struct Regular<'a>(&'a DeviceBuffer<f64>);
        impl Kernel for Regular<'_> {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    registers_per_thread: 8,
                    shared_mem_per_block: 0,
                }
            }
            fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
                let _ = ctx.read(self.0, 0);
            }
        }
        let dev = Device::new(DeviceSpec::small_test_device());
        let buf = dev.alloc_from_host(&[0.0f64; 1]).unwrap();
        let (_s, profile) =
            launch_work_profiled(&dev, LaunchConfig::default(), 512, &Regular(&buf));
        assert_eq!(profile.mean_warp_imbalance(), 1.0);
        assert_eq!(profile.simd_efficiency(), 1.0);
    }

    #[test]
    fn empty_launch_profile() {
        let dev = Device::new(DeviceSpec::small_test_device());
        let buf = dev.alloc_from_host(&[0.0f64; 1]).unwrap();
        let (_s, profile) =
            launch_work_profiled(&dev, LaunchConfig::default(), 0, &SkewKernel(&buf));
        assert_eq!(profile.total_ops(), 0);
        assert_eq!(profile.mean_warp_imbalance(), 1.0);
    }
}
