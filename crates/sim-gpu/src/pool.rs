//! Multi-device pools and per-device usage aggregation.
//!
//! The paper's system runs on a single TITAN X; scaling *out* means a host
//! driving several devices at once. [`DevicePool`] brings up `n` simulated
//! devices (each with its own global-memory pool, as physical GPUs have),
//! and [`PoolProfiler`] aggregates per-device usage — launches, modeled
//! busy time, transfer bytes — the way a multi-GPU profiler attributes
//! work to each card. The sharded self-join engine (`sj-shard`) uses both:
//! the pool as its execution substrate, the profiler to compute the
//! modeled multi-device response time (the busiest device bounds it).

use crate::device::{Device, DeviceSpec};
use crate::fault::{DeviceHealth, FaultInjector, FaultPlan, HealthConfig, HealthLedger};
use crate::memory::MemoryLedger;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A pool of simulated devices sharing one host.
///
/// Devices are homogeneous in the common case (the constructor clones one
/// spec) but the pool accepts any device list, so heterogeneous setups can
/// be modeled too.
///
/// Besides indexed access ([`Self::device`]), the pool hands out
/// [`DeviceLease`]s: lightweight claims that steer concurrent clients
/// (sessions, query streams) toward the least-loaded device. Clones of a
/// pool share the lease ledger, so every clone sees the same load picture.
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<Device>,
    /// Lease ledger, shared across clones.
    leases: Arc<Mutex<LeaseLedger>>,
    /// Resident-snapshot LRU ledger, shared across clones (see
    /// [`MemoryLedger`]); sessions register their device snapshots here
    /// and a configured budget drives LRU eviction.
    memory_ledger: MemoryLedger,
    /// Per-device health (probation state machine), shared across clones.
    health: Arc<HealthLedger>,
    /// The armed fault injector, if [`Self::inject_faults`] ran (shared
    /// across clones; armed at most once per pool).
    injector: Arc<OnceLock<Arc<FaultInjector>>>,
}

/// Shared lease state: per-device active counts plus a rotation cursor
/// that breaks ties round-robin, so a *serial* stream of short-lived
/// leases still spreads across devices (a serving frontend dispatching
/// query after query) instead of pinning device 0 forever. `queued`
/// counts admitted-but-undispatched work items (see
/// [`DevicePool::queue_work`]) so [`DevicePool::pressure`] reflects the
/// backlog, not just what is executing right now.
#[derive(Debug)]
struct LeaseLedger {
    counts: Vec<usize>,
    cursor: usize,
    queued: usize,
    gauges: PoolGauges,
}

impl LeaseLedger {
    fn new(count: usize) -> Self {
        Self {
            counts: vec![0; count],
            cursor: 0,
            queued: 0,
            gauges: PoolGauges::register(count),
        }
    }

    /// Publishes the current lease picture to the metrics registry.
    /// Called at every lease/release/queue transition — gauges track
    /// pressure *over time*, not just when something polls
    /// [`DevicePool::pressure`].
    fn sample(&self, device: Option<usize>) {
        if let Some(i) = device {
            self.gauges.active[i].set(self.counts[i] as f64);
        }
        self.gauges
            .active_total
            .set(self.counts.iter().sum::<usize>() as f64);
        self.gauges.queued.set(self.queued as f64);
    }
}

/// Registry gauges of one pool's lease ledger. Each pool instance gets a
/// distinct `pool` label so concurrently live pools (tests, nested
/// engines) don't overwrite each other's series.
#[derive(Debug)]
struct PoolGauges {
    /// `sj_pool_active_leases{pool,device}` per device.
    active: Vec<sj_obs::Gauge>,
    /// `sj_pool_active_leases_total{pool}`.
    active_total: sj_obs::Gauge,
    /// `sj_pool_queued_work{pool}`.
    queued: sj_obs::Gauge,
}

impl PoolGauges {
    fn register(count: usize) -> Self {
        static NEXT_POOL: AtomicU64 = AtomicU64::new(0);
        let pool = NEXT_POOL.fetch_add(1, Ordering::Relaxed).to_string();
        let reg = sj_obs::registry();
        Self {
            active: (0..count)
                .map(|i| {
                    reg.gauge(
                        "sj_pool_active_leases",
                        &[("pool", &pool), ("device", &i.to_string())],
                    )
                })
                .collect(),
            active_total: reg.gauge("sj_pool_active_leases_total", &[("pool", &pool)]),
            queued: reg.gauge("sj_pool_queued_work", &[("pool", &pool)]),
        }
    }
}

/// Load picture of a pool at one instant: per-device active leases plus
/// the pool-wide queued-work backlog. The cheap accessor admission
/// controllers read instead of recomputing load from
/// [`DevicePool::active_leases`] plus their own bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolPressure {
    /// Active lease count per device, in device-index order.
    pub active: Vec<usize>,
    /// Work items admitted to a queue but not yet leased onto a device.
    pub queued: usize,
    /// Devices currently healthy (not in probation) — the *surviving*
    /// capacity admission should divide load over. Equals
    /// `active.len()` on a fault-free pool.
    pub healthy: usize,
}

impl PoolPressure {
    /// Total outstanding work claims (active + queued).
    pub fn total(&self) -> usize {
        self.active.iter().sum::<usize>() + self.queued
    }

    /// Average outstanding claims per *healthy* device — the scalar an
    /// admission controller compares against its depth threshold. Dividing
    /// by surviving rather than nominal capacity makes pressure spike when
    /// devices crash, which is exactly when admission should tighten.
    pub fn per_device(&self) -> f64 {
        self.total() as f64 / self.healthy.max(1) as f64
    }
}

/// RAII claim on one slot of the pool's queued-work backlog, created by
/// [`DevicePool::queue_work`] and released (exactly once) on drop —
/// schedulers hold one per admitted-but-undispatched query so
/// [`DevicePool::pressure`] sees the queue depth.
#[derive(Debug)]
pub struct QueuedWork {
    /// Taken on release so a drop can never double-decrement.
    leases: Option<Arc<Mutex<LeaseLedger>>>,
}

impl Drop for QueuedWork {
    fn drop(&mut self) {
        if let Some(leases) = self.leases.take() {
            let mut ledger = leases.lock();
            debug_assert!(ledger.queued > 0, "queued-work underflow");
            ledger.queued = ledger.queued.saturating_sub(1);
            ledger.sample(None);
        }
    }
}

/// A claim on one pool device, released on drop.
///
/// Leases are advisory load-balancing state, not mutual exclusion: the
/// simulated substrate timeshares the host freely, and several leases may
/// target the same device once every device carries load. What a lease
/// guarantees is that [`DevicePool::lease`] spreads concurrent holders
/// across devices (fewest active leases first), so resident sessions
/// sharing a pool interleave instead of piling onto device 0.
#[derive(Debug)]
pub struct DeviceLease {
    device: Device,
    index: usize,
    /// Taken on release, so the ledger decrements exactly once no matter
    /// which path (explicit [`Self::release`] or drop) runs — the ledger
    /// is shared across pool clones, where a double decrement would
    /// corrupt every clone's load picture at once.
    leases: Option<Arc<Mutex<LeaseLedger>>>,
}

impl DeviceLease {
    /// The leased device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The leased device's index within the pool.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Returns the lease to the ledger now (equivalent to dropping it).
    pub fn release(self) {}

    fn return_to_ledger(&mut self) {
        if let Some(leases) = self.leases.take() {
            let mut ledger = leases.lock();
            debug_assert!(ledger.counts[self.index] > 0, "lease count underflow");
            ledger.counts[self.index] = ledger.counts[self.index].saturating_sub(1);
            ledger.sample(Some(self.index));
        }
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        self.return_to_ledger();
    }
}

impl DevicePool {
    /// Brings up `count` devices, each with a fresh copy of `spec` (and
    /// therefore its own global-memory pool).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` — a pool must have at least one device.
    pub fn homogeneous(spec: DeviceSpec, count: usize) -> Self {
        assert!(count > 0, "device pool needs at least one device");
        Self {
            leases: Arc::new(Mutex::new(LeaseLedger::new(count))),
            memory_ledger: MemoryLedger::new(),
            health: Arc::new(HealthLedger::new(count, HealthConfig::default())),
            injector: Arc::new(OnceLock::new()),
            devices: (0..count).map(|_| Device::new(spec.clone())).collect(),
        }
    }

    /// A pool of `count` simulated TITAN X (Pascal) devices — the paper's
    /// evaluation GPU replicated.
    pub fn titan_x(count: usize) -> Self {
        Self::homogeneous(DeviceSpec::titan_x_pascal(), count)
    }

    /// Builds a pool from an explicit device list.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn from_devices(devices: Vec<Device>) -> Self {
        assert!(!devices.is_empty(), "device pool needs at least one device");
        Self {
            leases: Arc::new(Mutex::new(LeaseLedger::new(devices.len()))),
            memory_ledger: MemoryLedger::new(),
            health: Arc::new(HealthLedger::new(devices.len(), HealthConfig::default())),
            injector: Arc::new(OnceLock::new()),
            devices,
        }
    }

    /// Arms a [`FaultPlan`] on this pool: from here on, every device
    /// operation (snapshot upload, kernel-launch sequence) counts against
    /// the plan's schedule, crash events move devices into probation in
    /// the shared [`HealthLedger`], and [`Self::lease`] /
    /// [`Self::pressure`] reflect only healthy capacity. Operation
    /// counters start at zero *now* — arm after warmup to aim a storm at
    /// the measured window.
    ///
    /// # Panics
    ///
    /// Panics if a plan is already armed on this pool (or on any clone).
    pub fn inject_faults(&self, plan: &FaultPlan) {
        let injector = FaultInjector::new(plan, self.devices.len(), Arc::clone(&self.health));
        assert!(
            self.injector.set(Arc::clone(&injector)).is_ok(),
            "fault plan already armed on this pool"
        );
        for (i, device) in self.devices.iter().enumerate() {
            device.arm_faults(Arc::clone(&injector), i);
        }
    }

    /// The armed fault injector, if any.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.get()
    }

    /// Per-device health ledger (shared across clones).
    pub fn health(&self) -> &Arc<HealthLedger> {
        &self.health
    }

    /// Healthy flag per device, in index order, after running any due
    /// reinstatement probes.
    pub fn health_mask(&self) -> Vec<bool> {
        self.health.probe_due();
        self.health.mask()
    }

    /// Whether device `i` is currently healthy (not in probation).
    pub fn is_healthy(&self, i: usize) -> bool {
        self.health.is_healthy(i)
    }

    /// Public health snapshot per device.
    pub fn health_snapshot(&self) -> Vec<DeviceHealth> {
        self.health.snapshot()
    }

    /// Moves device `i` into probation by hand — supervisors quarantine a
    /// device whose worker panicked the same way a crash fault would. The
    /// device reinstates after `heal_after_probes` failed probes.
    pub fn quarantine(&self, i: usize, heal_after_probes: u32) {
        self.health.mark_down(i, heal_after_probes);
    }

    /// Runs any due reinstatement probes; returns how many devices were
    /// reinstated. Leasing and pressure reads do this implicitly.
    pub fn tick_health(&self) -> usize {
        self.health.probe_due()
    }

    /// Modeled-time inflation factor of device `i` from an open straggler
    /// window (1.0 when no injector is armed or the window closed).
    pub fn slowdown(&self, i: usize) -> f64 {
        self.devices[i].slowdown()
    }

    /// Leases the least-loaded *healthy* device (fewest active leases;
    /// ties break round-robin from a rotating cursor, so serial
    /// short-lived leases spread across devices too). Never blocks — the
    /// lease is a load-balancing claim, not a lock (see [`DeviceLease`]).
    ///
    /// Devices in probation are skipped, which is how a crashed device's
    /// active leases drain: existing holders finish (or fail) and release,
    /// and no new lease lands until reinstatement probes heal it. If
    /// *every* device is down the lease falls back to the full pool
    /// rather than deadlock — the caller's first operation surfaces the
    /// fault.
    pub fn lease(&self) -> DeviceLease {
        self.health.probe_due();
        let mask = self.health.mask();
        let all_down = mask.iter().all(|h| !h);
        let eligible = |i: usize| mask[i] || all_down;
        let mut ledger = self.leases.lock();
        let n = ledger.counts.len();
        let min = (0..n)
            .filter(|&i| eligible(i))
            .map(|i| ledger.counts[i])
            .min()
            .expect("pool is never empty");
        let index = (0..n)
            .map(|o| (ledger.cursor + o) % n)
            .find(|&i| eligible(i) && ledger.counts[i] == min)
            .expect("some eligible device holds the minimum");
        ledger.counts[index] += 1;
        ledger.cursor = (index + 1) % n;
        ledger.sample(Some(index));
        DeviceLease {
            device: self.devices[index].clone(),
            index,
            leases: Some(Arc::clone(&self.leases)),
        }
    }

    /// Leases a *specific* device — the worker-per-device executors of a
    /// serving frontend pin their queries to the device whose snapshot
    /// cache they manage, rather than taking whatever is least loaded.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the pool.
    pub fn lease_device(&self, index: usize) -> DeviceLease {
        assert!(index < self.devices.len(), "device index out of range");
        {
            let mut ledger = self.leases.lock();
            ledger.counts[index] += 1;
            ledger.sample(Some(index));
        }
        DeviceLease {
            device: self.devices[index].clone(),
            index,
            leases: Some(Arc::clone(&self.leases)),
        }
    }

    /// Registers one admitted-but-undispatched work item in the pool's
    /// backlog count; drop the token when the work is leased onto a
    /// device (or abandoned). See [`Self::pressure`].
    pub fn queue_work(&self) -> QueuedWork {
        {
            let mut ledger = self.leases.lock();
            ledger.queued += 1;
            ledger.sample(None);
        }
        QueuedWork {
            leases: Some(Arc::clone(&self.leases)),
        }
    }

    /// The pool's load picture — active leases per device plus the
    /// queued-work backlog — in one cheap read. Admission controllers use
    /// this instead of deriving pressure from [`Self::active_leases`] and
    /// private queue state.
    pub fn pressure(&self) -> PoolPressure {
        self.health.probe_due();
        let healthy = self.health.healthy_count();
        let ledger = self.leases.lock();
        PoolPressure {
            active: ledger.counts.clone(),
            queued: ledger.queued,
            healthy,
        }
    }

    /// Active lease count per device, in device-index order.
    pub fn active_leases(&self) -> Vec<usize> {
        self.leases.lock().counts.clone()
    }

    /// The pool-wide resident-snapshot ledger, shared by every clone of
    /// this pool. Budget it (`memory_ledger().set_budget(..)`) to turn on
    /// LRU snapshot eviction for all sessions serving from the pool.
    pub fn memory_ledger(&self) -> &MemoryLedger {
        &self.memory_ledger
    }

    /// Number of devices in the pool.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty (never true for constructed pools).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at index `i`.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// All devices in index order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Global memory currently allocated across all devices.
    pub fn total_used_bytes(&self) -> usize {
        self.devices.iter().map(Device::used_bytes).sum()
    }

    /// Global memory still free across all devices.
    pub fn total_free_bytes(&self) -> usize {
        self.devices.iter().map(Device::free_bytes).sum()
    }
}

/// Aggregated usage of one device over a multi-kernel workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceTally {
    /// Work items (e.g. shards) attributed to this device.
    pub items: usize,
    /// Kernel launches attributed to this device.
    pub launches: usize,
    /// Host-measured wall time of those launches.
    pub wall: Duration,
    /// Modeled device-busy time (kernels + pipelined transfers).
    pub busy: Duration,
    /// Host→device bytes attributed to this device.
    pub h2d_bytes: usize,
    /// The share of [`Self::h2d_bytes`] spent uploading halo ghost
    /// points — replicated data a perfect partition would not move.
    pub ghost_h2d_bytes: usize,
    /// Device→host bytes attributed to this device.
    pub d2h_bytes: usize,
}

impl DeviceTally {
    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &DeviceTally) {
        self.items += other.items;
        self.launches += other.launches;
        self.wall += other.wall;
        self.busy += other.busy;
        self.h2d_bytes += other.h2d_bytes;
        self.ghost_h2d_bytes += other.ghost_h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
    }
}

/// Thread-safe per-device usage accumulator (the pool's "nvprof").
///
/// Executor threads record each completed work item against the device
/// that ran it; the snapshot yields per-device totals plus the modeled
/// response-time bound `max_d busy_d` — with devices running concurrently,
/// the busiest device determines when the workload completes.
#[derive(Debug)]
pub struct PoolProfiler {
    tallies: Mutex<Vec<DeviceTally>>,
}

impl PoolProfiler {
    /// Creates a profiler for a pool of `device_count` devices.
    pub fn new(device_count: usize) -> Self {
        Self {
            tallies: Mutex::new(vec![DeviceTally::default(); device_count]),
        }
    }

    /// Records a completed work item against device `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range for the pool.
    pub fn record(&self, device: usize, tally: &DeviceTally) {
        self.tallies.lock()[device].merge(tally);
    }

    /// Per-device totals in device-index order.
    pub fn snapshot(&self) -> Vec<DeviceTally> {
        self.tallies.lock().clone()
    }

    /// Modeled completion time of the recorded workload: devices execute
    /// their queues concurrently, so the busiest device bounds the total.
    pub fn makespan(&self) -> Duration {
        self.tallies
            .lock()
            .iter()
            .map(|t| t.busy)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Sum of modeled busy time across devices (what a single device would
    /// have to execute serially — the numerator of the scaling speedup).
    pub fn total_busy(&self) -> Duration {
        self.tallies.lock().iter().map(|t| t.busy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_devices_have_independent_memory() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 3);
        assert_eq!(pool.len(), 3);
        let _buf = pool.device(0).alloc_zeroed::<u64>(100).unwrap();
        assert_eq!(pool.device(0).used_bytes(), 800);
        assert_eq!(pool.device(1).used_bytes(), 0);
        assert_eq!(pool.total_used_bytes(), 800);
        assert!(pool.total_free_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_rejected() {
        let _ = DevicePool::titan_x(0);
    }

    #[test]
    fn leases_spread_across_devices_and_release_on_drop() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 3);
        let a = pool.lease();
        let b = pool.lease();
        let c = pool.lease();
        // Three concurrent leases land on three distinct devices.
        let mut picked = vec![a.index(), b.index(), c.index()];
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 1, 2]);
        assert_eq!(pool.active_leases(), vec![1, 1, 1]);
        // A fourth lease doubles up on the least-loaded (lowest index).
        let d = pool.lease();
        assert_eq!(d.index(), 0);
        drop(b);
        assert_eq!(pool.active_leases(), vec![2, 0, 1]);
        // Released capacity is reused before doubling further.
        let e = pool.lease();
        assert_eq!(e.index(), 1);
        drop((a, c, d, e));
        assert_eq!(pool.active_leases(), vec![0, 0, 0]);
    }

    #[test]
    fn lease_release_is_exactly_once_across_clones() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        let clone = pool.clone();
        // Lease taken from the clone, dropped normally: both views agree
        // and the shared ledger decrements exactly once.
        let a = clone.lease();
        assert_eq!(pool.active_leases(), vec![1, 0]);
        drop(a);
        assert_eq!(pool.active_leases(), vec![0, 0]);
        assert_eq!(clone.active_leases(), vec![0, 0]);
        // Explicit release consumes the lease; the drop that follows it
        // internally must not decrement a second time.
        let b = pool.lease();
        let c = pool.lease();
        let c_index = c.index();
        b.release();
        let counts = pool.active_leases();
        assert_eq!(counts.iter().sum::<usize>(), 1, "b released exactly once");
        assert_eq!(counts[c_index], 1, "c still held");
        drop(c);
        assert_eq!(pool.active_leases(), vec![0, 0]);
    }

    #[test]
    fn targeted_lease_pins_its_device() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 3);
        let a = pool.lease_device(2);
        assert_eq!(a.index(), 2);
        assert_eq!(pool.active_leases(), vec![0, 0, 1]);
        // The balancing lease avoids the pinned device.
        let b = pool.lease();
        assert_ne!(b.index(), 2);
        drop((a, b));
        assert_eq!(pool.active_leases(), vec![0, 0, 0]);
    }

    #[test]
    fn pressure_counts_active_and_queued() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        let q1 = pool.queue_work();
        let q2 = pool.queue_work();
        let lease = pool.lease();
        let p = pool.pressure();
        assert_eq!(p.active, vec![1, 0]);
        assert_eq!(p.queued, 2);
        assert_eq!(p.total(), 3);
        assert!((p.per_device() - 1.5).abs() < 1e-12);
        drop(q1);
        // A clone sees the same picture.
        assert_eq!(pool.clone().pressure().queued, 1);
        drop((q2, lease));
        assert_eq!(pool.pressure().total(), 0);
    }

    #[test]
    fn lease_transitions_sample_gauges() {
        use sj_obs::MetricValue;
        let read = |name: &str, labels: &[(&str, &str)]| -> Option<f64> {
            sj_obs::registry().snapshot().into_iter().find_map(|m| {
                let matches = m.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v));
                match (matches, m.value) {
                    (true, MetricValue::Gauge(g)) => Some(g),
                    _ => None,
                }
            })
        };
        let pools_with = |name: &str, want: f64| -> Vec<String> {
            sj_obs::registry()
                .snapshot()
                .into_iter()
                .filter(|m| m.name == name && matches!(m.value, MetricValue::Gauge(g) if g == want))
                .filter_map(|m| {
                    m.labels
                        .iter()
                        .find(|(k, _)| k == "pool")
                        .map(|(_, v)| v.clone())
                })
                .collect()
        };
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        // A distinctive signature — three pinned leases on device 1 plus
        // two queued items — identifies this pool's series among any
        // other pools live in the test process.
        let a = pool.lease_device(1);
        let b = pool.lease_device(1);
        let c = pool.lease_device(1);
        let q1 = pool.queue_work();
        let q2 = pool.queue_work();
        let candidates = pools_with("sj_pool_active_leases_total", 3.0);
        let id = candidates
            .into_iter()
            .find(|id| {
                read("sj_pool_active_leases", &[("pool", id), ("device", "1")]) == Some(3.0)
                    && read("sj_pool_queued_work", &[("pool", id)]) == Some(2.0)
            })
            .expect("gauges sampled at lease/queue time");
        let labels: &[(&str, &str)] = &[("pool", &id)];
        drop(q1);
        assert_eq!(read("sj_pool_queued_work", labels), Some(1.0));
        drop((a, b));
        assert_eq!(read("sj_pool_active_leases_total", labels), Some(1.0));
        drop((c, q2));
        assert_eq!(read("sj_pool_active_leases_total", labels), Some(0.0));
        assert_eq!(read("sj_pool_queued_work", labels), Some(0.0));
        assert_eq!(
            read("sj_pool_active_leases", &[("pool", &id), ("device", "1")]),
            Some(0.0)
        );
    }

    #[test]
    fn lease_skips_devices_in_probation() {
        use crate::fault::{FaultEvent, FaultKind, FaultOp, FaultPlan};
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 3);
        pool.inject_faults(&FaultPlan::new(vec![FaultEvent {
            device: 1,
            after_ops: 1,
            kind: FaultKind::Crash {
                heal_after_probes: u32::MAX,
            },
        }]));
        assert!(pool.device(1).fault_check(FaultOp::Launch).is_err());
        assert!(!pool.is_healthy(1));
        // Six serial leases all avoid the downed device.
        for _ in 0..6 {
            assert_ne!(pool.lease().index(), 1);
        }
        let p = pool.pressure();
        assert_eq!(p.healthy, 2);
        // Per-device pressure divides by surviving capacity: one active
        // lease over two healthy devices.
        let _held = pool.lease();
        assert!((pool.pressure().per_device() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quarantine_and_reinstatement_round_trip() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        pool.quarantine(1, 0);
        assert_eq!(pool.health_mask(), vec![true, false]);
        // heal_after_probes = 0 with the default ~200µs backoff: the
        // first due probe reinstates it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.tick_health() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "probe never reinstated the device"
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.health_mask(), vec![true, true]);
        assert_eq!(pool.pressure().healthy, 2);
    }

    #[test]
    fn all_devices_down_still_leases() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        pool.quarantine(0, u32::MAX);
        pool.quarantine(1, u32::MAX);
        // Total loss: lease falls back to the full pool instead of
        // deadlocking; callers surface the fault on first use.
        let lease = pool.lease();
        assert!(lease.index() < 2);
        assert_eq!(pool.pressure().healthy, 0);
    }

    #[test]
    fn lease_outlives_pool_and_releases_cleanly() {
        // Release-after-pool-drain ordering: every pool clone is dropped
        // while leases and queued-work tokens are still live. The ledger
        // is kept alive by the tokens' own Arcs, so late releases must
        // neither panic nor corrupt shared state.
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        let clone = pool.clone();
        let lease_a = pool.lease();
        let lease_b = clone.lease();
        let queued = pool.queue_work();
        assert_eq!(pool.pressure().total(), 3);
        drop(pool);
        drop(clone);
        // The devices (and their memory pools) stay usable through the
        // lease after every pool handle is gone.
        let buf = lease_a.device().alloc_zeroed::<u64>(8).unwrap();
        assert_eq!(lease_a.device().used_bytes(), 64);
        drop(buf);
        drop(lease_b);
        drop(queued);
        lease_a.release();
    }

    #[test]
    fn memory_ledger_is_shared_across_clones() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        pool.memory_ledger().set_budget(Some(1 << 20));
        assert_eq!(pool.clone().memory_ledger().budget(), Some(1 << 20));
    }

    #[test]
    fn pool_clones_share_the_lease_ledger() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 2);
        let clone = pool.clone();
        let _a = pool.lease();
        // The clone sees the original's lease and avoids device 0.
        let b = clone.lease();
        assert_eq!(b.index(), 1);
        assert_eq!(pool.active_leases(), vec![1, 1]);
    }

    #[test]
    fn lease_device_shares_the_pool_device_memory() {
        let pool = DevicePool::homogeneous(DeviceSpec::small_test_device(), 1);
        let lease = pool.lease();
        let buf = lease.device().alloc_zeroed::<u64>(10).unwrap();
        // The lease hands out the same simulated device, not a copy.
        assert_eq!(pool.device(0).used_bytes(), 80);
        drop(buf);
        assert_eq!(pool.device(0).used_bytes(), 0);
    }

    #[test]
    fn profiler_attributes_and_bounds() {
        let prof = PoolProfiler::new(2);
        prof.record(
            0,
            &DeviceTally {
                items: 1,
                launches: 3,
                busy: Duration::from_millis(30),
                ..DeviceTally::default()
            },
        );
        prof.record(
            1,
            &DeviceTally {
                items: 2,
                launches: 5,
                busy: Duration::from_millis(50),
                ..DeviceTally::default()
            },
        );
        prof.record(
            0,
            &DeviceTally {
                items: 1,
                busy: Duration::from_millis(10),
                ..DeviceTally::default()
            },
        );
        let snap = prof.snapshot();
        assert_eq!(snap[0].items, 2);
        assert_eq!(snap[0].launches, 3);
        assert_eq!(snap[0].busy, Duration::from_millis(40));
        assert_eq!(snap[1].items, 2);
        assert_eq!(prof.makespan(), Duration::from_millis(50));
        assert_eq!(prof.total_busy(), Duration::from_millis(90));
    }

    #[test]
    fn tally_merge_sums_fields() {
        let mut a = DeviceTally {
            items: 1,
            launches: 2,
            wall: Duration::from_millis(5),
            busy: Duration::from_millis(7),
            h2d_bytes: 100,
            ghost_h2d_bytes: 30,
            d2h_bytes: 200,
        };
        a.merge(&a.clone());
        assert_eq!(a.items, 2);
        assert_eq!(a.h2d_bytes, 200);
        assert_eq!(a.ghost_h2d_bytes, 60);
        assert_eq!(a.busy, Duration::from_millis(14));
    }
}
