//! Deterministic fault injection for the simulated substrate.
//!
//! The paper's evaluation assumes a cooperative GPU: every upload lands,
//! every kernel completes. A serving system at fleet scale cannot — so
//! this module gives the simulator an *adversarial* mode in which devices
//! crash, transfers fail transiently and kernels straggle, all on a
//! **seeded, reproducible schedule** so a chaos run is an ordinary test.
//!
//! Faults arrive as an inhomogeneous Poisson process (IPPP — the
//! rate-shaped arrival model of Hohmann 2019, arXiv:1901.10754) over each
//! device's *operation axis*: the injector counts device operations
//! (uploads, kernel launches) and fires an event when a device's counter
//! crosses the event's threshold. Counting operations instead of wall
//! time keeps runs bit-for-bit reproducible regardless of host speed or
//! thread interleaving within a device.
//!
//! Three fault kinds model the failure classes the layers above must
//! survive:
//!
//! | kind | effect | recovery path |
//! |---|---|---|
//! | [`FaultKind::Crash`] | device marked down; every op fails until reinstated | pool probation probes (exponential backoff) |
//! | [`FaultKind::Transient`] | exactly one op fails; device stays healthy | caller retries (same or another device) |
//! | [`FaultKind::Straggler`] | modeled time inflated by a factor for a window of ops | none needed — results stay exact, only latency degrades |
//!
//! Device health lives in a [`HealthLedger`] shared by every clone of a
//! pool. A crashed device sits in *probation*: reinstatement probes run
//! with exponential backoff, and after the event's `heal_after_probes`
//! failed probes the next probe reinstates it (modeling a driver reset /
//! device reattach completing).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The device-side operation classes the injector can fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// A host→device transfer (index snapshot upload).
    Upload,
    /// A kernel-launch sequence (one batched-join execution).
    Launch,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Upload => write!(f, "upload"),
            FaultOp::Launch => write!(f, "launch"),
        }
    }
}

/// An injected device failure, surfaced to callers as an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceFault {
    /// The device is down (crash fired, not yet reinstated). Everything
    /// resident on it — snapshots included — is lost.
    Crashed {
        /// Pool index of the crashed device.
        device: usize,
    },
    /// A single operation failed; the device itself stays healthy and the
    /// very next attempt may succeed.
    Transient {
        /// Pool index of the affected device.
        device: usize,
        /// Which operation class failed.
        op: FaultOp,
    },
}

impl DeviceFault {
    /// Pool index of the device the fault hit.
    pub fn device(&self) -> usize {
        match *self {
            DeviceFault::Crashed { device } | DeviceFault::Transient { device, .. } => device,
        }
    }

    /// Whether the fault left the device down (crash) rather than a
    /// one-shot failure.
    pub fn is_crash(&self) -> bool {
        matches!(self, DeviceFault::Crashed { .. })
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::Crashed { device } => write!(f, "device {device} crashed"),
            DeviceFault::Transient { device, op } => {
                write!(f, "transient {op} failure on device {device}")
            }
        }
    }
}

impl std::error::Error for DeviceFault {}

/// What one scheduled fault event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The device goes down and stays down through `heal_after_probes`
    /// failed reinstatement probes; the probe after that heals it.
    Crash {
        /// Failed probes required before reinstatement; `u32::MAX` never
        /// heals within any realistic run.
        heal_after_probes: u32,
    },
    /// The next operation fails once; health is unaffected.
    Transient,
    /// Modeled execution time is inflated by `factor` (clamped to ≥ 1)
    /// for the next `ops` operations. Exactness is untouched — a slow
    /// device still answers correctly.
    Straggler {
        /// Modeled-time multiplier while the window is open.
        factor: f64,
        /// Number of operations the slowdown window covers.
        ops: u64,
    },
}

/// One scheduled fault: fires when `device`'s operation counter reaches
/// `after_ops`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Pool index of the target device.
    pub device: usize,
    /// Operation count (per device, counted from arming) at which the
    /// event fires. `after_ops == 1` fires on the device's first op.
    pub after_ops: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Shape of a seeded fault storm generated by [`FaultPlan::storm`].
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// RNG seed — same seed, same storm.
    pub seed: u64,
    /// Number of pool devices the storm targets.
    pub devices: usize,
    /// Length of the per-device operation axis the storm spans.
    pub horizon_ops: u64,
    /// Peak fault intensity, in faults per device-operation, reached at
    /// the middle of the horizon (the IPPP rate is `peak_rate ·
    /// sin²(π·t/horizon)` — quiet edges, stormy middle).
    pub peak_rate: f64,
    /// Relative weight of crash events in the kind mix.
    pub crash_weight: f64,
    /// Relative weight of transient events.
    pub transient_weight: f64,
    /// Relative weight of straggler events.
    pub straggler_weight: f64,
    /// Crashes are confined to at most this many distinct devices, and
    /// never to device 0, so at least one survivor always exists (set to
    /// `devices` only if you want total-loss storms).
    pub max_crash_devices: usize,
    /// `heal_after_probes` stamped on generated crash events.
    pub heal_after_probes: u32,
    /// Straggler slowdown factor on generated straggler events.
    pub straggler_factor: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            devices: 4,
            horizon_ops: 64,
            peak_rate: 0.08,
            crash_weight: 1.0,
            transient_weight: 2.0,
            straggler_weight: 1.0,
            max_crash_devices: 1,
            heal_after_probes: 2,
            straggler_factor: 3.0,
        }
    }
}

/// A seeded schedule of device faults, armed on a pool with
/// [`crate::DevicePool::inject_faults`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from an explicit event list (events are sorted per device by
    /// firing threshold; relative order of same-threshold events is kept).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.device, e.after_ops));
        Self { events }
    }

    /// Generates a storm by thinning: candidate arrivals are drawn from a
    /// homogeneous Poisson process at `peak_rate` (exponential gaps), and
    /// each is accepted with probability `λ(t)/peak_rate` where `λ(t) =
    /// peak_rate · sin²(π·t/horizon)` — an inhomogeneous Poisson process
    /// whose intensity ramps up to mid-run and back down. Everything is
    /// driven by `cfg.seed`; the same config always yields the same plan.
    pub fn storm(cfg: &StormConfig) -> Self {
        assert!(cfg.devices > 0, "storm needs at least one device");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let total_weight = cfg.crash_weight + cfg.transient_weight + cfg.straggler_weight;
        assert!(total_weight > 0.0, "storm needs a positive kind weight");
        // Crashes stay off device 0 so a survivor always exists.
        let crashable = cfg.max_crash_devices.min(cfg.devices.saturating_sub(1));
        let mut crash_set: Vec<usize> = Vec::new();
        let mut events = Vec::new();
        if cfg.peak_rate > 0.0 && cfg.horizon_ops > 0 {
            let horizon = cfg.horizon_ops as f64;
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival gap at the envelope rate.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / cfg.peak_rate;
                if t >= horizon {
                    break;
                }
                let intensity = (std::f64::consts::PI * t / horizon).sin().powi(2);
                if !rng.gen_bool(intensity) {
                    continue;
                }
                let after_ops = (t as u64).max(1);
                let mut kind_draw = rng.gen_range(0.0..total_weight);
                let device = rng.gen_range(0..cfg.devices);
                if kind_draw < cfg.crash_weight {
                    if crashable == 0 {
                        // Nothing may crash (single-device pool or
                        // max_crash_devices = 0): demote to transient.
                        events.push(FaultEvent {
                            device,
                            after_ops,
                            kind: FaultKind::Transient,
                        });
                        continue;
                    }
                    // Confine crashes to a bounded set of non-zero devices.
                    let candidate = rng.gen_range(1..cfg.devices);
                    let device = if crash_set.contains(&candidate) {
                        candidate
                    } else if crash_set.len() < crashable {
                        crash_set.push(candidate);
                        candidate
                    } else {
                        crash_set[rng.gen_range(0..crash_set.len())]
                    };
                    events.push(FaultEvent {
                        device,
                        after_ops,
                        kind: FaultKind::Crash {
                            heal_after_probes: cfg.heal_after_probes,
                        },
                    });
                    continue;
                }
                kind_draw -= cfg.crash_weight;
                let kind = if kind_draw < cfg.transient_weight {
                    FaultKind::Transient
                } else {
                    FaultKind::Straggler {
                        factor: cfg.straggler_factor,
                        ops: (cfg.horizon_ops / 4).max(1),
                    }
                };
                events.push(FaultEvent {
                    device,
                    after_ops,
                    kind,
                });
            }
        }
        Self::new(events)
    }

    /// The scheduled events, sorted by `(device, after_ops)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Health-probe timing knobs for [`HealthLedger`].
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Wall-clock delay before the first reinstatement probe of a downed
    /// device; doubles after every failed probe.
    pub probe_backoff: Duration,
    /// Ceiling on the probe backoff.
    pub probe_backoff_max: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            probe_backoff: Duration::from_micros(200),
            probe_backoff_max: Duration::from_millis(20),
        }
    }
}

/// Public snapshot of one device's health.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Serving normally.
    Healthy,
    /// Down, in probation: reinstatement probes are running with
    /// exponential backoff.
    Down {
        /// Probes that have already failed.
        failed_probes: u32,
    },
}

#[derive(Clone, Debug)]
enum HealthState {
    Healthy,
    Down {
        failed_probes: u32,
        heal_after: u32,
        next_probe: Instant,
        backoff: Duration,
    },
}

/// Per-device health shared by every clone of a pool.
///
/// State machine per device:
///
/// ```text
///            crash fault / quarantine
///   Healthy ───────────────────────────▶ Down(probation)
///      ▲                                     │
///      │   probe #k succeeds                 │ probe #j fails
///      │   (k > heal_after_probes)           │ (j ≤ heal_after_probes)
///      └─────────────────────────────────────┤ backoff ×2, re-probe
/// ```
///
/// Probes are driven lazily: [`DevicePool::lease`](crate::DevicePool::lease)
/// and explicit [`DevicePool::tick_health`](crate::DevicePool::tick_health)
/// calls run every due probe before reading health.
#[derive(Debug)]
pub struct HealthLedger {
    states: Mutex<Vec<HealthState>>,
    cfg: HealthConfig,
    /// `sj_pool_unhealthy_devices` gauge plus fault/reinstatement counters.
    stats: HealthStats,
}

#[derive(Debug)]
struct HealthStats {
    unhealthy: sj_obs::Gauge,
    downed: sj_obs::Counter,
    reinstated: sj_obs::Counter,
}

impl HealthStats {
    fn register() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let pool = NEXT.fetch_add(1, Ordering::Relaxed).to_string();
        let reg = sj_obs::registry();
        Self {
            unhealthy: reg.gauge("sj_pool_unhealthy_devices", &[("pool", &pool)]),
            downed: reg.counter("sj_pool_devices_downed_total", &[("pool", &pool)]),
            reinstated: reg.counter("sj_pool_devices_reinstated_total", &[("pool", &pool)]),
        }
    }
}

impl HealthLedger {
    /// A ledger with every device healthy.
    pub fn new(devices: usize, cfg: HealthConfig) -> Self {
        Self {
            states: Mutex::new(vec![HealthState::Healthy; devices]),
            cfg,
            stats: HealthStats::register(),
        }
    }

    /// Whether device `i` is currently serving (not in probation).
    pub fn is_healthy(&self, i: usize) -> bool {
        matches!(self.states.lock()[i], HealthState::Healthy)
    }

    /// Healthy flag per device, in index order.
    pub fn mask(&self) -> Vec<bool> {
        self.states
            .lock()
            .iter()
            .map(|s| matches!(s, HealthState::Healthy))
            .collect()
    }

    /// Number of healthy devices.
    pub fn healthy_count(&self) -> usize {
        self.states
            .lock()
            .iter()
            .filter(|s| matches!(s, HealthState::Healthy))
            .count()
    }

    /// Public health snapshot per device.
    pub fn snapshot(&self) -> Vec<DeviceHealth> {
        self.states
            .lock()
            .iter()
            .map(|s| match s {
                HealthState::Healthy => DeviceHealth::Healthy,
                HealthState::Down { failed_probes, .. } => DeviceHealth::Down {
                    failed_probes: *failed_probes,
                },
            })
            .collect()
    }

    /// Marks device `i` down (into probation). The device reinstates
    /// after `heal_after_probes` failed probes. Idempotent while down —
    /// repeated faults on a downed device don't reset its probe progress.
    pub fn mark_down(&self, i: usize, heal_after_probes: u32) {
        let mut states = self.states.lock();
        if matches!(states[i], HealthState::Down { .. }) {
            return;
        }
        states[i] = HealthState::Down {
            failed_probes: 0,
            heal_after: heal_after_probes,
            next_probe: Instant::now() + self.cfg.probe_backoff,
            backoff: self.cfg.probe_backoff,
        };
        self.stats.downed.inc();
        let down = states
            .iter()
            .filter(|s| matches!(s, HealthState::Down { .. }))
            .count();
        self.stats.unhealthy.set(down as f64);
    }

    /// Runs every due reinstatement probe; returns how many devices were
    /// reinstated. A probe "fails" while the crash's `heal_after_probes`
    /// budget is unspent (the modeled driver reset hasn't completed) and
    /// doubles the backoff; the first probe past the budget heals the
    /// device.
    pub fn probe_due(&self) -> usize {
        let now = Instant::now();
        let mut reinstated = 0;
        let mut states = self.states.lock();
        for state in states.iter_mut() {
            if let HealthState::Down {
                failed_probes,
                heal_after,
                next_probe,
                backoff,
            } = state
            {
                while *next_probe <= now {
                    let _span = sj_obs::Span::enter("fault.probe");
                    if *failed_probes >= *heal_after {
                        *state = HealthState::Healthy;
                        reinstated += 1;
                        break;
                    }
                    *failed_probes += 1;
                    *backoff = (*backoff * 2).min(self.cfg.probe_backoff_max);
                    *next_probe += *backoff;
                }
            }
        }
        if reinstated > 0 {
            self.stats.reinstated.add(reinstated as u64);
            let down = states
                .iter()
                .filter(|s| matches!(s, HealthState::Down { .. }))
                .count();
            self.stats.unhealthy.set(down as f64);
        }
        reinstated
    }
}

struct DeviceFaultState {
    ops: u64,
    pending: VecDeque<(u64, FaultKind)>,
    slow_factor: f64,
    slow_until: u64,
}

impl fmt::Debug for DeviceFaultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceFaultState")
            .field("ops", &self.ops)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// The armed runtime of a [`FaultPlan`]: per-device operation counters
/// plus the shared [`HealthLedger`] crash events mark.
///
/// Installed into every device of a pool by
/// [`crate::DevicePool::inject_faults`]; devices consult it through
/// [`crate::Device::fault_check`] at their upload/launch boundaries.
#[derive(Debug)]
pub struct FaultInjector {
    state: Mutex<Vec<DeviceFaultState>>,
    health: Arc<HealthLedger>,
    injected: [sj_obs::Counter; 3],
}

impl FaultInjector {
    /// Arms `plan` over `devices` devices against the shared `health`
    /// ledger.
    pub fn new(plan: &FaultPlan, devices: usize, health: Arc<HealthLedger>) -> Arc<Self> {
        let mut state: Vec<DeviceFaultState> = (0..devices)
            .map(|_| DeviceFaultState {
                ops: 0,
                pending: VecDeque::new(),
                slow_factor: 1.0,
                slow_until: 0,
            })
            .collect();
        for ev in plan.events() {
            assert!(
                ev.device < devices,
                "fault event targets device {} of a {devices}-device pool",
                ev.device
            );
            state[ev.device].pending.push_back((ev.after_ops, ev.kind));
        }
        let reg = sj_obs::registry();
        Arc::new(Self {
            state: Mutex::new(state),
            health,
            injected: [
                reg.counter("sj_fault_injected_total", &[("kind", "crash")]),
                reg.counter("sj_fault_injected_total", &[("kind", "transient")]),
                reg.counter("sj_fault_injected_total", &[("kind", "straggler")]),
            ],
        })
    }

    /// Counts one operation on `device` and fires any event whose
    /// threshold it crossed. A downed device fails every operation until
    /// the health ledger reinstates it.
    pub fn check(&self, device: usize, op: FaultOp) -> Result<(), DeviceFault> {
        if !self.health.is_healthy(device) {
            return Err(DeviceFault::Crashed { device });
        }
        let mut state = self.state.lock();
        let s = &mut state[device];
        s.ops += 1;
        let ops = s.ops;
        while let Some(&(after, kind)) = s.pending.front() {
            if after > ops {
                break;
            }
            s.pending.pop_front();
            match kind {
                FaultKind::Crash { heal_after_probes } => {
                    self.injected[0].inc();
                    drop(state);
                    self.health.mark_down(device, heal_after_probes);
                    return Err(DeviceFault::Crashed { device });
                }
                FaultKind::Transient => {
                    self.injected[1].inc();
                    return Err(DeviceFault::Transient { device, op });
                }
                FaultKind::Straggler { factor, ops: span } => {
                    self.injected[2].inc();
                    s.slow_factor = factor.max(1.0);
                    s.slow_until = ops + span;
                }
            }
        }
        Ok(())
    }

    /// Current modeled-time inflation factor of `device` (1.0 when no
    /// straggler window is open).
    pub fn slowdown(&self, device: usize) -> f64 {
        let state = self.state.lock();
        let s = &state[device];
        if s.ops < s.slow_until {
            s.slow_factor
        } else {
            1.0
        }
    }

    /// Total operations counted on `device` since arming.
    pub fn ops(&self, device: usize) -> u64 {
        self.state.lock()[device].ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_health(devices: usize) -> Arc<HealthLedger> {
        Arc::new(HealthLedger::new(
            devices,
            HealthConfig {
                probe_backoff: Duration::ZERO,
                probe_backoff_max: Duration::ZERO,
            },
        ))
    }

    #[test]
    fn storm_is_deterministic_and_spares_device_zero() {
        let cfg = StormConfig {
            seed: 42,
            devices: 4,
            horizon_ops: 256,
            peak_rate: 0.2,
            ..StormConfig::default()
        };
        let a = FaultPlan::storm(&cfg);
        let b = FaultPlan::storm(&cfg);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty(), "a 0.2-peak storm over 256 ops fires");
        let crash_devices: Vec<usize> = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .map(|e| e.device)
            .collect();
        assert!(crash_devices.iter().all(|&d| d != 0));
        let mut distinct = crash_devices.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= cfg.max_crash_devices);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FaultPlan::storm(&StormConfig {
                seed,
                devices: 4,
                horizon_ops: 512,
                peak_rate: 0.2,
                ..StormConfig::default()
            })
        };
        assert_ne!(mk(1).events(), mk(2).events());
    }

    #[test]
    fn single_device_storm_never_crashes() {
        let plan = FaultPlan::storm(&StormConfig {
            seed: 7,
            devices: 1,
            horizon_ops: 512,
            peak_rate: 0.3,
            crash_weight: 10.0,
            ..StormConfig::default()
        });
        assert!(plan
            .events()
            .iter()
            .all(|e| !matches!(e.kind, FaultKind::Crash { .. })));
    }

    #[test]
    fn transient_fails_exactly_once() {
        let plan = FaultPlan::new(vec![FaultEvent {
            device: 0,
            after_ops: 2,
            kind: FaultKind::Transient,
        }]);
        let inj = FaultInjector::new(&plan, 1, fast_health(1));
        assert!(inj.check(0, FaultOp::Launch).is_ok());
        assert_eq!(
            inj.check(0, FaultOp::Upload),
            Err(DeviceFault::Transient {
                device: 0,
                op: FaultOp::Upload
            })
        );
        assert!(inj.check(0, FaultOp::Upload).is_ok());
        assert!(inj.check(0, FaultOp::Launch).is_ok());
    }

    #[test]
    fn crash_downs_device_until_probes_heal_it() {
        let plan = FaultPlan::new(vec![FaultEvent {
            device: 1,
            after_ops: 1,
            kind: FaultKind::Crash {
                heal_after_probes: 2,
            },
        }]);
        let health = fast_health(2);
        let inj = FaultInjector::new(&plan, 2, Arc::clone(&health));
        assert_eq!(
            inj.check(1, FaultOp::Launch),
            Err(DeviceFault::Crashed { device: 1 })
        );
        assert!(!health.is_healthy(1));
        assert!(health.is_healthy(0));
        // Still down: every op fails without consuming further events.
        assert_eq!(
            inj.check(1, FaultOp::Upload),
            Err(DeviceFault::Crashed { device: 1 })
        );
        // Zero-backoff probes run immediately: two fail, the third heals.
        let reinstated = health.probe_due();
        assert_eq!(reinstated, 1);
        assert!(health.is_healthy(1));
        assert!(inj.check(1, FaultOp::Launch).is_ok());
    }

    #[test]
    fn straggler_inflates_then_expires() {
        let plan = FaultPlan::new(vec![FaultEvent {
            device: 0,
            after_ops: 1,
            kind: FaultKind::Straggler {
                factor: 4.0,
                ops: 2,
            },
        }]);
        let inj = FaultInjector::new(&plan, 1, fast_health(1));
        assert!((inj.slowdown(0) - 1.0).abs() < 1e-12);
        assert!(
            inj.check(0, FaultOp::Launch).is_ok(),
            "stragglers don't fail ops"
        );
        assert!((inj.slowdown(0) - 4.0).abs() < 1e-12);
        assert!(inj.check(0, FaultOp::Launch).is_ok());
        assert!((inj.slowdown(0) - 4.0).abs() < 1e-12);
        assert!(inj.check(0, FaultOp::Launch).is_ok());
        assert!((inj.slowdown(0) - 1.0).abs() < 1e-12, "window expired");
    }

    #[test]
    fn mark_down_is_idempotent_while_down() {
        let health = Arc::new(HealthLedger::new(
            1,
            HealthConfig {
                probe_backoff: Duration::from_secs(3600),
                probe_backoff_max: Duration::from_secs(3600),
            },
        ));
        health.mark_down(0, 5);
        let before = health.snapshot();
        health.mark_down(0, 0); // must not reset the heal budget
        assert_eq!(health.snapshot(), before);
        assert!(!health.is_healthy(0));
    }

    #[test]
    fn health_snapshot_reports_probation() {
        let health = Arc::new(HealthLedger::new(
            2,
            HealthConfig {
                probe_backoff: Duration::from_secs(3600),
                probe_backoff_max: Duration::from_secs(3600),
            },
        ));
        health.mark_down(1, 3);
        assert_eq!(health.mask(), vec![true, false]);
        assert_eq!(health.healthy_count(), 1);
        // Probe not yet due (1h backoff): nothing reinstates.
        assert_eq!(health.probe_due(), 0);
        assert_eq!(
            health.snapshot()[1],
            DeviceHealth::Down { failed_probes: 0 }
        );
    }
}
