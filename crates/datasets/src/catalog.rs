//! The paper's Table I dataset catalog, with principled down-scaling.
//!
//! Every timing experiment in the paper runs over one of 16 named datasets
//! and a 5-point ε sweep (Figures 4–6). This module encodes that inventory
//! so the bench harness can enumerate it.
//!
//! ## Scaling
//!
//! The paper's datasets hold 2–15.2 million points. The reproduction runs
//! on whatever hardware is available, so [`Catalog::new`] takes a scale
//! factor `s ∈ (0, 1]` applied to the point count. To keep each experiment
//! in the same *selectivity regime* (average ε-neighbors per point — the
//! quantity that drives all of the paper's comparisons), the ε sweep is
//! stretched by `s^(-1/n)`: for a fixed volume, uniform density scales with
//! `s`, and the expected neighbor count scales with `density × ε^n`, so
//! `ε' = ε · s^(-1/n)` holds the product constant. The same correction is a
//! good first-order match for the skewed surrogates.

use crate::{sdss, sw, synthetic, Dataset};

/// Which generator family a dataset belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Uniform synthetic (`Syn-`).
    Synthetic,
    /// Ionosphere surrogate (`SW-`).
    SpaceWeather,
    /// Galaxy survey surrogate (`SDSS-`).
    Sdss,
}

/// One row of the paper's Table I plus its figure ε sweep.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper (e.g. `Syn3D2M`, `SW2DA`).
    pub name: &'static str,
    /// Generator family.
    pub family: Family,
    /// Dimensionality `n`.
    pub dim: usize,
    /// Paper's point count `|D|`.
    pub paper_count: usize,
    /// The 5-point ε sweep used in the paper's response-time figure.
    pub paper_epsilons: [f64; 5],
    /// RNG seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

impl DatasetSpec {
    /// Point count after applying the scale factor (at least 1000).
    pub fn scaled_count(&self, scale: f64) -> usize {
        ((self.paper_count as f64 * scale) as usize).max(1000)
    }

    /// The ε sweep after selectivity-preserving rescaling (see module docs).
    pub fn scaled_epsilons(&self, scale: f64) -> [f64; 5] {
        let effective =
            self.scaled_count(self.validate_scale(scale)) as f64 / self.paper_count as f64;
        let stretch = effective.powf(-1.0 / self.dim as f64);
        self.paper_epsilons.map(|e| e * stretch)
    }

    fn validate_scale(&self, scale: f64) -> f64 {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        scale
    }

    /// Generates the dataset at the given scale.
    pub fn generate(&self, scale: f64) -> Dataset {
        let count = self.scaled_count(self.validate_scale(scale));
        match self.family {
            Family::Synthetic => synthetic::uniform(self.dim, count, self.seed),
            Family::SpaceWeather => {
                if self.dim == 2 {
                    sw::sw2d(count, self.seed)
                } else {
                    sw::sw3d(count, self.seed)
                }
            }
            Family::Sdss => sdss::sdss2d(count, self.seed),
        }
    }
}

/// The full Table I inventory.
#[derive(Clone, Debug)]
pub struct Catalog {
    specs: Vec<DatasetSpec>,
}

impl Catalog {
    /// Builds the 16-dataset catalog of the paper's Table I.
    pub fn new() -> Self {
        let mut specs = Vec::new();
        // Syn-: 2M and 10M tiers, 2..=6 dimensions. ε sweeps from Figs. 5, 6.
        for (tier, count, seed_base) in [("2M", 2_000_000usize, 100u64), ("10M", 10_000_000, 200)] {
            for dim in 2..=6usize {
                let eps = match (tier, dim) {
                    ("2M", 2 | 3) => sweep(0.2, 1.0),
                    ("2M", _) => sweep(2.0, 10.0),
                    ("10M", 2 | 3) => sweep(0.1, 0.5),
                    _ => sweep(1.0, 5.0),
                };
                specs.push(DatasetSpec {
                    name: syn_name(dim, tier),
                    family: Family::Synthetic,
                    dim,
                    paper_count: count,
                    paper_epsilons: eps,
                    seed: seed_base + dim as u64,
                });
            }
        }
        // SW-: Table I counts; ε sweeps from Fig. 4 (a, b, e, f).
        specs.push(DatasetSpec {
            name: "SW2DA",
            family: Family::SpaceWeather,
            dim: 2,
            paper_count: 1_864_620,
            paper_epsilons: sweep(0.3, 1.5),
            seed: 301,
        });
        specs.push(DatasetSpec {
            name: "SW2DB",
            family: Family::SpaceWeather,
            dim: 2,
            paper_count: 5_159_737,
            paper_epsilons: sweep(0.1, 0.5),
            seed: 302,
        });
        specs.push(DatasetSpec {
            name: "SW3DA",
            family: Family::SpaceWeather,
            dim: 3,
            paper_count: 1_864_620,
            paper_epsilons: sweep(0.6, 3.0),
            seed: 303,
        });
        specs.push(DatasetSpec {
            name: "SW3DB",
            family: Family::SpaceWeather,
            dim: 3,
            paper_count: 5_159_737,
            paper_epsilons: sweep(0.2, 1.0),
            seed: 304,
        });
        // SDSS-: Fig. 4 (c, d).
        specs.push(DatasetSpec {
            name: "SDSS2DA",
            family: Family::Sdss,
            dim: 2,
            paper_count: 2_000_000,
            paper_epsilons: sweep(0.3, 1.5),
            seed: 305,
        });
        specs.push(DatasetSpec {
            name: "SDSS2DB",
            family: Family::Sdss,
            dim: 2,
            paper_count: 15_228_633,
            paper_epsilons: sweep(0.02, 0.1),
            seed: 306,
        });
        Self { specs }
    }

    /// All specs in Table I order.
    pub fn specs(&self) -> &[DatasetSpec] {
        &self.specs
    }

    /// Looks up a dataset by its paper name.
    pub fn get(&self, name: &str) -> Option<&DatasetSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// The real-world subset (SW- and SDSS-), Figure 4's inventory.
    pub fn real_world(&self) -> impl Iterator<Item = &DatasetSpec> {
        self.specs.iter().filter(|s| s.family != Family::Synthetic)
    }

    /// The synthetic subset at the given tier (`"2M"` or `"10M"`),
    /// Figure 5/6's inventory.
    pub fn synthetic_tier(&self, tier: &str) -> impl Iterator<Item = &DatasetSpec> + '_ {
        let count = if tier == "2M" { 2_000_000 } else { 10_000_000 };
        self.specs
            .iter()
            .filter(move |s| s.family == Family::Synthetic && s.paper_count == count)
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

/// Five evenly spaced ε values from `lo` to `hi` inclusive (the paper's
/// sweep pattern, e.g. 0.3, 0.6, 0.9, 1.2, 1.5).
pub fn sweep(lo: f64, hi: f64) -> [f64; 5] {
    let step = (hi - lo) / 4.0;
    [lo, lo + step, lo + 2.0 * step, lo + 3.0 * step, hi]
}

fn syn_name(dim: usize, tier: &str) -> &'static str {
    match (dim, tier) {
        (2, "2M") => "Syn2D2M",
        (3, "2M") => "Syn3D2M",
        (4, "2M") => "Syn4D2M",
        (5, "2M") => "Syn5D2M",
        (6, "2M") => "Syn6D2M",
        (2, "10M") => "Syn2D10M",
        (3, "10M") => "Syn3D10M",
        (4, "10M") => "Syn4D10M",
        (5, "10M") => "Syn5D10M",
        (6, "10M") => "Syn6D10M",
        _ => unreachable!("unknown synthetic tier"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn catalog_matches_table_one() {
        let c = Catalog::new();
        assert_eq!(c.specs().len(), 16);
        assert_eq!(c.get("Syn4D2M").unwrap().paper_count, 2_000_000);
        assert_eq!(c.get("SW2DB").unwrap().paper_count, 5_159_737);
        assert_eq!(c.get("SDSS2DB").unwrap().paper_count, 15_228_633);
        assert_eq!(c.get("Syn6D10M").unwrap().dim, 6);
        assert!(c.get("NoSuch").is_none());
    }

    #[test]
    fn subsets_partition() {
        let c = Catalog::new();
        assert_eq!(c.real_world().count(), 6);
        assert_eq!(c.synthetic_tier("2M").count(), 5);
        assert_eq!(c.synthetic_tier("10M").count(), 5);
    }

    #[test]
    fn sweep_is_even() {
        assert_eq!(sweep(0.3, 1.5), [0.3, 0.6, 0.8999999999999999, 1.2, 1.5]);
    }

    #[test]
    fn scaling_preserves_selectivity_for_uniform() {
        // Generate Syn2D at two scales and check the scaled ε keeps the
        // measured average-neighbor count approximately constant.
        let spec = DatasetSpec {
            name: "test",
            family: Family::Synthetic,
            dim: 2,
            paper_count: 40_000,
            paper_epsilons: sweep(0.5, 2.5),
            seed: 9,
        };
        let full = spec.generate(1.0);
        let eps_full = spec.scaled_epsilons(1.0)[2];
        let quarter = spec.generate(0.25);
        let eps_quarter = spec.scaled_epsilons(0.25)[2];
        let a = stats::avg_neighbors_sampled(&full, eps_full, 400, 1);
        let b = stats::avg_neighbors_sampled(&quarter, eps_quarter, 400, 1);
        assert!(
            (a - b).abs() < 0.35 * a.max(1.0),
            "selectivity drifted: full {a}, quarter {b}"
        );
    }

    #[test]
    fn scaled_count_has_floor() {
        let c = Catalog::new();
        let s = c.get("Syn2D2M").unwrap();
        assert_eq!(s.scaled_count(1e-9), 1000);
    }

    #[test]
    fn generate_honors_family() {
        let c = Catalog::new();
        let sw3 = c.get("SW3DA").unwrap().generate(0.001);
        assert_eq!(sw3.dim(), 3);
        let sdss = c.get("SDSS2DA").unwrap().generate(0.001);
        assert_eq!(sdss.dim(), 2);
        let syn = c.get("Syn5D2M").unwrap().generate(0.001);
        assert_eq!(syn.dim(), 5);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn scale_validation() {
        let c = Catalog::new();
        let _ = c.get("SW2DA").unwrap().generate(0.0);
    }
}
