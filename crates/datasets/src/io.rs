//! Binary and CSV serialization for datasets.
//!
//! The binary format is a minimal little-endian layout so generated
//! workloads can be cached on disk between harness runs:
//!
//! ```text
//! magic   [u8; 8] = b"SJDATA01"
//! dim     u32 LE
//! count   u64 LE
//! coords  count * dim * f64 LE
//! ```

use crate::Dataset;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SJDATA01";

/// Writes a dataset to `path` in the binary format above.
pub fn write_binary(data: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(data.dim() as u32).to_le_bytes())?;
    w.write_all(&(data.len() as u64).to_le_bytes())?;
    for &c in data.coords() {
        w.write_all(&c.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a dataset previously written with [`write_binary`].
pub fn read_binary(path: &Path) -> io::Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SJDATA01 file",
        ));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let dim = u32::from_le_bytes(buf4) as usize;
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero dimension"));
    }
    let total = dim
        .checked_mul(count)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "size overflow"))?;
    let mut coords = Vec::with_capacity(total);
    let mut chunk = vec![0u8; 8 * 4096];
    let mut remaining = total;
    while remaining > 0 {
        let take = remaining.min(4096);
        let bytes = &mut chunk[..8 * take];
        r.read_exact(bytes)?;
        for b in bytes.chunks_exact(8) {
            coords.push(f64::from_le_bytes(b.try_into().unwrap()));
        }
        remaining -= take;
    }
    Ok(Dataset::from_flat(dim, coords))
}

/// Writes a dataset as CSV (one point per row) for external plotting.
pub fn write_csv(data: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in data.iter() {
        let row: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sj-datasets-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_roundtrip() {
        let d = uniform(4, 1234, 77);
        let path = tmp("roundtrip.bin");
        write_binary(&d, &path).unwrap();
        let back = read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = tmp("badmagic.bin");
        std::fs::write(&path, b"NOTDATA!rest").unwrap();
        let err = read_binary(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_truncated() {
        let d = uniform(2, 100, 1);
        let path = tmp("trunc.bin");
        write_binary(&d, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let err = read_binary(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let d = uniform(3, 50, 2);
        let path = tmp("out.csv");
        write_csv(&d, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 50);
        assert_eq!(text.lines().next().unwrap().split(',').count(), 3);
    }
}
