//! Uniform synthetic datasets (the paper's Syn-nD family).
//!
//! Each coordinate is drawn independently and uniformly from `[0, 100]`
//! (paper §VI-A). Uniform data is the worst case for the grid index: it
//! maximizes the number of non-empty cells and therefore the index-search
//! overhead, while skewed data concentrates points into fewer cells.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The coordinate range used by the paper's synthetic data.
pub const SYN_RANGE: (f64, f64) = (0.0, 100.0);

/// Generates `count` points uniformly distributed in `[0, 100]^dim`.
pub fn uniform(dim: usize, count: usize, seed: u64) -> Dataset {
    uniform_in(dim, count, SYN_RANGE.0, SYN_RANGE.1, seed)
}

/// Generates `count` points uniformly distributed in `[lo, hi]^dim`.
///
/// # Panics
///
/// Panics if `dim == 0` or `lo >= hi`.
pub fn uniform_in(dim: usize, count: usize, lo: f64, hi: f64, seed: u64) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    assert!(lo < hi, "empty coordinate range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(dim * count);
    for _ in 0..dim * count {
        coords.push(rng.gen_range(lo..hi));
    }
    Dataset::from_flat(dim, coords)
}

/// Generates points on a regular lattice with `side` points per dimension
/// and the given spacing, starting at the origin.
///
/// Useful for tests where exact neighbor counts are known analytically.
pub fn lattice(dim: usize, side: usize, spacing: f64) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    let count = side.pow(dim as u32);
    let mut coords = Vec::with_capacity(dim * count);
    for mut idx in 0..count {
        for _ in 0..dim {
            coords.push((idx % side) as f64 * spacing);
            idx /= side;
        }
    }
    Dataset::from_flat(dim, coords)
}

/// Gaussian-like cluster mixture: `clusters` isotropic clusters with the
/// given standard deviation inside `[0, 100]^dim`, plus a `background`
/// fraction of uniform noise. Used by tests and examples that need skewed
/// (non-worst-case) data without depending on the SW/SDSS surrogates.
pub fn clustered(
    dim: usize,
    count: usize,
    clusters: usize,
    sigma: f64,
    background: f64,
    seed: u64,
) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    assert!(clusters > 0, "need at least one cluster");
    assert!(
        (0.0..=1.0).contains(&background),
        "background must be in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    let mut coords = Vec::with_capacity(dim * count);
    for _ in 0..count {
        if rng.gen_bool(background) {
            for _ in 0..dim {
                coords.push(rng.gen_range(0.0..100.0));
            }
        } else {
            let c = &centers[rng.gen_range(0..clusters)];
            for &center in c {
                let x: f64 = (sample_std_normal(&mut rng) * sigma + center).clamp(0.0, 100.0);
                coords.push(x);
            }
        }
    }
    Dataset::from_flat(dim, coords)
}

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// Kept local so the workspace does not need `rand_distr`.
pub(crate) fn sample_std_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        if r.is_finite() {
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_requested_shape() {
        let d = uniform(3, 1000, 42);
        assert_eq!(d.len(), 1000);
        assert_eq!(d.dim(), 3);
        for p in d.iter() {
            for &x in p {
                assert!((0.0..100.0).contains(&x));
            }
        }
    }

    #[test]
    fn uniform_is_deterministic() {
        assert_eq!(uniform(2, 100, 7), uniform(2, 100, 7));
        assert_ne!(uniform(2, 100, 7), uniform(2, 100, 8));
    }

    #[test]
    fn uniform_covers_the_range() {
        let d = uniform(2, 20_000, 1);
        let mins = d.min_per_dim().unwrap();
        let maxs = d.max_per_dim().unwrap();
        for j in 0..2 {
            assert!(
                mins[j] < 1.0,
                "min in dim {j} unexpectedly high: {}",
                mins[j]
            );
            assert!(
                maxs[j] > 99.0,
                "max in dim {j} unexpectedly low: {}",
                maxs[j]
            );
        }
    }

    #[test]
    fn lattice_counts_and_spacing() {
        let d = lattice(2, 3, 2.0);
        assert_eq!(d.len(), 9);
        // Corner and center points exist.
        let pts: Vec<Vec<f64>> = d.iter().map(|p| p.to_vec()).collect();
        assert!(pts.contains(&vec![0.0, 0.0]));
        assert!(pts.contains(&vec![4.0, 4.0]));
        assert!(pts.contains(&vec![2.0, 2.0]));
    }

    #[test]
    fn lattice_3d() {
        let d = lattice(3, 2, 1.0);
        assert_eq!(d.len(), 8);
        assert_eq!(d.dim(), 3);
    }

    #[test]
    fn clustered_respects_bounds() {
        let d = clustered(2, 5000, 8, 1.5, 0.1, 99);
        assert_eq!(d.len(), 5000);
        for p in d.iter() {
            for &x in p {
                assert!((0.0..=100.0).contains(&x));
            }
        }
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        // Sample mean nearest-neighbor-ish density proxy: count pairs within
        // a radius on a small sample; clustered data must have more.
        let u = uniform(2, 2000, 3);
        let c = clustered(2, 2000, 5, 1.0, 0.05, 3);
        let count_pairs = |d: &Dataset| {
            let mut n = 0u64;
            for i in 0..d.len() {
                for j in (i + 1)..d.len() {
                    if d.distance(i, j) <= 1.0 {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(count_pairs(&c) > 4 * count_pairs(&u));
    }

    #[test]
    fn std_normal_moments_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    use rand::SeedableRng;
}
