//! Surrogate for the paper's SDSS- galaxy datasets.
//!
//! The paper uses galaxies from the Sloan Digital Sky Survey data release 12
//! restricted to the redshift shell `0.30 ≤ z ≤ 0.35`, projected to 2-D
//! (sky coordinates). Galaxy positions are strongly clustered: galaxies live
//! in groups and clusters embedded in filaments, with large voids in
//! between. This module synthesizes a 2-D point set with the same character
//! using a three-level hierarchy:
//!
//! 1. **Superclusters/filament anchors** — a sparse Poisson scatter of
//!    parent centers over the survey footprint.
//! 2. **Clusters** — each parent spawns a Poisson-distributed number of
//!    child clusters displaced by a Rayleigh-distributed offset (a
//!    Neyman–Scott / Thomas process, the standard toy model of galaxy
//!    clustering).
//! 3. **Galaxies** — cluster members drawn from a core+halo mixture (a
//!    compact Rayleigh core inside a wider Rayleigh halo, approximating the
//!    cuspy radial profile of real clusters), plus a uniform "field galaxy"
//!    background.
//!
//! The footprint mimics the SDSS contiguous northern cap: RA ∈ [110, 260]°,
//! Dec ∈ [-5, 70]°.

use crate::synthetic::sample_std_normal;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Right-ascension range of the surrogate footprint (degrees).
pub const RA_RANGE: (f64, f64) = (110.0, 260.0);
/// Declination range of the surrogate footprint (degrees).
pub const DEC_RANGE: (f64, f64) = (-5.0, 70.0);

/// Fraction of galaxies drawn as an unclustered field population.
const FIELD_FRACTION: f64 = 0.25;
/// Mean number of clusters per supercluster anchor.
const CLUSTERS_PER_PARENT: f64 = 6.0;
/// Rayleigh scale of cluster displacement from its parent (degrees).
const PARENT_SPREAD: f64 = 2.2;
/// Rayleigh scale of galaxy displacement within a cluster halo (degrees).
const CLUSTER_SPREAD: f64 = 0.18;
/// Fraction of cluster members in the compact core rather than the halo.
const CORE_FRACTION: f64 = 0.2;
/// Rayleigh scale of the core (degrees). Much tighter than the halo, so
/// cluster centers are orders of magnitude denser than the sky average —
/// the property close-pair searches on galaxy catalogs exploit.
const CORE_SPREAD: f64 = 0.03;
/// Pareto tail index of the cluster richness distribution: most centers
/// are poor groups, a few are rich clusters (observed richness functions
/// are steep power laws). Smaller = heavier tail.
const RICHNESS_ALPHA: f64 = 2.5;
/// Cap on the richness weight, bounding the result-set size any single
/// cluster can contribute.
const RICHNESS_CAP: f64 = 20.0;

/// Generates the 2-D SDSS surrogate: `(RA, Dec)` pairs in degrees.
pub fn sdss2d(count: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);

    // Scale the number of anchors with the target count so per-cluster
    // occupancy (and hence local density) stays roughly constant across
    // dataset sizes, mirroring how a deeper survey sees more structure
    // rather than denser clusters.
    let parents = ((count as f64 / 4000.0).ceil() as usize).max(8);
    let mut cluster_centers: Vec<(f64, f64)> = Vec::new();
    for _ in 0..parents {
        let pra = rng.gen_range(RA_RANGE.0..RA_RANGE.1);
        let pdec = rng.gen_range(DEC_RANGE.0..DEC_RANGE.1);
        let n_clusters = sample_poisson(CLUSTERS_PER_PARENT, &mut rng).max(1);
        for _ in 0..n_clusters {
            let r = sample_rayleigh(PARENT_SPREAD, &mut rng);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let ra = (pra + r * theta.cos()).clamp(RA_RANGE.0, RA_RANGE.1);
            let dec = (pdec + r * theta.sin()).clamp(DEC_RANGE.0, DEC_RANGE.1);
            cluster_centers.push((ra, dec));
        }
    }

    // Draw a Pareto richness weight per cluster and build its CDF; galaxies
    // pick their cluster proportionally, so a handful of centers become the
    // rich, dense systems a close-pair search should surface.
    let mut richness_cdf: Vec<f64> = Vec::with_capacity(cluster_centers.len());
    let mut total_richness = 0.0;
    for _ in 0..cluster_centers.len() {
        let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
        total_richness += u.powf(-1.0 / RICHNESS_ALPHA).min(RICHNESS_CAP);
        richness_cdf.push(total_richness);
    }

    let mut coords = Vec::with_capacity(2 * count);
    for _ in 0..count {
        if rng.gen_bool(FIELD_FRACTION) {
            coords.push(rng.gen_range(RA_RANGE.0..RA_RANGE.1));
            coords.push(rng.gen_range(DEC_RANGE.0..DEC_RANGE.1));
        } else {
            let t = rng.gen_range(0.0..total_richness);
            let idx = richness_cdf.partition_point(|&c| c <= t);
            let (cra, cdec) = cluster_centers[idx.min(cluster_centers.len() - 1)];
            let spread = if rng.gen_bool(CORE_FRACTION) {
                CORE_SPREAD
            } else {
                CLUSTER_SPREAD
            };
            let r = sample_rayleigh(spread, &mut rng);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            coords.push((cra + r * theta.cos()).clamp(RA_RANGE.0, RA_RANGE.1));
            coords.push((cdec + r * theta.sin()).clamp(DEC_RANGE.0, DEC_RANGE.1));
        }
    }
    Dataset::from_flat(2, coords)
}

/// Samples a Rayleigh deviate with the given scale.
fn sample_rayleigh<R: Rng>(scale: f64, rng: &mut R) -> f64 {
    let x = sample_std_normal(rng) * scale;
    let y = sample_std_normal(rng) * scale;
    (x * x + y * y).sqrt()
}

/// Samples a Poisson deviate (Knuth's method; fine for small means).
fn sample_poisson<R: Rng>(mean: f64, rng: &mut R) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_shape_and_bounds() {
        let d = sdss2d(10_000, 21);
        assert_eq!(d.len(), 10_000);
        assert_eq!(d.dim(), 2);
        for p in d.iter() {
            assert!((RA_RANGE.0..=RA_RANGE.1).contains(&p[0]));
            assert!((DEC_RANGE.0..=DEC_RANGE.1).contains(&p[1]));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(sdss2d(1000, 5), sdss2d(1000, 5));
        assert_ne!(sdss2d(1000, 5), sdss2d(1000, 6));
    }

    #[test]
    fn clustered_far_beyond_uniform() {
        // Chi-squared-style test: bin into a coarse grid and compare the
        // occupancy variance to the Poisson expectation of a uniform
        // scatter. Galaxy surrogates must be wildly over-dispersed.
        let d = sdss2d(20_000, 33);
        let bins = 30usize;
        let mut counts = vec![0u32; bins * bins];
        for p in d.iter() {
            let bx = (((p[0] - RA_RANGE.0) / (RA_RANGE.1 - RA_RANGE.0)) * bins as f64)
                .min(bins as f64 - 1.0) as usize;
            let by = (((p[1] - DEC_RANGE.0) / (DEC_RANGE.1 - DEC_RANGE.0)) * bins as f64)
                .min(bins as f64 - 1.0) as usize;
            counts[by * bins + bx] += 1;
        }
        let mean = d.len() as f64 / (bins * bins) as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean) * (c as f64 - mean))
            .sum::<f64>()
            / (bins * bins) as f64;
        // Uniform data would give var ≈ mean; clustering inflates it.
        assert!(var > 3.0 * mean, "variance {var} vs mean {mean}");
    }

    #[test]
    fn poisson_mean_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5000;
        let total: usize = (0..n).map(|_| sample_poisson(6.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.3, "poisson mean {mean}");
    }

    #[test]
    fn rayleigh_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(sample_rayleigh(1.0, &mut rng) >= 0.0);
        }
    }
}
