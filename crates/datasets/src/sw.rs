//! Surrogate for the paper's SW- ionosphere datasets.
//!
//! The real SW data (MIT Haystack space-weather archive) contains
//! latitude/longitude positions of total-electron-content (TEC)
//! measurements, plus the TEC value itself as an optional third dimension.
//! The archive is not redistributable, so this module synthesizes data with
//! the same statistical *shape*, which is what the paper's conclusions rest
//! on:
//!
//! * coverage is global in longitude but strongly **banded in latitude**
//!   (receiver networks concentrate at mid-northern latitudes);
//! * there are **regional hotspots** (dense receiver clusters over North
//!   America, Europe and East Asia) superposed on a diffuse background;
//! * the TEC value is non-negative, right-skewed and spatially correlated
//!   (a smooth diurnal/equatorial structure plus noise).
//!
//! The resulting distribution is highly non-uniform — many grid cells are
//! empty, a few are very dense — which is precisely the regime in which the
//! paper observes that the grid index outperforms its uniform worst case.

use crate::synthetic::sample_std_normal;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Longitude range of the surrogate (degrees).
pub const LON_RANGE: (f64, f64) = (-180.0, 180.0);
/// Latitude range of the surrogate (degrees).
pub const LAT_RANGE: (f64, f64) = (-90.0, 90.0);

/// Dense receiver-cluster hotspots: (lat center, lon center, lat σ, lon σ, weight).
const HOTSPOTS: &[(f64, f64, f64, f64, f64)] = &[
    (40.0, -100.0, 8.0, 14.0, 0.28),  // North America
    (48.0, 10.0, 6.0, 12.0, 0.22),    // Europe
    (35.0, 135.0, 7.0, 10.0, 0.16),   // East Asia
    (-25.0, 135.0, 9.0, 12.0, 0.06),  // Australia
    (-15.0, -55.0, 10.0, 10.0, 0.08), // South America
];
/// Probability mass of the mid-latitude band component.
const BAND_WEIGHT: f64 = 0.15;
/// Remaining mass is globally diffuse background.
const BACKGROUND_WEIGHT: f64 = 1.0 - BAND_WEIGHT - (0.28 + 0.22 + 0.16 + 0.06 + 0.08);

/// Generates the 2-D SW surrogate: `(latitude, longitude)` pairs.
pub fn sw2d(count: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(2 * count);
    for _ in 0..count {
        let (lat, lon) = sample_position(&mut rng);
        coords.push(lat);
        coords.push(lon);
    }
    Dataset::from_flat(2, coords)
}

/// Generates the 3-D SW surrogate: `(latitude, longitude, TEC)` triples.
///
/// TEC is expressed in TEC units (TECU); the surrogate reproduces the real
/// data's smooth equatorial enhancement, diurnal longitude wave and
/// right-skewed noise, scaled so the TEC axis spans a range comparable to
/// the spatial axes (as in the paper, where a single ε applies to all
/// dimensions).
pub fn sw3d(count: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(3 * count);
    for _ in 0..count {
        let (lat, lon) = sample_position(&mut rng);
        coords.push(lat);
        coords.push(lon);
        coords.push(sample_tec(lat, lon, &mut rng));
    }
    Dataset::from_flat(3, coords)
}

fn sample_position<R: Rng>(rng: &mut R) -> (f64, f64) {
    const {
        assert!(
            BACKGROUND_WEIGHT > 0.0,
            "mixture weights must leave background mass"
        )
    };
    let mut r = rng.gen_range(0.0..1.0);
    for &(lat_c, lon_c, lat_s, lon_s, w) in HOTSPOTS {
        if r < w {
            let lat = (lat_c + sample_std_normal(rng) * lat_s).clamp(LAT_RANGE.0, LAT_RANGE.1);
            let lon = wrap_lon(lon_c + sample_std_normal(rng) * lon_s);
            return (lat, lon);
        }
        r -= w;
    }
    if r < BAND_WEIGHT {
        // Mid-northern latitude band, uniform in longitude.
        let lat = (45.0 + sample_std_normal(rng) * 12.0).clamp(LAT_RANGE.0, LAT_RANGE.1);
        let lon = rng.gen_range(LON_RANGE.0..LON_RANGE.1);
        (lat, lon)
    } else {
        // Diffuse background, thinning toward the poles (cosine-weighted).
        loop {
            let lat = rng.gen_range(LAT_RANGE.0..LAT_RANGE.1);
            if rng.gen_range(0.0..1.0) < lat.to_radians().cos() {
                let lon = rng.gen_range(LON_RANGE.0..LON_RANGE.1);
                return (lat, lon);
            }
        }
    }
}

fn sample_tec<R: Rng>(lat: f64, lon: f64, rng: &mut R) -> f64 {
    // Equatorial ionization anomaly: TEC peaks near ±15° magnetic latitude.
    let anomaly = (-((lat.abs() - 15.0) / 20.0).powi(2)).exp();
    // Diurnal wave in longitude (a fixed-epoch snapshot).
    let diurnal = 0.5 + 0.5 * (lon.to_radians()).cos();
    let base = 10.0 + 60.0 * anomaly * (0.4 + 0.6 * diurnal);
    // Right-skewed multiplicative noise.
    let noise = (sample_std_normal(rng) * 0.25).exp();
    (base * noise).clamp(0.0, 180.0)
}

fn wrap_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l < LON_RANGE.0 {
        l += 360.0;
    }
    while l >= LON_RANGE.1 {
        l -= 360.0;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw2d_shape_and_bounds() {
        let d = sw2d(5000, 11);
        assert_eq!(d.len(), 5000);
        assert_eq!(d.dim(), 2);
        for p in d.iter() {
            assert!((LAT_RANGE.0..=LAT_RANGE.1).contains(&p[0]), "lat {}", p[0]);
            assert!((LON_RANGE.0..=LON_RANGE.1).contains(&p[1]), "lon {}", p[1]);
        }
    }

    #[test]
    fn sw3d_tec_nonnegative() {
        let d = sw3d(5000, 12);
        assert_eq!(d.dim(), 3);
        for p in d.iter() {
            assert!(p[2] >= 0.0 && p[2] <= 180.0, "tec {}", p[2]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(sw2d(500, 3), sw2d(500, 3));
        assert_ne!(sw2d(500, 3), sw2d(500, 4));
    }

    #[test]
    fn northern_hemisphere_is_denser() {
        // Receiver networks concentrate north of the equator.
        let d = sw2d(20_000, 9);
        let north = d.iter().filter(|p| p[0] > 0.0).count();
        assert!(
            north as f64 > 0.6 * d.len() as f64,
            "north fraction {}",
            north as f64 / d.len() as f64
        );
    }

    #[test]
    fn hotspots_are_overdense() {
        // Density within 10° of the North-American hotspot must exceed the
        // global average by a wide margin.
        let d = sw2d(20_000, 10);
        let near = d
            .iter()
            .filter(|p| (p[0] - 40.0).abs() < 10.0 && (p[1] + 100.0).abs() < 10.0)
            .count() as f64;
        let cell_area = 20.0 * 20.0;
        let total_area = 180.0 * 360.0;
        let expected_uniform = d.len() as f64 * cell_area / total_area;
        assert!(
            near > 5.0 * expected_uniform,
            "hotspot count {near} vs uniform expectation {expected_uniform}"
        );
    }

    #[test]
    fn mixture_weights_sum_to_one() {
        let hotspot_mass: f64 = HOTSPOTS.iter().map(|h| h.4).sum();
        let total = hotspot_mass + BAND_WEIGHT + BACKGROUND_WEIGHT;
        assert!((total - 1.0).abs() < 1e-12, "total mixture mass {total}");
        assert!(
            hotspot_mass < 1.0 - BAND_WEIGHT,
            "hotspots must leave background mass"
        );
    }

    #[test]
    fn wrap_lon_stays_in_range() {
        assert_eq!(wrap_lon(190.0), -170.0);
        assert_eq!(wrap_lon(-190.0), 170.0);
        assert_eq!(wrap_lon(0.0), 0.0);
        assert_eq!(wrap_lon(180.0), -180.0);
    }
}
