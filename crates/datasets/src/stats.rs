//! Dataset statistics used throughout the evaluation.
//!
//! The paper reports the *average number of neighbors per point* (its
//! selectivity measure, Figure 1) alongside every timing experiment; this
//! module computes it exactly for small sets and by query sampling for
//! large ones, plus density/occupancy summaries used to reason about grid
//! behaviour.

use crate::{euclidean_sq, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact average number of ε-neighbors per point, excluding the point
/// itself, by brute force. O(|D|²) — use only on small datasets.
pub fn avg_neighbors_exact(data: &Dataset, epsilon: f64) -> f64 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let eps2 = epsilon * epsilon;
    let mut pairs = 0u64;
    for i in 0..n {
        let pi = data.point(i);
        for j in (i + 1)..n {
            if euclidean_sq(pi, data.point(j)) <= eps2 {
                pairs += 1;
            }
        }
    }
    2.0 * pairs as f64 / n as f64
}

/// Estimates the average number of ε-neighbors per point by evaluating a
/// random sample of `sample` query points against the full dataset.
///
/// The estimator is unbiased; its standard error shrinks with
/// `1/sqrt(sample)`. The batching scheme of the core library uses the same
/// idea on-device to size result buffers.
pub fn avg_neighbors_sampled(data: &Dataset, epsilon: f64, sample: usize, seed: u64) -> f64 {
    let n = data.len();
    if n == 0 || sample == 0 {
        return 0.0;
    }
    let eps2 = epsilon * epsilon;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    let sample = sample.min(n);
    for _ in 0..sample {
        let i = rng.gen_range(0..n);
        let pi = data.point(i);
        for j in 0..n {
            if j != i && euclidean_sq(pi, data.point(j)) <= eps2 {
                total += 1;
            }
        }
    }
    total as f64 / sample as f64
}

/// Summary of a dataset's spatial extent and density.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtentStats {
    /// Per-dimension minima.
    pub min: Vec<f64>,
    /// Per-dimension maxima.
    pub max: Vec<f64>,
    /// Product of per-dimension spans (hyper-volume of the bounding box).
    pub volume: f64,
    /// Points per unit hyper-volume.
    pub density: f64,
}

/// Computes bounding-box extent and mean density. Returns `None` for empty
/// datasets.
pub fn extent(data: &Dataset) -> Option<ExtentStats> {
    let min = data.min_per_dim()?;
    let max = data.max_per_dim()?;
    let volume: f64 = min
        .iter()
        .zip(&max)
        .map(|(lo, hi)| (hi - lo).max(f64::MIN_POSITIVE))
        .product();
    Some(ExtentStats {
        density: data.len() as f64 / volume,
        min,
        max,
        volume,
    })
}

/// Predicts the average neighbor count of *uniform* data from density alone:
/// `density × volume_of_n_ball(ε)`. Used by tests to cross-check the
/// sampled estimator and by the harness to pick ε values that land in the
/// paper's selectivity regime.
pub fn uniform_expected_neighbors(dim: usize, density: f64, epsilon: f64) -> f64 {
    density * n_ball_volume(dim, epsilon)
}

/// Volume of an n-ball of the given radius.
pub fn n_ball_volume(dim: usize, radius: f64) -> f64 {
    // V_n(r) = π^(n/2) / Γ(n/2 + 1) × r^n, via the half-integer recurrence.
    let n = dim as f64;
    let pi = std::f64::consts::PI;
    pi.powf(n / 2.0) / gamma_half_integer(dim + 2) * radius.powi(dim as i32)
}

/// Γ(k/2) for integer `k ≥ 1`, computed exactly from the recurrence
/// Γ(x+1) = xΓ(x) with Γ(1/2) = √π and Γ(1) = 1.
fn gamma_half_integer(k: usize) -> f64 {
    assert!(k >= 1);
    let mut x = k as f64 / 2.0;
    let mut acc = 1.0;
    while x > 1.0 {
        x -= 1.0;
        acc *= x;
    }
    if (x - 0.5).abs() < 1e-12 {
        acc * std::f64::consts::PI.sqrt()
    } else {
        acc // Γ(1) = 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{lattice, uniform};

    #[test]
    fn exact_neighbors_on_lattice() {
        // Unit-spaced 5x5 lattice, ε = 1: interior points have 4 neighbors,
        // edges 3, corners 2 → total directed pairs = 2 * (2*20 undirected).
        let d = lattice(2, 5, 1.0);
        let avg = avg_neighbors_exact(&d, 1.0);
        // Undirected adjacent pairs in a 5x5 grid graph: 2 * 5 * 4 = 40.
        let expected = 2.0 * 40.0 / 25.0;
        assert!((avg - expected).abs() < 1e-12, "avg {avg}");
    }

    #[test]
    fn sampled_estimator_close_to_exact() {
        let d = uniform(2, 3000, 17);
        let exact = avg_neighbors_exact(&d, 2.0);
        let sampled = avg_neighbors_sampled(&d, 2.0, 600, 1);
        assert!(
            (sampled - exact).abs() < 0.25 * exact.max(1.0),
            "sampled {sampled} exact {exact}"
        );
    }

    #[test]
    fn n_ball_volumes_match_closed_forms() {
        let pi = std::f64::consts::PI;
        assert!((n_ball_volume(1, 2.0) - 4.0).abs() < 1e-12);
        assert!((n_ball_volume(2, 1.5) - pi * 2.25).abs() < 1e-12);
        assert!((n_ball_volume(3, 1.0) - 4.0 / 3.0 * pi).abs() < 1e-12);
        assert!((n_ball_volume(4, 1.0) - pi * pi / 2.0).abs() < 1e-12);
        assert!((n_ball_volume(6, 1.0) - pi.powi(3) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_prediction_matches_measurement() {
        let d = uniform(2, 5000, 4);
        let ext = extent(&d).unwrap();
        let predicted = uniform_expected_neighbors(2, ext.density, 2.0);
        let measured = avg_neighbors_exact(&d, 2.0);
        assert!(
            (predicted - measured).abs() < 0.2 * predicted,
            "predicted {predicted} measured {measured}"
        );
    }

    #[test]
    fn extent_of_unit_square() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 0.5, 0.5]);
        let e = extent(&d).unwrap();
        assert_eq!(e.min, vec![0.0, 0.0]);
        assert_eq!(e.max, vec![1.0, 1.0]);
        assert_eq!(e.volume, 1.0);
        assert_eq!(e.density, 3.0);
        assert!(extent(&Dataset::new(2)).is_none());
    }

    #[test]
    fn neighbor_curve_decreases_with_dimension() {
        // The Figure 1a effect: constant |D| and ε, rising n → falling
        // average neighbor count.
        let mut prev = f64::INFINITY;
        for dim in 2..=4 {
            let d = uniform(dim, 2000, 8);
            let avg = avg_neighbors_sampled(&d, 5.0, 400, 2);
            assert!(avg < prev, "dim {dim}: {avg} !< {prev}");
            prev = avg;
        }
    }
}
