//! Workload generators and dataset utilities for the self-join reproduction.
//!
//! The paper (Gowanlock & Karsin 2018) evaluates on three families of
//! datasets (its Table I):
//!
//! * **Syn-nD** — uniformly distributed points in `[0, 100]^n`, `n ∈ [2, 6]`,
//!   with 2×10⁶ and 10⁷ points ([`synthetic::uniform`]).
//! * **SW-** — ionosphere total-electron-content measurements over
//!   latitude/longitude (1.86M and 5.16M points, 2-D and 3-D). The real data
//!   is not redistributable, so [`sw`] generates a surrogate with the same
//!   *shape*: dense latitude bands, longitudinal waves and regional hotspots.
//! * **SDSS-** — Sloan Digital Sky Survey galaxies in 2-D (2M and 15.2M
//!   points). [`sdss`] generates a surrogate with hierarchical angular
//!   clustering (clusters + field galaxies + voids).
//!
//! All generators are seeded and deterministic. [`catalog`] enumerates the
//! paper's Table I datasets with an adjustable scale factor so the
//! reproduction harness can run the full sweep on modest hardware.

pub mod catalog;
pub mod io;
pub mod sdss;
pub mod stats;
pub mod sw;
pub mod synthetic;

/// A multidimensional point set stored in a flat, row-major buffer.
///
/// Points are `f64` (the paper's GPU kernels use 64-bit doubles). The flat
/// layout is what the simulated GPU kernels index directly, mirroring the
/// coordinate array `D` of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    dim: usize,
    coords: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset from a flat row-major coordinate buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `coords.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            coords.len().is_multiple_of(dim),
            "coordinate buffer length {} is not a multiple of dim {}",
            coords.len(),
            dim
        );
        Self { dim, coords }
    }

    /// Creates an empty dataset of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        Self::from_flat(dim, Vec::new())
    }

    /// Number of points `|D|`.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the dataset contains no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality `n` of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major coordinate buffer.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != self.dim()`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.coords.extend_from_slice(p);
    }

    /// Iterates over the points as coordinate slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.coords.chunks_exact(self.dim)
    }

    /// Euclidean distance between points `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        euclidean(self.point(i), self.point(j))
    }

    /// Per-dimension minima over all points. Empty datasets yield `None`.
    pub fn min_per_dim(&self) -> Option<Vec<f64>> {
        self.fold_per_dim(f64::INFINITY, f64::min)
    }

    /// Per-dimension maxima over all points. Empty datasets yield `None`.
    pub fn max_per_dim(&self) -> Option<Vec<f64>> {
        self.fold_per_dim(f64::NEG_INFINITY, f64::max)
    }

    fn fold_per_dim(&self, init: f64, f: fn(f64, f64) -> f64) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let mut acc = vec![init; self.dim];
        for p in self.iter() {
            for (a, &x) in acc.iter_mut().zip(p) {
                *a = f(*a, x);
            }
        }
        Some(acc)
    }

    /// Rescales every dimension linearly onto `[0, 1]`.
    ///
    /// Super-EGO normalizes its input this way (paper §VI-B); the ε used for
    /// a normalized join must be scaled by the same per-dimension factors.
    /// Returns the scale factor applied per dimension (`1 / (max - min)`;
    /// degenerate dimensions with `max == min` map to 0.5 with factor 1).
    pub fn normalize_unit(&mut self) -> Vec<f64> {
        let (mins, maxs) = match (self.min_per_dim(), self.max_per_dim()) {
            (Some(a), Some(b)) => (a, b),
            _ => return vec![1.0; self.dim],
        };
        let mut factors = vec![1.0; self.dim];
        for (j, factor) in factors.iter_mut().enumerate() {
            let span = maxs[j] - mins[j];
            if span > 0.0 {
                *factor = 1.0 / span;
            }
        }
        let dim = self.dim;
        for (idx, c) in self.coords.iter_mut().enumerate() {
            let j = idx % dim;
            let span = maxs[j] - mins[j];
            *c = if span > 0.0 {
                (*c - mins[j]) / span
            } else {
                0.5
            };
        }
        factors
    }
}

/// Euclidean distance between two equal-length coordinate slices.
///
/// This is the paper's `dist(a, b) = sqrt(Σ_j (a_j - b_j)²)`.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Squared Euclidean distance. Comparisons against ε should use this with
/// `ε²` to avoid the square root in inner loops (all joins in this
/// workspace do).
#[inline]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_roundtrip() {
        let d = Dataset::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(0), &[0.0, 1.0]);
        assert_eq!(d.point(1), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(3, vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = Dataset::new(0);
    }

    #[test]
    fn push_and_iter() {
        let mut d = Dataset::new(3);
        d.push(&[1.0, 2.0, 3.0]);
        d.push(&[4.0, 5.0, 6.0]);
        let pts: Vec<&[f64]> = d.iter().collect();
        assert_eq!(pts, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn min_max_per_dim() {
        let d = Dataset::from_flat(2, vec![0.0, 5.0, -3.0, 7.0, 2.0, 6.0]);
        assert_eq!(d.min_per_dim().unwrap(), vec![-3.0, 5.0]);
        assert_eq!(d.max_per_dim().unwrap(), vec![2.0, 7.0]);
        assert!(Dataset::new(2).min_per_dim().is_none());
    }

    #[test]
    fn normalize_unit_maps_to_unit_cube() {
        let mut d = Dataset::from_flat(2, vec![0.0, 10.0, 50.0, 20.0, 100.0, 30.0]);
        let factors = d.normalize_unit();
        assert_eq!(factors, vec![1.0 / 100.0, 1.0 / 20.0]);
        assert_eq!(d.point(0), &[0.0, 0.0]);
        assert_eq!(d.point(1), &[0.5, 0.5]);
        assert_eq!(d.point(2), &[1.0, 1.0]);
    }

    #[test]
    fn normalize_degenerate_dimension_centers() {
        let mut d = Dataset::from_flat(2, vec![5.0, 1.0, 5.0, 3.0]);
        let factors = d.normalize_unit();
        assert_eq!(factors[0], 1.0);
        assert_eq!(d.point(0)[0], 0.5);
        assert_eq!(d.point(1)[0], 0.5);
    }

    #[test]
    fn distance_between_points() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(d.distance(0, 1), 5.0);
    }
}
