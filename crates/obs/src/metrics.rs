//! The unified metrics registry: counters, gauges, and fixed-bucket
//! histograms behind one name+label namespace, with JSON and
//! Prometheus-text exposition.
//!
//! Handles are cheap `Arc`s over atomics — register once (or per call;
//! registration is a sharded map lookup), then update lock-free on the
//! hot path. Histograms are **fixed-bucket**: an observation is one
//! binary search plus two atomic adds, so they replace the
//! sort-the-whole-sample latency path for streaming use; snapshots of
//! identically-bucketed histograms merge associatively
//! ([`HistogramSnapshot::merge`]), which the property tests pin down.
//!
//! The registry is sharded by key hash so concurrent registration from
//! worker threads doesn't convoy on one lock; updates after registration
//! never touch the map at all.

use crate::json::Json;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Map shards in a [`Registry`].
const SHARDS: usize = 16;

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (stored as `f64` bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (CAS loop; gauges are low-rate by design).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds, strictly increasing; observations above the last
    /// bound land in the implicit overflow bucket.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation: a binary search over the bounds plus
    /// atomic adds. NaN observations are dropped.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let c = &self.0;
        // First bucket whose upper bound contains v (bounds inclusive).
        let idx = c.bounds.partition_point(|&b| b < v);
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A point-in-time copy for merging, quantiles, and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// An owned histogram state — what exposition and tests operate on.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Pointwise merge of two identically-bucketed snapshots — the
    /// associative, commutative combine that makes sharded collection
    /// sound.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ (merging those is a schema
    /// error, not data).
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different buckets"
        );
        Self {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Streaming quantile estimate: finds the bucket holding the
    /// nearest-rank observation and interpolates linearly within it.
    /// The overflow bucket reports the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let hi = self.bounds.get(i).copied().unwrap_or(
                    // Overflow bucket: no upper bound to interpolate to.
                    *self.bounds.last().expect("non-empty bounds"),
                );
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (rank - seen) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

/// `count` exponential bucket bounds starting at `start`, each `factor`
/// larger than the last.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut out = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        out.push(b);
        b *= factor;
    }
    out
}

/// Default buckets for latencies in seconds: 1 µs to ~1000 s, a factor
/// of 2 apart (31 buckets) — tight enough for streaming percentiles on
/// the virtual clock, small enough to live per tenant.
pub fn latency_buckets() -> Vec<f64> {
    exponential_buckets(1e-6, 2.0, 31)
}

/// Buckets for *signed relative error* of a cost projection,
/// `(projected − measured) / measured`: symmetric log-spaced bounds from
/// ±1% to ±8×, so both the sign of the drift and its magnitude survive
/// the histogram.
pub fn rel_error_buckets() -> Vec<f64> {
    let mags = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut out: Vec<f64> = mags.iter().rev().map(|m| -m).collect();
    out.push(0.0);
    out.extend_from_slice(&mags);
    out
}

#[derive(Clone, Debug)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A metric's identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    fn shard(&self) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// A sharded registry of named metrics. Most code uses the process-wide
/// [`registry`]; tests can make private ones.
pub struct Registry {
    shards: Vec<Mutex<HashMap<Key, Entry>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Gets or registers a counter.
    ///
    /// # Panics
    ///
    /// Panics if the name+labels is already registered as another type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Key::new(name, labels);
        let mut shard = self.shards[key.shard()].lock();
        match shard
            .entry(key)
            .or_insert_with(|| Entry::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Entry::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gets or registers a gauge.
    ///
    /// # Panics
    ///
    /// Panics on a type clash with an existing registration.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Key::new(name, labels);
        let mut shard = self.shards[key.shard()].lock();
        match shard
            .entry(key)
            .or_insert_with(|| Entry::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Entry::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gets or registers a histogram. If the metric already exists, the
    /// existing handle is returned and `bounds` is ignored — buckets are
    /// part of the schema and fixed at first registration.
    ///
    /// # Panics
    ///
    /// Panics on a type clash, on empty bounds, or on non-increasing
    /// bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly increasing"
        );
        let key = Key::new(name, labels);
        let mut shard = self.shards[key.shard()].lock();
        match shard.entry(key).or_insert_with(|| {
            Entry::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            })))
        }) {
            Entry::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Drops every registered metric. Live handles keep working but are
    /// no longer exported — callers re-register after a reset.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// A sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, entry) in shard.lock().iter() {
                out.push(MetricSnapshot {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: match entry {
                        Entry::Counter(c) => MetricValue::Counter(c.get()),
                        Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                        Entry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// JSON exposition: an array of `{name, labels, type, ...}` objects.
    pub fn to_json(&self) -> String {
        let mut arr = Json::arr();
        for m in self.snapshot() {
            let mut labels = Json::obj();
            for (k, v) in &m.labels {
                labels = labels.field(k, v.as_str());
            }
            let base = Json::obj()
                .field("name", m.name.as_str())
                .field("labels", labels);
            arr = arr.push(match m.value {
                MetricValue::Counter(v) => base.field("type", "counter").field("value", v),
                MetricValue::Gauge(v) => base.field("type", "gauge").field("value", v),
                MetricValue::Histogram(h) => base
                    .field("type", "histogram")
                    .field("count", h.count)
                    .field("sum", h.sum)
                    .field("mean", h.mean())
                    .field("p50", h.quantile(0.50))
                    .field("p95", h.quantile(0.95))
                    .field("p99", h.quantile(0.99))
                    .field(
                        "buckets",
                        Json::Arr(h.bounds.iter().map(|&b| Json::Num(b)).collect()),
                    )
                    .field(
                        "counts",
                        Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
                    ),
            });
        }
        arr.render_pretty()
    }

    /// Prometheus text exposition (v0.0.4): counters and gauges as-is,
    /// histograms with cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for m in self.snapshot() {
            let name = sanitize(&m.name);
            if name != last_name {
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = name.clone();
            }
            match m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_set(&m.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_set(&m.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = h
                            .bounds
                            .get(i)
                            .map_or("+Inf".to_string(), |b| format!("{b}"));
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_set(&m.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", label_set(&m.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        label_set(&m.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// One exported metric.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Metric name as registered.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The typed value of a [`MetricSnapshot`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v.replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// The process-wide registry every instrumented crate reports into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("queries", &[("tenant", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same key returns the same underlying counter.
        assert_eq!(r.counter("queries", &[("tenant", "a")]).get(), 5);
        let g = r.gauge("pressure", &[]);
        g.set(2.5);
        g.add(-0.5);
        assert!((g.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat", &[], &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // 1.0 lands in the first bucket (bounds inclusive).
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 106.0).abs() < 1e-9);
        assert!(s.quantile(0.5) <= 2.0);
        assert_eq!(s.quantile(1.0), 4.0, "overflow reports last bound");
        assert!((s.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn merge_is_pointwise() {
        let a = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts: vec![1, 2, 3],
            sum: 10.0,
            count: 6,
        };
        let b = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts: vec![4, 0, 1],
            sum: 7.0,
            count: 5,
        };
        let m = a.merge(&b);
        assert_eq!(m.counts, vec![5, 2, 4]);
        assert_eq!(m.count, 11);
        assert!((m.sum - 17.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn merge_rejects_schema_mismatch() {
        let a = HistogramSnapshot::empty(&[1.0]);
        let b = HistogramSnapshot::empty(&[2.0]);
        let _ = a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_clash_panics() {
        let r = Registry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn exposition_formats() {
        let r = Registry::new();
        r.counter("sj_queries_total", &[("tenant", "a")]).add(3);
        r.gauge("sj_pool_pressure", &[]).set(1.5);
        r.histogram("sj_latency_secs", &[], &[0.1, 1.0])
            .observe(0.5);
        let json = r.to_json();
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(doc.items().len(), 3);
        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE sj_queries_total counter"));
        assert!(prom.contains("sj_queries_total{tenant=\"a\"} 3"));
        assert!(prom.contains("sj_latency_secs_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("sj_latency_secs_count 1"));
    }

    #[test]
    fn rel_error_buckets_are_increasing_and_symmetric() {
        let b = rel_error_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b.contains(&0.0));
        assert_eq!(b.first().copied(), Some(-8.0));
        assert_eq!(b.last().copied(), Some(8.0));
    }

    #[test]
    fn reset_clears_exports() {
        let r = Registry::new();
        r.counter("gone", &[]).inc();
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
