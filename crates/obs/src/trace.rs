//! Span tracing on two clocks.
//!
//! A span is one timed stage of a query's life — `serve.admission`,
//! `plan.execute`, `gpu.kernel` — with an id, a parent id, labels, and
//! *two* time intervals: the **wall clock** (host `Instant`, what the
//! process actually spent) and the **modeled clock** (the simulator's
//! virtual time, what the modeled hardware would have spent). The
//! simulator runs on virtual time, so a trace showing only wall time
//! would mis-rank every device stage; exports carry both.
//!
//! Tracing is off by default and costs one relaxed [`AtomicBool`] load
//! per call site when disabled — [`Span::enter`] returns an inert guard
//! without touching the clock, the ring, or the allocator. Enabled spans
//! are recorded into **per-thread ring buffers** (bounded; overflow
//! overwrites the oldest records and is counted), so tracing never
//! allocates on the hot path beyond the ring itself and never takes a
//! cross-thread lock except on first use per thread and at [`drain`].
//!
//! Parentage is implicit within a thread (a thread-local span stack) and
//! explicit across threads: a producer passes [`SpanGuard::id`] to the
//! consumer, which opens its span with [`Span::child_of`]. The modeled
//! clock is threaded the same way — a worker seeds its thread's modeled
//! cursor ([`set_modeled_cursor`]) from the scheduler's virtual start
//! time, and spans that report a modeled duration
//! ([`SpanGuard::set_modeled_dur`]) advance it.
//!
//! Exporters: [`chrome_trace`] (Chrome trace-event JSON, loadable in
//! `chrome://tracing` / Perfetto — wall clock on pid 0, modeled clock on
//! pid 1) and [`flame_summary`] (a self-describing text flame profile).
//! [`validate`] checks structural well-formedness: unique ids, every
//! parent live, no cycles.

use crate::json::Json;
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Global tracing switch. Reading it is the entire disabled-path cost.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span-id source; id 0 means "no span" / root parent.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic thread-id source for trace `tid`s (stable, small, unlike
/// `std::thread::ThreadId`'s opaque values).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// Spans each thread's ring retains; older records are overwritten and
/// counted in [`dropped`].
const RING_CAPACITY: usize = 1 << 15;

/// Whether tracing is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off. Spans already recorded stay in their rings.
pub fn set_enabled(on: bool) {
    // Initialize the epoch before the first span can observe it.
    let _ = epoch();
    ENABLED.store(on, Ordering::SeqCst);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch — capture one to pass to
/// [`SpanGuard::set_wall_start_ns`] for retroactive spans (queue waits).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One label value. `&'static str` and integers store without allocating.
#[derive(Clone, Debug, PartialEq)]
pub enum LabelValue {
    Str(&'static str),
    Text(String),
    U64(u64),
    F64(f64),
}

impl From<&'static str> for LabelValue {
    fn from(v: &'static str) -> Self {
        LabelValue::Str(v)
    }
}
impl From<String> for LabelValue {
    fn from(v: String) -> Self {
        LabelValue::Text(v)
    }
}
impl From<u64> for LabelValue {
    fn from(v: u64) -> Self {
        LabelValue::U64(v)
    }
}
impl From<usize> for LabelValue {
    fn from(v: usize) -> Self {
        LabelValue::U64(v as u64)
    }
}
impl From<u32> for LabelValue {
    fn from(v: u32) -> Self {
        LabelValue::U64(v as u64)
    }
}
impl From<f64> for LabelValue {
    fn from(v: f64) -> Self {
        LabelValue::F64(v)
    }
}

impl LabelValue {
    fn to_json(&self) -> Json {
        match self {
            LabelValue::Str(s) => Json::Str((*s).to_string()),
            LabelValue::Text(s) => Json::Str(s.clone()),
            LabelValue::U64(v) => Json::UInt(*v),
            LabelValue::F64(v) => Json::Num(*v),
        }
    }
}

/// A finished span as stored in the rings and handed to exporters.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique nonzero span id.
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Stage name — see the README's span taxonomy.
    pub name: &'static str,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Wall start, ns since the trace epoch.
    pub wall_start_ns: u64,
    /// Wall duration in ns.
    pub wall_dur_ns: u64,
    /// Modeled-clock interval `(start_ns, dur_ns)` on the simulator's
    /// virtual timeline, when the stage reported one.
    pub modeled_ns: Option<(u64, u64)>,
    /// Stage labels (empty unless the site attached any).
    pub labels: Vec<(&'static str, LabelValue)>,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next overwrite position once the ring is full.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// The thread's position on the modeled clock, in virtual seconds
    /// (NaN = not seeded).
    static MODELED_CURSOR: Cell<f64> = const { Cell::new(f64::NAN) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

fn record(rec: SpanRecord) {
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
                dropped: 0,
            }));
            rings().lock().push(Arc::clone(&ring));
            ring
        });
        ring.lock().push(rec);
    });
}

/// Seeds this thread's modeled clock (virtual seconds). Workers call it
/// before running a job so device-stage spans land at the job's virtual
/// start time.
pub fn set_modeled_cursor(secs: f64) {
    MODELED_CURSOR.with(|c| c.set(secs));
}

/// The thread's modeled-clock position, NaN if never seeded.
pub fn modeled_cursor() -> f64 {
    MODELED_CURSOR.with(|c| c.get())
}

/// Span entry points. `Span` is a namespace; the value you hold is the
/// [`SpanGuard`].
pub struct Span;

impl Span {
    /// Opens a span as a child of the thread's innermost open span (root
    /// if none). When tracing is disabled this is one atomic load and
    /// returns an inert guard.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        Self::start(name, None)
    }

    /// Opens a span under an explicit parent id — the cross-thread edge.
    /// The span also joins this thread's stack so its descendants nest
    /// under it.
    #[inline]
    pub fn child_of(parent: u64, name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        Self::start(name, Some(parent))
    }

    fn start(name: &'static str, parent: Option<u64>) -> SpanGuard {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent =
            parent.unwrap_or_else(|| STACK.with(|s| s.borrow().last().copied().unwrap_or(0)));
        STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard(Some(Box::new(Active {
            rec: SpanRecord {
                id,
                parent,
                name,
                thread: thread_id(),
                wall_start_ns: now_ns(),
                wall_dur_ns: 0,
                modeled_ns: None,
                labels: Vec::new(),
            },
            started: Instant::now(),
            cursor_at_enter: modeled_cursor(),
        })))
    }
}

struct Active {
    rec: SpanRecord,
    started: Instant,
    cursor_at_enter: f64,
}

/// RAII guard for an open span; the record is written when it drops.
/// Inert (all methods no-ops, `id()` = 0) when tracing was disabled at
/// entry.
pub struct SpanGuard(Option<Box<Active>>);

impl SpanGuard {
    /// The span's id (0 when tracing is disabled) — pass to
    /// [`Span::child_of`] on another thread.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.rec.id)
    }

    /// Attaches a label. Prefer `&'static str` / integer values; they
    /// don't allocate.
    pub fn label(&mut self, key: &'static str, value: impl Into<LabelValue>) {
        if let Some(a) = &mut self.0 {
            a.rec.labels.push((key, value.into()));
        }
    }

    /// Attaches a lazily-computed label — the closure only runs when the
    /// span is live, so format costs stay off the disabled path.
    pub fn label_with(&mut self, key: &'static str, value: impl FnOnce() -> LabelValue) {
        if let Some(a) = &mut self.0 {
            a.rec.labels.push((key, value()));
        }
    }

    /// Sets the modeled interval explicitly (virtual seconds), and moves
    /// the thread's modeled cursor to its end.
    pub fn set_modeled(&mut self, start_secs: f64, dur_secs: f64) {
        if let Some(a) = &mut self.0 {
            a.rec.modeled_ns = Some((secs_to_ns(start_secs), secs_to_ns(dur_secs)));
            set_modeled_cursor(start_secs + dur_secs.max(0.0));
        }
    }

    /// Reports the stage's modeled duration (virtual seconds). The span
    /// starts at the thread's modeled cursor — or, unseeded, at the
    /// cursor value captured on entry (0 if never seeded) — and advances
    /// the cursor past itself, so sibling device stages lay out
    /// sequentially on the modeled timeline.
    pub fn set_modeled_dur(&mut self, dur_secs: f64) {
        if let Some(a) = &mut self.0 {
            let cursor = modeled_cursor();
            let start = if cursor.is_nan() {
                if a.cursor_at_enter.is_nan() {
                    0.0
                } else {
                    a.cursor_at_enter
                }
            } else {
                cursor
            };
            a.rec.modeled_ns = Some((secs_to_ns(start), secs_to_ns(dur_secs)));
            set_modeled_cursor(start + dur_secs.max(0.0));
        }
    }

    /// Backdates the span's wall start (ns from [`now_ns`]) — for stages
    /// whose start was observed before the span could be opened, like a
    /// queue wait recorded by the worker that popped the job.
    pub fn set_wall_start_ns(&mut self, start_ns: u64) {
        if let Some(a) = &mut self.0 {
            a.rec.wall_start_ns = start_ns;
        }
    }
}

fn secs_to_ns(secs: f64) -> u64 {
    (secs.max(0.0) * 1e9) as u64
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut a) = self.0.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order per thread; pop defensively in
            // case a caller leaked an inner guard past its scope.
            if let Some(pos) = stack.iter().rposition(|&id| id == a.rec.id) {
                stack.truncate(pos);
            }
        });
        let measured = a.started.elapsed().as_nanos() as u64;
        a.rec.wall_dur_ns = now_ns().saturating_sub(a.rec.wall_start_ns).max(measured);
        record(a.rec);
    }
}

/// Removes and returns every recorded span, across all threads, sorted
/// by wall start.
pub fn drain() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in rings().lock().iter() {
        let mut ring = ring.lock();
        out.append(&mut ring.buf);
        ring.next = 0;
    }
    out.sort_by_key(|r| r.wall_start_ns);
    out
}

/// Discards all recorded spans and overflow counts.
pub fn clear() {
    for ring in rings().lock().iter() {
        let mut ring = ring.lock();
        ring.buf.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
}

/// Spans lost to ring overflow since the last [`clear`].
pub fn dropped() -> u64 {
    rings().lock().iter().map(|r| r.lock().dropped).sum()
}

/// Structural summary returned by [`validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Total spans examined.
    pub spans: usize,
    /// Spans with no parent.
    pub roots: usize,
    /// Longest root-to-leaf chain.
    pub max_depth: usize,
    /// Distinct recording threads.
    pub threads: usize,
}

/// Checks well-formedness: ids unique and nonzero, every nonzero parent
/// id present in the batch (no orphan ever exported), parent chains
/// acyclic. Returns summary stats or a description of the first defect.
pub fn validate(records: &[SpanRecord]) -> Result<TraceStats, String> {
    let mut parents: HashMap<u64, u64> = HashMap::with_capacity(records.len());
    for r in records {
        if r.id == 0 {
            return Err(format!("span {:?} has id 0", r.name));
        }
        if parents.insert(r.id, r.parent).is_some() {
            return Err(format!("duplicate span id {} ({})", r.id, r.name));
        }
    }
    let mut roots = 0usize;
    let mut max_depth = 0usize;
    for r in records {
        if r.parent == 0 {
            roots += 1;
        } else if !parents.contains_key(&r.parent) {
            return Err(format!(
                "span {} ({}) has dangling parent {}",
                r.id, r.name, r.parent
            ));
        }
        let mut depth = 1usize;
        let mut cur = r.parent;
        while cur != 0 {
            depth += 1;
            if depth > records.len() {
                return Err(format!("parent cycle reached from span {}", r.id));
            }
            cur = parents[&cur];
        }
        max_depth = max_depth.max(depth);
    }
    let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    Ok(TraceStats {
        spans: records.len(),
        roots,
        max_depth,
        threads: threads.len(),
    })
}

/// Renders records as Chrome trace-event JSON (open in `chrome://tracing`
/// or <https://ui.perfetto.dev>). Two processes: pid 0 is the wall clock,
/// pid 1 the modeled clock (only spans that reported a modeled interval
/// appear there). Every event carries its span `id` and `parent` in
/// `args`, so the span tree survives the export.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut events = Json::arr();
    for (pid, label) in [(0u64, "wall clock"), (1u64, "modeled clock")] {
        events = events.push(
            Json::obj()
                .field("name", "process_name")
                .field("ph", "M")
                .field("pid", pid)
                .field("args", Json::obj().field("name", label)),
        );
    }
    for r in records {
        let mut args = Json::obj()
            .field("id", r.id)
            .field("parent", r.parent)
            .field("modeled_us", r.modeled_ns.map(|(_, d)| d as f64 / 1e3));
        for (k, v) in &r.labels {
            args = args.field(k, v.to_json());
        }
        let base = Json::obj()
            .field("name", r.name)
            .field("cat", r.name.split('.').next().unwrap_or("span"))
            .field("ph", "X")
            .field("tid", r.thread);
        events = events.push(
            base.clone()
                .field("pid", 0u64)
                .field("ts", r.wall_start_ns as f64 / 1e3)
                .field("dur", r.wall_dur_ns as f64 / 1e3)
                .field("args", args.clone()),
        );
        if let Some((start, dur)) = r.modeled_ns {
            events = events.push(
                base.field("pid", 1u64)
                    .field("ts", start as f64 / 1e3)
                    .field("dur", dur as f64 / 1e3)
                    .field("args", args),
            );
        }
    }
    Json::obj()
        .field("traceEvents", events)
        .field("displayTimeUnit", "ms")
        .field(
            "otherData",
            Json::obj()
                .field("pid0", "wall clock")
                .field("pid1", "modeled clock")
                .field("dropped_spans", dropped()),
        )
        .render_pretty()
}

/// Renders a self-describing text flame summary: one line per distinct
/// root-to-span name path, with call count, total/self wall time, and
/// total modeled time, sorted by wall time.
pub fn flame_summary(records: &[SpanRecord]) -> String {
    let index: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut child_wall: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.parent != 0 {
            *child_wall.entry(r.parent).or_insert(0) += r.wall_dur_ns;
        }
    }
    let path_of = |r: &SpanRecord| -> String {
        let mut names = vec![r.name];
        let mut cur = r.parent;
        while cur != 0 && names.len() <= records.len() {
            match index.get(&cur) {
                Some(p) => {
                    names.push(p.name);
                    cur = p.parent;
                }
                None => break,
            }
        }
        names.reverse();
        names.join(";")
    };
    // path -> (count, wall, self_wall, modeled)
    let mut agg: HashMap<String, (u64, u64, u64, u64)> = HashMap::new();
    for r in records {
        let own = r
            .wall_dur_ns
            .saturating_sub(child_wall.get(&r.id).copied().unwrap_or(0));
        let e = agg.entry(path_of(r)).or_insert((0, 0, 0, 0));
        e.0 += 1;
        e.1 += r.wall_dur_ns;
        e.2 += own;
        e.3 += r.modeled_ns.map_or(0, |(_, d)| d);
    }
    let mut rows: Vec<(String, (u64, u64, u64, u64))> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(&b.0)));
    let mut out = String::from(
        "# flame summary: path count wall_ms self_ms modeled_ms\n\
         # path = root;...;span stage names, ';'-joined; self = wall minus child wall\n",
    );
    for (path, (count, wall, own, modeled)) in rows {
        out.push_str(&format!(
            "{path} {count} {:.3} {:.3} {:.3}\n",
            wall as f64 / 1e6,
            own as f64 / 1e6,
            modeled as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that enable it serialize
    /// here so parallel test threads can't interleave drains.
    fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_enabled(false);
        clear();
        {
            let mut s = Span::enter("noop");
            s.label("k", 1u64);
            assert_eq!(s.id(), 0);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_and_cross_thread_parents() {
        let _g = lock();
        set_enabled(true);
        clear();
        let root_id;
        {
            let root = Span::enter("root");
            root_id = root.id();
            {
                let mut child = Span::enter("child");
                child.label("n", 3u64);
            }
            let rid = root.id();
            std::thread::spawn(move || {
                let _remote = Span::child_of(rid, "remote");
            })
            .join()
            .unwrap();
        }
        set_enabled(false);
        let records = drain();
        assert_eq!(records.len(), 3);
        let stats = validate(&records).unwrap();
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(stats.threads, 2);
        let child = records.iter().find(|r| r.name == "child").unwrap();
        assert_eq!(child.parent, root_id);
        assert_eq!(child.labels, vec![("n", LabelValue::U64(3))]);
        let remote = records.iter().find(|r| r.name == "remote").unwrap();
        assert_eq!(remote.parent, root_id);
    }

    #[test]
    fn modeled_cursor_lays_out_sequentially() {
        let _g = lock();
        set_enabled(true);
        clear();
        set_modeled_cursor(10.0);
        {
            let mut a = Span::enter("a");
            a.set_modeled_dur(2.0);
        }
        {
            let mut b = Span::enter("b");
            b.set_modeled_dur(3.0);
        }
        set_enabled(false);
        let records = drain();
        let a = records.iter().find(|r| r.name == "a").unwrap();
        let b = records.iter().find(|r| r.name == "b").unwrap();
        assert_eq!(a.modeled_ns, Some((10_000_000_000, 2_000_000_000)));
        assert_eq!(b.modeled_ns, Some((12_000_000_000, 3_000_000_000)));
        set_modeled_cursor(f64::NAN);
    }

    #[test]
    fn chrome_export_parses_and_keeps_both_clocks() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let mut s = Span::enter("serve.query");
            s.set_modeled(1.0, 0.5);
            s.label("tenant", "astro");
        }
        set_enabled(false);
        let records = drain();
        let text = chrome_trace(&records);
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2, "wall + modeled event");
        let pids: Vec<f64> = spans
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert!(pids.contains(&0.0) && pids.contains(&1.0));
        for e in &spans {
            assert!(e.get("args").unwrap().get("id").unwrap().as_f64().unwrap() > 0.0);
        }
        set_modeled_cursor(f64::NAN);
    }

    #[test]
    fn validate_rejects_dangling_parent() {
        let rec = |id, parent| SpanRecord {
            id,
            parent,
            name: "x",
            thread: 1,
            wall_start_ns: 0,
            wall_dur_ns: 1,
            modeled_ns: None,
            labels: Vec::new(),
        };
        assert!(validate(&[rec(1, 0), rec(2, 1)]).is_ok());
        let err = validate(&[rec(1, 0), rec(2, 99)]).unwrap_err();
        assert!(err.contains("dangling"), "{err}");
    }

    #[test]
    fn ring_overflow_drops_oldest_not_process() {
        let _g = lock();
        set_enabled(true);
        clear();
        for _ in 0..RING_CAPACITY + 10 {
            let _s = Span::enter("hot");
        }
        set_enabled(false);
        let records = drain();
        assert_eq!(records.len(), RING_CAPACITY);
        assert!(dropped() >= 10);
        clear();
    }

    #[test]
    fn flame_summary_aggregates_paths() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let _root = Span::enter("plan.execute");
            let _k1 = Span::enter("gpu.kernel");
            drop(_k1);
            let _k2 = Span::enter("gpu.kernel");
        }
        set_enabled(false);
        let records = drain();
        let flame = flame_summary(&records);
        assert!(flame.contains("plan.execute;gpu.kernel 2 "), "{flame}");
        assert!(flame.starts_with("# flame summary"));
    }
}
