//! **sj-obs**: the workspace's observability layer.
//!
//! After PRs 4–6 a query crosses admission → scheduler → session → plan
//! executor → shard engine → kernel launches → pool transfers; this
//! crate is the one place all of those layers report to, so a single
//! artifact can show where a query's time went. Three pieces:
//!
//! * [`trace`] — span tracing on **both clocks** (host wall time and the
//!   simulator's modeled/virtual time), recorded into per-thread ring
//!   buffers, exported as Chrome trace-event JSON
//!   ([`trace::chrome_trace`], loadable in `chrome://tracing`) or a text
//!   flame summary ([`trace::flame_summary`]). Off by default; the
//!   disabled path is a single relaxed [`std::sync::atomic::AtomicBool`]
//!   load per call site (the `kernel_hotpath` bench asserts ≤ 2%
//!   overhead on the join hot path).
//! * [`metrics`] — a sharded registry of counters, gauges, and
//!   fixed-bucket histograms with JSON and Prometheus-text exposition.
//!   Streaming replacements for sort-the-sample statistics; snapshots
//!   merge associatively.
//! * [`audit`] — cost-model calibration audits: every projected cost
//!   (admission's `projected_cost`, the shard chooser's
//!   `modeled_makespan`) paired with its measured outcome and exported
//!   as a calibration-error histogram, so EWMA drift is visible instead
//!   of silent.
//!
//! [`json`] is the shared JSON writer/parser underneath both exporters —
//! and underneath `sj_serve`'s metrics snapshot and `sj_bench`'s result
//! tables, which previously each hand-rolled their own.

pub mod audit;
pub mod json;
pub mod metrics;
pub mod trace;

pub use json::Json;
pub use metrics::{
    exponential_buckets, latency_buckets, registry, rel_error_buckets, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricSnapshot, MetricValue, Registry,
};
pub use trace::{
    chrome_trace, drain, flame_summary, set_enabled, set_modeled_cursor, validate, LabelValue,
    Span, SpanGuard, SpanRecord, TraceStats,
};
