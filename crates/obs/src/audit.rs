//! Cost-model calibration audit: every projection paired with its
//! measured outcome.
//!
//! The repo runs on *models* — admission control trusts
//! `SelfJoinSession::projected_cost`, the shard-count chooser trusts
//! `modeled_makespan` — and both are EWMA-calibrated, which means they
//! can drift silently. This module makes the drift a metric: each
//! instrumented site calls [`record`] with its projection and the
//! measured outcome, and the signed relative error lands in a
//! [`rel_error_buckets`]-shaped histogram per model, alongside magnitude
//! and sample counters. [`report`] summarizes one model;
//! [`reports`] lists every model seen since the last registry reset.

use crate::metrics::{registry, rel_error_buckets, MetricValue};

/// Sample-count metric name (`{model=...}`).
pub const SAMPLES: &str = "sj_cost_audit_samples_total";
/// Signed relative-error histogram name: `(projected − measured) /
/// measured`, positive = over-projection.
pub const REL_ERROR: &str = "sj_cost_audit_rel_error";
/// Absolute relative-error histogram name (magnitude of miscalibration).
pub const ABS_REL_ERROR: &str = "sj_cost_audit_abs_rel_error";
/// Counter of samples dropped for a non-positive or non-finite
/// measurement.
pub const INVALID: &str = "sj_cost_audit_invalid_total";
/// Gauge accumulating **unclamped** `ln(projected / measured)` per model.
/// The ±8 histogram clamp saturates on grossly miscalibrated models
/// (the shard chooser's pre-recalibration eval-cost sat 20–80× over);
/// the log-ratio sum keeps the true magnitude, and its mean is exactly
/// the geometric-mean drift a closed-loop fit needs to invert.
pub const LOG_RATIO_SUM: &str = "sj_cost_audit_log_ratio_sum";
/// Counter of samples folded into [`LOG_RATIO_SUM`] (both sides must be
/// positive for the log to exist).
pub const LOG_SAMPLES: &str = "sj_cost_audit_log_samples_total";

/// Relative errors are clamped to ±this before observation (matches the
/// [`rel_error_buckets`] range); a model whose mean sits at the clamp is
/// miscalibrated by *at least* 8× — see [`AuditReport::summary`].
pub const CLAMP: f64 = 8.0;

/// Records one projection/outcome pair for `model` (e.g. `"admission"`,
/// `"shard_chooser"`), both in seconds. Non-finite or non-positive
/// measurements are counted as invalid and otherwise dropped; relative
/// errors are clamped to the histogram range (±8×).
pub fn record(model: &'static str, projected_secs: f64, measured_secs: f64) {
    let labels = [("model", model)];
    if !(measured_secs.is_finite() && measured_secs > 0.0 && projected_secs.is_finite()) {
        registry().counter(INVALID, &labels).inc();
        return;
    }
    let rel = ((projected_secs - measured_secs) / measured_secs).clamp(-CLAMP, CLAMP);
    registry().counter(SAMPLES, &labels).inc();
    registry()
        .histogram(REL_ERROR, &labels, &rel_error_buckets())
        .observe(rel);
    registry()
        .histogram(ABS_REL_ERROR, &labels, &rel_error_buckets())
        .observe(rel.abs());
    if projected_secs > 0.0 {
        registry()
            .gauge(LOG_RATIO_SUM, &labels)
            .add((projected_secs / measured_secs).ln());
        registry().counter(LOG_SAMPLES, &labels).inc();
    }
}

/// Summary of one model's calibration error.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// The model label.
    pub model: String,
    /// Audited samples.
    pub count: u64,
    /// Mean signed relative error — sustained sign is drift.
    pub mean_rel_error: f64,
    /// Mean |relative error| — overall miscalibration magnitude.
    pub mean_abs_rel_error: f64,
    /// Median |relative error| (streaming estimate from the histogram).
    pub p50_abs_rel_error: f64,
    /// 95th-percentile |relative error|.
    pub p95_abs_rel_error: f64,
    /// Mean **unclamped** `ln(projected / measured)` — the log of the
    /// geometric-mean projection drift. Unlike the histogram means this
    /// never saturates, so a 50× over-projection reads as `ln 50 ≈ 3.9`
    /// rather than pegging at the ±8 clamp. `0.0` when no sample had a
    /// positive projection.
    pub mean_log_ratio: f64,
}

impl AuditReport {
    /// The multiplicative correction a closed-loop fit should apply to
    /// the model's projections to zero the geometric-mean drift:
    /// `exp(−mean_log_ratio)`. A model that over-projects 20× returns
    /// ≈ 0.05; a calibrated model returns ≈ 1. This is exactly the fixed
    /// point `sj_shard`'s eval-correction EWMA converges to, so the
    /// audit can both *derive* a re-pin (as done for the traced-eval
    /// overhead) and *verify* the runtime loop landed where it should.
    pub fn correction(&self) -> f64 {
        (-self.mean_log_ratio).exp()
    }

    /// Geometric mean of `projected / measured`: `exp(mean_log_ratio)`.
    /// The unclamped counterpart of `mean_rel_error + 1`.
    pub fn geo_mean_ratio(&self) -> f64 {
        self.mean_log_ratio.exp()
    }
    /// One-line human rendering for bench output. A mean sitting at the
    /// ±800% clamp is rendered with a `>=`/`<=` prefix: every sample
    /// saturated the histogram range, so the true error is at least that
    /// large (the shard chooser's analytical eval-cost model is a known
    /// example — see the README's observability section).
    pub fn summary(&self) -> String {
        let mean = self.mean_rel_error * 100.0;
        let mean = if self.mean_rel_error >= CLAMP {
            format!(">=+{mean:.1}%")
        } else if self.mean_rel_error <= -CLAMP {
            format!("<={mean:.1}%")
        } else {
            format!("{mean:+.1}%")
        };
        format!(
            "cost audit [{}]: n={} mean_err={} |err| mean={:.1}% p50={:.1}% p95={:.1}% geo=x{:.3}",
            self.model,
            self.count,
            mean,
            self.mean_abs_rel_error * 100.0,
            self.p50_abs_rel_error * 100.0,
            self.p95_abs_rel_error * 100.0,
            self.geo_mean_ratio(),
        )
    }
}

/// The audit summary for one model, if it has recorded samples.
pub fn report(model: &str) -> Option<AuditReport> {
    reports().into_iter().find(|r| r.model == model)
}

/// Audit summaries for every model with samples, sorted by model name.
pub fn reports() -> Vec<AuditReport> {
    let snap = registry().snapshot();
    let model_of = |labels: &[(String, String)]| -> Option<String> {
        labels
            .iter()
            .find(|(k, _)| k == "model")
            .map(|(_, v)| v.clone())
    };
    let mut out = Vec::new();
    for m in &snap {
        if m.name != REL_ERROR {
            continue;
        }
        let Some(model) = model_of(&m.labels) else {
            continue;
        };
        let MetricValue::Histogram(signed) = &m.value else {
            continue;
        };
        let abs = snap.iter().find_map(|a| {
            if a.name == ABS_REL_ERROR && model_of(&a.labels).as_deref() == Some(&model) {
                match &a.value {
                    MetricValue::Histogram(h) => Some(h.clone()),
                    _ => None,
                }
            } else {
                None
            }
        });
        let Some(abs) = abs else { continue };
        if signed.count == 0 {
            continue;
        }
        let find_val = |name: &str| {
            snap.iter().find_map(|g| {
                if g.name == name && model_of(&g.labels).as_deref() == Some(&model) {
                    match &g.value {
                        MetricValue::Gauge(v) => Some(*v),
                        MetricValue::Counter(c) => Some(*c as f64),
                        _ => None,
                    }
                } else {
                    None
                }
            })
        };
        let log_sum = find_val(LOG_RATIO_SUM).unwrap_or(0.0);
        let log_n = find_val(LOG_SAMPLES).unwrap_or(0.0);
        let mean_log_ratio = if log_n > 0.0 { log_sum / log_n } else { 0.0 };
        out.push(AuditReport {
            model,
            count: signed.count,
            mean_rel_error: signed.mean(),
            mean_abs_rel_error: abs.mean(),
            p50_abs_rel_error: abs.quantile(0.50),
            p95_abs_rel_error: abs.quantile(0.95),
            mean_log_ratio,
        });
    }
    out.sort_by(|a, b| a.model.cmp(&b.model));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        // The global registry is shared across tests; use a model name
        // unique to this test.
        record("audit_test_model", 1.2, 1.0);
        record("audit_test_model", 0.9, 1.0);
        record("audit_test_model", 2.0, 1.0);
        record("audit_test_model", 1.0, 0.0); // invalid, dropped
        let r = report("audit_test_model").expect("samples recorded");
        assert_eq!(r.count, 3);
        // Signed errors: +0.2, -0.1, +1.0 → mean ≈ 0.3667.
        assert!((r.mean_rel_error - 0.36666).abs() < 1e-3, "{r:?}");
        assert!(r.mean_abs_rel_error > 0.4);
        assert!(r.p95_abs_rel_error >= r.p50_abs_rel_error);
        let invalid = registry()
            .counter(INVALID, &[("model", "audit_test_model")])
            .get();
        assert_eq!(invalid, 1);
        assert!(report("audit_no_such_model").is_none());
    }

    #[test]
    fn saturated_mean_renders_as_lower_bound() {
        // 100x over-projection pegs the ±8 clamp on every sample.
        record("audit_test_clamp", 100.0, 1.0);
        record("audit_test_clamp", 200.0, 2.0);
        let r = report("audit_test_clamp").expect("samples recorded");
        assert_eq!(r.count, 2);
        assert!((r.mean_rel_error - CLAMP).abs() < 1e-9);
        assert!(
            r.summary().contains("mean_err=>=+800.0%"),
            "{}",
            r.summary()
        );
        // An unsaturated mean keeps the plain signed rendering.
        record("audit_test_noclamp", 1.5, 1.0);
        let r = report("audit_test_noclamp").unwrap();
        assert!(r.summary().contains("mean_err=+50.0%"), "{}", r.summary());
    }

    #[test]
    fn log_ratio_survives_the_clamp() {
        // A 20x over-projection saturates the rel-error histograms, but
        // the unclamped log track keeps the true magnitude: the derived
        // correction is the multiplier that would zero the drift.
        for _ in 0..4 {
            record("audit_test_log", 20.0, 1.0);
        }
        let r = report("audit_test_log").expect("samples recorded");
        assert!((r.mean_rel_error - CLAMP).abs() < 1e-9); // clamped
        assert!((r.mean_log_ratio - 20.0f64.ln()).abs() < 1e-9);
        assert!((r.geo_mean_ratio() - 20.0).abs() < 1e-6);
        assert!((r.correction() - 0.05).abs() < 1e-6);
        assert!(r.summary().contains("geo=x20.000"), "{}", r.summary());

        // Mixed over/under projections cancel geometrically: 4x over then
        // 4x under is calibrated on geometric average.
        record("audit_test_log_mixed", 4.0, 1.0);
        record("audit_test_log_mixed", 1.0, 4.0);
        let r = report("audit_test_log_mixed").unwrap();
        assert!(r.mean_log_ratio.abs() < 1e-9);
        assert!((r.correction() - 1.0).abs() < 1e-9);

        // Non-positive projections contribute to the histograms (rel =
        // -1) but are excluded from the log track rather than poisoning
        // it with -inf.
        record("audit_test_log_zero", 0.0, 1.0);
        record("audit_test_log_zero", 2.0, 1.0);
        let r = report("audit_test_log_zero").unwrap();
        assert_eq!(r.count, 2);
        assert!((r.mean_log_ratio - 2.0f64.ln()).abs() < 1e-9);
    }
}
