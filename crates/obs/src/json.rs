//! The workspace's one JSON emitter (and a minimal reader).
//!
//! Before this module existed, `sj_serve`'s metrics snapshot and
//! `sj_bench`'s result tables each hand-formatted JSON with their own
//! escaping and number rules. Both now build a [`Json`] tree and render
//! it here, and the trace exporter ([`crate::trace::chrome_trace`]) uses
//! the same writer — one place for escaping, number formatting, and
//! layout.
//!
//! [`parse`] is the matching reader: a small strict recursive-descent
//! parser, enough to validate that an emitted artifact (a Chrome trace, a
//! bench table) round-trips. It is a validator, not a general-purpose
//! deserializer — numbers come back as `f64`.

use std::fmt::Write as _;

/// A JSON value tree. Construct with the `From` impls (`"x".into()`,
/// `3u64.into()`, …) plus [`Json::obj`] / [`Json::arr`], render with
/// [`Json::render`] / [`Json::render_pretty`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integer, rendered exactly (no float round-trip).
    Int(i64),
    /// Unsigned integer, rendered exactly.
    UInt(u64),
    /// Finite floats render as shortest round-trip; NaN/∞ render `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Fields render in insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be grown with [`Json::field`].
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// An empty array, to be grown with [`Json::push`].
    pub fn arr() -> Self {
        Json::Arr(Vec::new())
    }

    /// Appends a field (object values only) and returns `self` for
    /// chaining.
    pub fn field(mut self, name: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((name.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Appends an element (array values only) and returns `self`.
    pub fn push(mut self, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Arr(items) => items.push(value.into()),
            _ => panic!("Json::push on a non-array"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering with a trailing newline — the layout
    /// the `bench_results/` artifacts use.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Writes `s` as a quoted JSON string with standard escapes.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a float: integral values without a fraction, non-finite values
/// as `null` (JSON has no NaN/∞).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parses a JSON document. Strict (no trailing garbage, no comments);
/// numbers become [`Json::Num`].
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {}", *pos)),
                };
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        b'f' if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        b'n' if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        }
        c => Err(format!("unexpected byte '{}' at {}", c as char, *pos)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogates (emitted only by other writers; ours
                        // never splits) decode as the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    e => return Err(format!("bad escape '\\{}'", e as char)),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: find the full scalar in the source.
                let start = *pos - 1;
                let s = std::str::from_utf8(&bytes[start..])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos = start + ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let doc = Json::obj()
            .field("name", "serve_slo")
            .field("count", 42u64)
            .field("neg", -3i64)
            .field("ratio", 0.25)
            .field("whole", 2.0)
            .field("missing", Json::Null)
            .field("ok", true)
            .field("tags", Json::arr().push("a\"b").push("c\\d").push(1.5));
        let text = doc.render_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("name").unwrap().as_str(), Some("serve_slo"));
        assert_eq!(back.get("count").unwrap().as_f64(), Some(42.0));
        assert_eq!(back.get("neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(back.get("whole").unwrap().as_f64(), Some(2.0));
        assert_eq!(back.get("missing"), Some(&Json::Null));
        let tags = back.get("tags").unwrap().items();
        assert_eq!(tags[0].as_str(), Some("a\"b"));
        assert_eq!(tags[1].as_str(), Some("c\\d"));
    }

    #[test]
    fn escapes_control_and_unicode() {
        let s = Json::Str("tab\there\nε=0.5".to_string()).render();
        assert_eq!(s, "\"tab\\there\\nε=0.5\"");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("tab\there\nε=0.5"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\"}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_render_exactly() {
        let big = u64::MAX - 1;
        let text = Json::UInt(big).render();
        assert_eq!(text, format!("{big}"));
        assert_eq!(Json::Int(i64::MIN).render(), format!("{}", i64::MIN));
    }
}
