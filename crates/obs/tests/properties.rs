//! Property tests for the observability primitives: histogram merge
//! associativity, bucket-boundary correctness, and span-tree
//! well-formedness under arbitrary nesting.

use proptest::collection::vec;
use proptest::prelude::*;
use sj_obs::metrics::{exponential_buckets, HistogramSnapshot, Registry};
use sj_obs::trace::{self, Span};

/// Reference bucketing: index of the first bound ≥ v (bounds inclusive),
/// overflow bucket past the end.
fn reference_bucket(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

fn observe_all(bounds: &[f64], values: &[f64]) -> HistogramSnapshot {
    let r = Registry::new();
    let h = r.histogram("h", &[], bounds);
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn histogram_buckets_match_reference(values in vec(0.0f64..20.0, 0..200)) {
        let bounds = exponential_buckets(0.01, 2.0, 12); // 0.01 .. ~20.5
        let snap = observe_all(&bounds, &values);
        let mut expect = vec![0u64; bounds.len() + 1];
        for &v in &values {
            expect[reference_bucket(&bounds, v)] += 1;
        }
        prop_assert_eq!(&snap.counts, &expect);
        prop_assert_eq!(snap.count, values.len() as u64);
        let total: u64 = snap.counts.iter().sum();
        prop_assert_eq!(total, snap.count, "every observation lands in exactly one bucket");
        let sum: f64 = values.iter().sum();
        prop_assert!((snap.sum - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in vec(0.0f64..10.0, 0..100),
        b in vec(0.0f64..10.0, 0..100),
        c in vec(0.0f64..10.0, 0..100),
    ) {
        let bounds = exponential_buckets(0.05, 1.7, 10);
        let (ha, hb, hc) = (
            observe_all(&bounds, &a),
            observe_all(&bounds, &b),
            observe_all(&bounds, &c),
        );
        let left = ha.merge(&hb).merge(&hc);
        let right = ha.merge(&hb.merge(&hc));
        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert_eq!(left.count, right.count);
        prop_assert!((left.sum - right.sum).abs() <= 1e-9 * (1.0 + left.sum.abs()));
        let ab = ha.merge(&hb);
        let ba = hb.merge(&ha);
        prop_assert_eq!(&ab.counts, &ba.counts);
        // The merged histogram equals observing the concatenated stream.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left.counts, &observe_all(&bounds, &all).counts);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in vec(0.0f64..50.0, 1..150),
    ) {
        let bounds = exponential_buckets(0.01, 2.0, 14);
        let snap = observe_all(&bounds, &values);
        let mut prev = 0.0f64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = snap.quantile(q);
            prop_assert!(v >= prev - 1e-12, "quantiles must be monotone");
            prop_assert!(v <= *bounds.last().unwrap() + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn span_trees_stay_well_formed(ops in vec(0u8..3, 1..120)) {
        // Serialize: tracing state is process-global.
        let _guard = TRACE_GATE.lock().unwrap();
        trace::set_enabled(true);
        trace::clear();
        // Interpret the op stream as push/pop/leaf against a guard stack
        // — arbitrary nesting shapes, always balanced by scope exit.
        {
            let mut stack: Vec<sj_obs::SpanGuard> = Vec::new();
            for op in &ops {
                match op {
                    0 => stack.push(Span::enter("push")),
                    1 => {
                        stack.pop();
                    }
                    _ => {
                        let mut leaf = Span::enter("leaf");
                        leaf.label("k", 1u64);
                    }
                }
            }
        }
        trace::set_enabled(false);
        let records = trace::drain();
        let stats = trace::validate(&records).expect("arbitrary nesting stays well-formed");
        prop_assert_eq!(stats.spans, records.len());
        prop_assert!(stats.spans >= ops.iter().filter(|&&o| o == 2).count());
        // Every exported trace event keeps a live parent: re-check via
        // the Chrome export round-trip.
        let doc = sj_obs::json::parse(&trace::chrome_trace(&records)).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        let ids: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(sj_obs::Json::as_str) == Some("X"))
            .map(|e| e.get("args").unwrap().get("id").unwrap().as_f64().unwrap())
            .collect();
        for e in events {
            if e.get("ph").and_then(sj_obs::Json::as_str) != Some("X") {
                continue;
            }
            let parent = e.get("args").unwrap().get("parent").unwrap().as_f64().unwrap();
            prop_assert!(
                parent == 0.0 || ids.contains(&parent),
                "exported event has dead parent {}", parent
            );
        }
    }
}

static TRACE_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
