//! The admission controller: admit, delay, or reject.
//!
//! The controller never touches a device. Its inputs are cheap reads —
//! the session's [`ProjectedCost`] (cached result-size estimate × the
//! calibrated batching cost model), the scheduler's projected queue wait,
//! and the pool's [`sim_gpu::PoolPressure`] — and its output is a
//! [`Decision`] made against the configured latency SLO:
//!
//! * projected completion within the SLO → **admit**;
//! * within `slo × delay_factor` → **admit, flagged delayed** (the query
//!   runs but the operator sees the SLO margin eroding);
//! * beyond that, or past the queue-depth bound, or past the tenant's
//!   in-flight cap → **reject** with a `retry_after` hint sized to when
//!   the backlog is projected to have drained enough.
//!
//! Uncalibrated queries (a cold session that has never observed a build
//! or a result size) are always admitted: rejecting on a guess would be
//! worse than observing once and calibrating.

use grid_join::ProjectedCost;
use sim_gpu::PoolPressure;
use std::time::Duration;

/// Admission-controller knobs (see the [module docs](self)).
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Master switch: `false` admits everything (the collapse baseline
    /// the `serve_slo` bench measures against).
    pub enabled: bool,
    /// Target latency SLO: admission aims to keep every admitted query's
    /// projected completion (queue wait + modeled cost) within it.
    pub slo: Duration,
    /// Projected completions in `(slo, slo × delay_factor]` are admitted
    /// but flagged delayed. Must be ≥ 1.
    pub delay_factor: f64,
    /// Per-tenant cap on in-flight queries (queued + running); the
    /// fair-share bound a flooding tenant hits first.
    pub tenant_max_inflight: usize,
    /// Hard bound on the pool's queued-work depth
    /// ([`PoolPressure::queued`]), a backstop against unbounded queues
    /// when cost projections run low.
    pub max_queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            slo: Duration::from_millis(250),
            delay_factor: 1.5,
            tenant_max_inflight: 64,
            max_queue_depth: 4096,
        }
    }
}

/// The controller's verdict on one submitted query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Run it. `delayed` marks admissions whose projected completion
    /// exceeds the SLO but stayed within the delay window.
    Admit {
        /// Projected to finish past the SLO (but within the window).
        delayed: bool,
    },
    /// Shed it; the client should retry no sooner than `retry_after`.
    Reject {
        /// Projected time until enough backlog has drained.
        retry_after: Duration,
    },
}

/// Decides one query's fate. `projected_wait` is the scheduler's estimate
/// of time-to-dispatch at the query's arrival; `tenant_inflight` the
/// submitting tenant's queued + running count; `pressure` the pool's load
/// picture at submission.
pub fn decide(
    cfg: &AdmissionConfig,
    projected_wait: Duration,
    cost: &ProjectedCost,
    tenant_inflight: usize,
    pressure: &PoolPressure,
) -> Decision {
    if !cfg.enabled {
        return Decision::Admit { delayed: false };
    }
    let retry_hint = || {
        let over = (projected_wait + cost.modeled).saturating_sub(cfg.slo);
        // Capacity-aware drain estimate: the queued backlog spread over
        // the *healthy* devices, each job costing about this query's
        // modeled time. A hint sized to one query's cost invites an
        // immediate re-reject when the pool is deep in backlog or
        // running degraded; scaling by the projected drain rate tells
        // the client when capacity is actually expected to exist.
        let drain = cost
            .modeled
            .mul_f64((pressure.queued as f64 + 1.0) / pressure.healthy.max(1) as f64);
        over.max(drain).max(cost.modeled)
    };
    if tenant_inflight >= cfg.tenant_max_inflight {
        return Decision::Reject {
            retry_after: retry_hint(),
        };
    }
    if pressure.queued >= cfg.max_queue_depth {
        return Decision::Reject {
            retry_after: retry_hint(),
        };
    }
    if !cost.calibrated {
        // Cold model: admit to observe. The first few queries calibrate
        // the per-session cost coefficients everything else relies on.
        return Decision::Admit { delayed: false };
    }
    let projected = projected_wait + cost.modeled;
    if projected <= cfg.slo {
        Decision::Admit { delayed: false }
    } else if projected.as_secs_f64() <= cfg.slo.as_secs_f64() * cfg.delay_factor {
        Decision::Admit { delayed: true }
    } else {
        Decision::Reject {
            retry_after: retry_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(ms: u64, calibrated: bool) -> ProjectedCost {
        ProjectedCost {
            modeled: Duration::from_millis(ms),
            expected_pairs: 1000,
            needs_build: false,
            calibrated,
        }
    }

    fn idle_pressure() -> PoolPressure {
        PoolPressure {
            active: vec![0, 0],
            queued: 0,
            healthy: 2,
        }
    }

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            slo: Duration::from_millis(100),
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn within_slo_admits() {
        let d = decide(
            &cfg(),
            Duration::from_millis(50),
            &cost(40, true),
            0,
            &idle_pressure(),
        );
        assert_eq!(d, Decision::Admit { delayed: false });
    }

    #[test]
    fn delay_window_flags_delayed() {
        let d = decide(
            &cfg(),
            Duration::from_millis(90),
            &cost(40, true),
            0,
            &idle_pressure(),
        );
        assert_eq!(d, Decision::Admit { delayed: true });
    }

    #[test]
    fn beyond_window_rejects_with_retry_hint() {
        let d = decide(
            &cfg(),
            Duration::from_millis(400),
            &cost(40, true),
            0,
            &idle_pressure(),
        );
        match d {
            Decision::Reject { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(340));
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn uncalibrated_cost_always_admits() {
        let d = decide(
            &cfg(),
            Duration::from_secs(10),
            &cost(40, false),
            0,
            &idle_pressure(),
        );
        assert_eq!(d, Decision::Admit { delayed: false });
    }

    #[test]
    fn tenant_cap_rejects_even_when_idle() {
        let mut c = cfg();
        c.tenant_max_inflight = 2;
        let d = decide(&c, Duration::ZERO, &cost(1, true), 2, &idle_pressure());
        assert!(matches!(d, Decision::Reject { .. }));
    }

    #[test]
    fn queue_depth_bound_rejects() {
        let mut c = cfg();
        c.max_queue_depth = 3;
        let deep = PoolPressure {
            active: vec![1, 1],
            queued: 3,
            healthy: 2,
        };
        let d = decide(&c, Duration::ZERO, &cost(1, true), 0, &deep);
        assert!(matches!(d, Decision::Reject { .. }));
    }

    #[test]
    fn retry_hint_scales_with_backlog_and_degraded_capacity() {
        let mut c = cfg();
        c.max_queue_depth = 4;
        // 16 queued jobs draining through 1 healthy device of 2: the
        // hint must cover the projected drain, not one query's cost.
        let deep = PoolPressure {
            active: vec![4, 0],
            queued: 16,
            healthy: 1,
        };
        let d = decide(&c, Duration::ZERO, &cost(10, true), 0, &deep);
        match d {
            Decision::Reject { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(170));
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // Same backlog with both devices healthy drains twice as fast.
        let d = decide(
            &c,
            Duration::ZERO,
            &cost(10, true),
            0,
            &PoolPressure { healthy: 2, ..deep },
        );
        match d {
            Decision::Reject { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(85));
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let c = AdmissionConfig {
            enabled: false,
            ..cfg()
        };
        let deep = PoolPressure {
            active: vec![9, 9],
            queued: 10_000,
            healthy: 2,
        };
        let d = decide(&c, Duration::from_secs(60), &cost(500, true), 999, &deep);
        assert_eq!(d, Decision::Admit { delayed: false });
    }
}
