//! `sj-serve` — the multi-tenant query service over resident self-join
//! sessions.
//!
//! The paper's pipeline answers one query; PR 4's [`SelfJoinSession`]
//! answers a *stream* of them against a pinned dataset. This crate is the
//! front door that turns those sessions into a service: many tenants
//! submitting concurrent queries against many datasets, executed by a
//! worker thread per pool device, with three control loops between the
//! submit call and the kernels:
//!
//! 1. **Admission** ([`admission`]) — every query's projected cost comes
//!    from its session's cached result-size estimates plus the calibrated
//!    batching cost model ([`grid_join::ProjectedCost`]), and the pool's
//!    backlog from [`sim_gpu::DevicePool::pressure`] and the scheduler's
//!    per-device busy horizon. Queries whose projected completion would
//!    break the configured latency SLO are *delayed* (admitted past the
//!    SLO up to a configurable factor) or *rejected* with
//!    [`ServeError::Overloaded`] carrying a `retry_after` hint.
//! 2. **Scheduling** ([`scheduler`]) — admitted queries wait in a
//!    deadline-ordered queue with per-tenant fair-share caps; each device
//!    worker picks the earliest-deadline query whose tenant is under its
//!    cap, so one flooding tenant cannot starve the rest.
//! 3. **Eviction** — sessions register every device snapshot with the
//!    pool's [`sim_gpu::MemoryLedger`]; with
//!    [`ServiceConfig::snapshot_budget`] set, uploading a new snapshot
//!    first evicts least-recently-used ones (any session's), and an
//!    evicted session transparently re-uploads on its next touch. Queries
//!    stay pair-for-pair exact throughout — eviction changes *where* the
//!    index lives, never what it answers.
//!
//! Latency is accounted on the simulator's virtual clock: a query's
//! latency is queue wait plus modeled response time, with per-device busy
//! horizons advancing as workers complete jobs. [`ServiceMetrics`]
//! exports per-tenant QPS, admit/delay/reject counts and latency
//! percentiles as JSON.

pub mod admission;
pub mod metrics;
pub mod scheduler;
pub mod service;

pub use admission::{AdmissionConfig, Decision};
pub use metrics::{LatencyStats, ServiceMetrics, TenantMetrics};
pub use service::{
    DatasetId, QueryRequest, QueryTicket, SelfJoinService, ServeError, ServeOutput, ServiceConfig,
};

// Re-export the handful of upstream types that appear in this crate's
// public signatures.
pub use grid_join::{ProjectedCost, SelfJoinSession, SessionConfig};
pub use sim_gpu::DevicePool;
