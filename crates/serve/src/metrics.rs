//! Service metrics: per-tenant traffic counters and latency percentiles,
//! exported as JSON.
//!
//! Latencies are virtual (modeled) seconds — queue wait plus modeled
//! response time — the same clock the admission controller's SLO is
//! written against, so "p99 under the SLO" in a report means exactly what
//! the controller promised.

use sj_obs::Json;
use std::collections::HashMap;

/// Order statistics of one latency population.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Completed-query count the stats are over.
    pub count: usize,
    /// Median latency in seconds.
    pub p50: f64,
    /// 95th percentile in seconds.
    pub p95: f64,
    /// 99th percentile in seconds.
    pub p99: f64,
    /// Mean latency in seconds.
    pub mean: f64,
    /// Worst observed latency in seconds.
    pub max: f64,
}

impl LatencyStats {
    /// Computes stats from an unsorted latency sample.
    ///
    /// Percentiles use the **nearest-rank** convention (see
    /// [`percentile`]): `pXX` is the smallest observed sample with at
    /// least XX% of the population at or below it — always a real
    /// observation, never an interpolation. Small samples therefore
    /// collapse by design: with `n = 1` every percentile is the lone
    /// sample, and with `n = 2` the median is the *lower* sample
    /// (`⌈0.5·2⌉ = 1`) while p95/p99 are the upper one. Non-finite
    /// samples sort by IEEE total order (NaN last) instead of
    /// panicking.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            count: sorted.len(),
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile over a sorted sample: the element at 1-based
/// rank `⌈q·n⌉`, clamped to `[1, n]` — so `q = 0` yields the minimum
/// rather than indexing below the sample, and float rounding at `q = 1`
/// cannot run past the end.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Cap on retained latency samples per tenant: when a tenant's history
/// fills it, the sample is uniformly thinned (every other observation
/// kept), so a long-running service stays bounded in memory while the
/// percentiles remain an unbiased order-statistic estimate of the full
/// stream.
const MAX_LATENCY_SAMPLES: usize = 1 << 16;

/// Raw per-tenant counters accumulated by the service.
#[derive(Clone, Debug, Default)]
pub(crate) struct TenantCounters {
    pub submitted: u64,
    pub admitted: u64,
    pub delayed: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    /// Uniformly-thinned virtual latencies of completed queries, in
    /// seconds (see [`MAX_LATENCY_SAMPLES`]). Record through
    /// [`Self::record_latency`].
    pub latencies: Vec<f64>,
    /// Earliest virtual arrival among admitted queries.
    pub first_arrival: Option<f64>,
    /// Latest virtual completion.
    pub last_completion: f64,
    /// Keep one of every `2^thinning` observations.
    thinning: u32,
    /// Observations skipped since the last kept one.
    skip: u64,
}

impl TenantCounters {
    /// Records one completed-query latency, thinning the retained sample
    /// once it reaches [`MAX_LATENCY_SAMPLES`].
    pub fn record_latency(&mut self, latency: f64) {
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        self.latencies.push(latency);
        if self.latencies.len() >= MAX_LATENCY_SAMPLES {
            let mut keep = 0;
            for i in (0..self.latencies.len()).step_by(2) {
                self.latencies[keep] = self.latencies[i];
                keep += 1;
            }
            self.latencies.truncate(keep);
            self.thinning += 1;
        }
        self.skip = (1u64 << self.thinning.min(63)) - 1;
    }
    pub fn snapshot(&self, tenant: &str) -> TenantMetrics {
        let span = match self.first_arrival {
            Some(first) => (self.last_completion - first).max(0.0),
            None => 0.0,
        };
        TenantMetrics {
            tenant: tenant.to_string(),
            submitted: self.submitted,
            admitted: self.admitted,
            delayed: self.delayed,
            rejected: self.rejected,
            completed: self.completed,
            failed: self.failed,
            qps: if span > 0.0 {
                self.completed as f64 / span
            } else {
                0.0
            },
            latency: LatencyStats::from_samples(&self.latencies),
        }
    }

    pub fn merge(&mut self, other: &TenantCounters) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.delayed += other.delayed;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.latencies.extend_from_slice(&other.latencies);
        self.first_arrival = match (self.first_arrival, other.first_arrival) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_completion = self.last_completion.max(other.last_completion);
    }
}

/// One tenant's (or the whole service's) traffic summary.
#[derive(Clone, Debug)]
pub struct TenantMetrics {
    /// Tenant name (`"_total"` for the service-wide aggregate).
    pub tenant: String,
    /// Queries submitted (admitted + rejected).
    pub submitted: u64,
    /// Queries admitted (including delayed admissions).
    pub admitted: u64,
    /// Admissions flagged delayed (projected past the SLO).
    pub delayed: u64,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Queries completed successfully.
    pub completed: u64,
    /// Queries that failed during execution.
    pub failed: u64,
    /// Completed queries per virtual second over the tenant's active span.
    pub qps: f64,
    /// Virtual-latency order statistics of completed queries.
    pub latency: LatencyStats,
}

/// Full service snapshot, one [`TenantMetrics`] per tenant plus the
/// aggregate and the memory-pressure counters.
#[derive(Clone, Debug)]
pub struct ServiceMetrics {
    /// Per-tenant summaries, sorted by tenant name.
    pub tenants: Vec<TenantMetrics>,
    /// Service-wide aggregate across all tenants.
    pub total: TenantMetrics,
    /// LRU snapshot evictions performed by the pool ledger (plus manual
    /// session evictions) since the last metrics reset.
    pub snapshot_evictions: u64,
    /// Snapshot re-uploads those evictions later caused.
    pub snapshot_reuploads: u64,
    /// Bytes of resident snapshots currently registered in the ledger.
    pub resident_bytes: usize,
    /// The configured snapshot budget, if any.
    pub snapshot_budget: Option<usize>,
    /// The admission SLO in seconds (for report readers).
    pub slo_secs: f64,
}

impl ServiceMetrics {
    pub(crate) fn build(
        counters: &HashMap<String, TenantCounters>,
        snapshot_evictions: u64,
        snapshot_reuploads: u64,
        resident_bytes: usize,
        snapshot_budget: Option<usize>,
        slo_secs: f64,
    ) -> Self {
        let mut names: Vec<&String> = counters.keys().collect();
        names.sort();
        let mut total = TenantCounters::default();
        let tenants = names
            .iter()
            .map(|name| {
                let c = &counters[*name];
                total.merge(c);
                c.snapshot(name)
            })
            .collect();
        Self {
            tenants,
            total: total.snapshot("_total"),
            snapshot_evictions,
            snapshot_reuploads,
            resident_bytes,
            snapshot_budget,
            slo_secs,
        }
    }

    /// Serializes the snapshot through the workspace's shared JSON
    /// writer ([`sj_obs::Json`]) — the same emitter the trace exporter
    /// and bench tables use, so escaping and number formatting match.
    pub fn to_json(&self) -> String {
        let mut tenants = Json::arr();
        for t in &self.tenants {
            tenants = tenants.push(tenant_json(t));
        }
        Json::obj()
            .field("slo_secs", self.slo_secs)
            .field("snapshot_evictions", self.snapshot_evictions)
            .field("snapshot_reuploads", self.snapshot_reuploads)
            .field("resident_bytes", self.resident_bytes)
            .field("snapshot_budget", self.snapshot_budget)
            .field("total", tenant_json(&self.total))
            .field("tenants", tenants)
            .render_pretty()
    }
}

fn tenant_json(t: &TenantMetrics) -> Json {
    Json::obj()
        .field("tenant", t.tenant.as_str())
        .field("submitted", t.submitted)
        .field("admitted", t.admitted)
        .field("delayed", t.delayed)
        .field("rejected", t.rejected)
        .field("completed", t.completed)
        .field("failed", t.failed)
        .field("qps", t.qps)
        .field("p50_secs", t.latency.p50)
        .field("p95_secs", t.latency.p95)
        .field("p99_secs", t.latency.p99)
        .field("mean_secs", t.latency.mean)
        .field("max_secs", t.latency.max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.p50, 50.0);
        assert_eq!(stats.p95, 95.0);
        assert_eq!(stats.p99, 99.0);
        assert_eq!(stats.max, 100.0);
        assert_eq!(stats.count, 100);
        let one = LatencyStats::from_samples(&[7.0]);
        assert_eq!(one.p50, 7.0);
        assert_eq!(one.p99, 7.0);
        assert_eq!(one.max, 7.0);
        // n = 2 collapses per the documented convention: the median is
        // the lower sample (rank ⌈0.5·2⌉ = 1), the tails the upper.
        let two = LatencyStats::from_samples(&[9.0, 3.0]);
        assert_eq!(two.p50, 3.0);
        assert_eq!(two.p95, 9.0);
        assert_eq!(two.p99, 9.0);
        assert_eq!(two.max, 9.0);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn empty_samples_yield_zeroed_stats() {
        // A tenant that has admitted but completed nothing (or a fresh
        // service scraping metrics before traffic) must report zeros,
        // not NaNs or panics, all the way through the JSON path.
        let stats = LatencyStats::from_samples(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.p50, 0.0);
        assert_eq!(stats.p95, 0.0);
        assert_eq!(stats.p99, 0.0);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.max, 0.0);
        let snap = TenantCounters::default().snapshot("idle");
        assert_eq!(snap.latency, LatencyStats::default());
        assert_eq!(snap.qps, 0.0);
        let mut counters = HashMap::new();
        counters.insert("idle".to_string(), TenantCounters::default());
        let json = ServiceMetrics::build(&counters, 0, 0, 0, None, 0.25).to_json();
        assert!(json.contains("\"p99_secs\": 0"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn non_finite_samples_do_not_panic() {
        // NaN sorts last under IEEE total order: it poisons max (by
        // design — garbage in, visible garbage out) without aborting the
        // metrics endpoint.
        let stats = LatencyStats::from_samples(&[1.0, f64::NAN, 2.0]);
        assert_eq!(stats.p50, 2.0);
        assert!(stats.max.is_nan());
    }

    #[test]
    fn latency_samples_stay_bounded_and_representative() {
        let mut c = TenantCounters::default();
        let total = MAX_LATENCY_SAMPLES * 4;
        for i in 0..total {
            c.record_latency(i as f64);
        }
        assert!(c.latencies.len() < MAX_LATENCY_SAMPLES);
        assert!(c.latencies.len() >= MAX_LATENCY_SAMPLES / 4);
        // The thinned sample still spans the stream, so percentiles stay
        // order-statistic estimates of the whole population.
        let stats = LatencyStats::from_samples(&c.latencies);
        let span = total as f64;
        assert!((stats.p50 / span - 0.5).abs() < 0.05, "p50 {}", stats.p50);
        assert!((stats.p99 / span - 0.99).abs() < 0.05, "p99 {}", stats.p99);
    }

    #[test]
    fn qps_spans_arrival_to_completion() {
        let c = TenantCounters {
            completed: 10,
            first_arrival: Some(2.0),
            last_completion: 7.0,
            ..TenantCounters::default()
        };
        assert!((c.snapshot("t").qps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_snapshot_is_well_formed_enough() {
        let mut counters = HashMap::new();
        counters.insert(
            "alice".to_string(),
            TenantCounters {
                submitted: 5,
                admitted: 4,
                rejected: 1,
                completed: 4,
                latencies: vec![0.1, 0.2, 0.3, 0.4],
                first_arrival: Some(0.0),
                last_completion: 2.0,
                ..TenantCounters::default()
            },
        );
        let m = ServiceMetrics::build(&counters, 3, 2, 4096, Some(8192), 0.25);
        let json = m.to_json();
        assert!(json.contains("\"tenant\": \"alice\""));
        assert!(json.contains("\"snapshot_evictions\": 3"));
        assert!(json.contains("\"snapshot_budget\": 8192"));
        assert!(json.contains("\"_total\""));
        assert_eq!(m.total.completed, 4);
        assert_eq!(m.tenants.len(), 1);
        // The snapshot goes through the shared writer, so it must parse
        // back with the shared reader.
        let doc = sj_obs::json::parse(&json).expect("snapshot parses");
        assert_eq!(
            doc.get("total")
                .and_then(|t| t.get("completed"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(doc.get("tenants").map(|t| t.items().len()), Some(1));
    }
}
