//! The cost-aware scheduler: virtual placement at admission, fair-share
//! ordering across tenants, and the horizons the whole service keeps
//! time with.
//!
//! Everything here is bookkeeping in *modeled* seconds since the service
//! epoch. The key design decision is that a query's device and virtual
//! start are fixed **at admission** ([`SchedState::place`]): the job goes
//! to the device whose busy horizon ends soonest (LPT over the pool),
//! starting when both it and the device are ready. Admission therefore
//! reads exact horizons — there is no separately-estimated "queued
//! backlog" that drifts when real worker threads lag the virtual clock
//! (executor threads run joins in real milliseconds while virtual costs
//! are modeled microseconds; any estimate tied to real dispatch would
//! systematically mis-see the virtual queue). Workers later execute the
//! placed jobs and *correct* the horizon by the difference between the
//! measured modeled cost and the projection, so placement errors do not
//! accumulate.
//!
//! Fairness is weighted fair queueing over the same virtual clock: each
//! tenant chains service tags `tag = max(arrival, tenant's last tag) +
//! projected`, and a batch of simultaneously-submitted requests is
//! admitted and placed in ascending tag order ([`wfq_order`]) — a tenant
//! flooding one burst gets successively later tags, so a light tenant's
//! query overtakes the flood's backlog. Per-tenant in-flight caps (the
//! admission half of fair share) live in [`crate::admission`].

use crate::service::TicketShared;
use sim_gpu::QueuedWork;
use std::sync::{Condvar, Mutex};

/// One admitted query, placed on the virtual timeline and awaiting
/// execution.
pub(crate) struct Job {
    /// Monotonic admission sequence (execution-order tie-break).
    pub seq: u64,
    /// Interned tenant index.
    pub tenant: usize,
    /// Registered dataset index.
    pub dataset: usize,
    /// Query radius ε.
    pub epsilon: f64,
    /// Virtual arrival time (seconds since the service epoch).
    pub arrival: f64,
    /// Projected modeled cost in seconds (reserved at placement).
    pub projected: f64,
    /// Device the job was placed on.
    pub device: usize,
    /// Virtual start time assigned at placement.
    pub start: f64,
    /// Absolute virtual deadline — the bound fault retries are checked
    /// against (a retry that can no longer finish in time surfaces the
    /// fault instead of burning a device on a dead query).
    pub deadline: f64,
    /// Fault-retry count so far (0 on first placement).
    pub attempts: u32,
    /// Admitted past the SLO inside the delay window.
    pub delayed: bool,
    /// Completion slot the submitter waits on.
    pub ticket: TicketShared,
    /// Pool backlog token; dropped at dispatch.
    pub queued: Option<QueuedWork>,
    /// Root `serve.query` span id for this query's trace tree, 0 when
    /// tracing was disabled at admission. Workers parent their queue/run
    /// spans under it so the tree stays connected across threads.
    pub span: u64,
    /// Wall-clock admission timestamp (trace-epoch ns) for backdating
    /// the queue-wait span; 0 when tracing was disabled.
    pub admit_ns: u64,
}

/// Mutable scheduler state, all under one lock.
pub(crate) struct SchedState {
    /// Placed, not-yet-executed jobs.
    pub queue: Vec<Job>,
    /// Per-device busy horizon in virtual seconds.
    pub busy_until: Vec<f64>,
    /// Per-tenant queued + running counts (the admission cap's input).
    pub tenant_inflight: Vec<usize>,
    /// Per-tenant last fair-share service tag (virtual seconds).
    pub tenant_tag: Vec<f64>,
    pub next_seq: u64,
    pub shutdown: bool,
}

/// The queue plus its wakeup — workers block on `cv` until a job is
/// placed or the service shuts down.
pub(crate) struct Scheduler {
    pub state: Mutex<SchedState>,
    pub cv: Condvar,
}

impl Scheduler {
    pub fn new(devices: usize) -> Self {
        Self {
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                busy_until: vec![0.0; devices],
                tenant_inflight: Vec::new(),
                tenant_tag: Vec::new(),
                next_seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }
}

impl SchedState {
    /// Grows the per-tenant vectors to cover tenant index `t`.
    pub fn ensure_tenant(&mut self, t: usize) {
        if t >= self.tenant_inflight.len() {
            self.tenant_inflight.resize(t + 1, 0);
            self.tenant_tag.resize(t + 1, 0.0);
        }
    }

    /// Seconds a query arriving at `arrival` would wait before its
    /// placement device frees up — exact for the placement
    /// [`Self::place`] would perform next. `healthy` masks out devices
    /// in probation; an all-false mask falls back to the whole pool
    /// (matching [`Self::place`], which must put the job *somewhere* —
    /// execution-time failover handles a pool that is truly dead).
    pub fn projected_wait(&self, arrival: f64, healthy: &[bool]) -> f64 {
        let any_healthy = healthy.iter().any(|&h| h);
        let soonest = self
            .busy_until
            .iter()
            .enumerate()
            .filter(|&(d, _)| !any_healthy || healthy[d])
            .map(|(_, &b)| b)
            .fold(f64::INFINITY, f64::min);
        (soonest - arrival).max(0.0)
    }

    /// Places a job on the virtual timeline: the *healthy* device whose
    /// horizon ends soonest runs it, starting when both are ready.
    /// Returns `(device, start)` and advances the horizon by
    /// `projected`. An all-false mask falls back to the whole pool.
    pub fn place(&mut self, arrival: f64, projected: f64, healthy: &[bool]) -> (usize, f64) {
        let any_healthy = healthy.iter().any(|&h| h);
        let device = self
            .busy_until
            .iter()
            .enumerate()
            .filter(|&(d, _)| !any_healthy || healthy[d])
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite horizons"))
            .map(|(d, _)| d)
            .expect("pool is never empty");
        let start = self.busy_until[device].max(arrival);
        self.busy_until[device] = start + projected;
        (device, start)
    }

    /// Pops the placed job with the earliest virtual start (ties by
    /// admission order) for execution.
    pub fn pop_next(&mut self) -> Option<Job> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (a.start, a.seq)
                    .partial_cmp(&(b.start, b.seq))
                    .expect("starts are finite")
            })
            .map(|(i, _)| i)?;
        let mut job = self.queue.swap_remove(best);
        job.queued = None; // release the pool backlog token at dispatch
        Some(job)
    }
}

/// One batch candidate for [`wfq_order`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct FairItem {
    pub tenant: usize,
    pub arrival: f64,
    pub deadline: f64,
    pub projected: f64,
}

/// Heap key for [`wfq_order`]: min by (service tag, deadline, position).
struct TagKey {
    tag: f64,
    deadline: f64,
    idx: usize,
}

impl PartialEq for TagKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for TagKey {}
impl PartialOrd for TagKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TagKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the minimum.
        other
            .tag
            .total_cmp(&self.tag)
            .then(other.deadline.total_cmp(&self.deadline))
            .then(other.idx.cmp(&self.idx))
    }
}

/// Orders a burst of simultaneously-submitted requests by fair-share
/// service tags: repeatedly take each tenant's earliest-deadline pending
/// item, tag it `max(arrival, tenant's last tag) + projected`, and emit
/// the minimum tag (ties by deadline, then position). `tags` is the
/// live per-tenant tag state and is advanced as items are emitted.
///
/// Runs in `O(B log B)` (per-tenant deadline sort + one heap of tenant
/// heads): popping an item only changes *its own tenant's* tag, so the
/// heap entry pushed for that tenant's next item carries the updated tag
/// and every other entry stays valid. This runs under the scheduler
/// lock, so the bound matters for large bursts.
pub(crate) fn wfq_order(items: &[FairItem], tags: &mut [f64]) -> Vec<usize> {
    // Per-tenant item queues, earliest (deadline, position) last so the
    // head pops from the back.
    let mut per_tenant: Vec<Vec<usize>> = vec![Vec::new(); tags.len()];
    for (i, item) in items.iter().enumerate() {
        per_tenant[item.tenant].push(i);
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(per_tenant.len());
    for queue in &mut per_tenant {
        queue.sort_by(|&a, &b| {
            items[b]
                .deadline
                .total_cmp(&items[a].deadline)
                .then(b.cmp(&a))
        });
        if let Some(&head) = queue.last() {
            heap.push(TagKey {
                tag: items[head].arrival.max(tags[items[head].tenant]) + items[head].projected,
                deadline: items[head].deadline,
                idx: head,
            });
        }
    }
    let mut order = Vec::with_capacity(items.len());
    while let Some(TagKey { tag, idx, .. }) = heap.pop() {
        let tenant = items[idx].tenant;
        tags[tenant] = tag;
        order.push(idx);
        let queue = &mut per_tenant[tenant];
        queue.pop();
        if let Some(&head) = queue.last() {
            heap.push(TagKey {
                tag: items[head].arrival.max(tags[tenant]) + items[head].projected,
                deadline: items[head].deadline,
                idx: head,
            });
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::new_ticket;

    fn job(seq: u64, tenant: usize, start: f64) -> Job {
        Job {
            seq,
            tenant,
            dataset: 0,
            epsilon: 1.0,
            arrival: 0.0,
            projected: 1.0,
            device: 0,
            start,
            deadline: f64::INFINITY,
            attempts: 0,
            delayed: false,
            ticket: new_ticket(),
            queued: None,
            span: 0,
            admit_ns: 0,
        }
    }

    fn state(devices: usize, tenants: usize) -> SchedState {
        let mut st = SchedState {
            queue: Vec::new(),
            busy_until: vec![0.0; devices],
            tenant_inflight: Vec::new(),
            tenant_tag: Vec::new(),
            next_seq: 0,
            shutdown: false,
        };
        st.ensure_tenant(tenants.saturating_sub(1));
        st
    }

    #[test]
    fn placement_is_lpt_and_respects_arrival() {
        let mut st = state(2, 1);
        let all = [true, true];
        // Two jobs at arrival 0 land on distinct devices.
        assert_eq!(st.place(0.0, 3.0, &all), (0, 0.0));
        assert_eq!(st.place(0.0, 1.0, &all), (1, 0.0));
        // Device 1 frees soonest (t=1): the next job queues behind it.
        assert_eq!(st.place(0.0, 2.0, &all), (1, 1.0));
        // An arrival after every horizon starts exactly at its arrival.
        assert_eq!(st.place(10.0, 1.0, &all), (0, 10.0));
        assert_eq!(st.busy_until, vec![11.0, 3.0]);
    }

    #[test]
    fn projected_wait_is_the_soonest_horizon() {
        let mut st = state(2, 1);
        st.busy_until = vec![3.0, 7.0];
        let all = [true, true];
        assert!((st.projected_wait(1.0, &all) - 2.0).abs() < 1e-12);
        // Arrival after both horizons: no wait.
        assert_eq!(st.projected_wait(10.0, &all), 0.0);
    }

    #[test]
    fn placement_avoids_unhealthy_devices() {
        let mut st = state(2, 1);
        st.busy_until = vec![0.0, 5.0];
        // Device 0 frees soonest but is down: placement (and the wait
        // admission reads) must go through the healthy device 1.
        let mask = [false, true];
        assert!((st.projected_wait(0.0, &mask) - 5.0).abs() < 1e-12);
        assert_eq!(st.place(0.0, 1.0, &mask), (1, 5.0));
        // A fully-down pool falls back to every device rather than
        // refusing to place (execution-time failover takes over there).
        let none = [false, false];
        assert_eq!(st.place(0.0, 1.0, &none), (0, 0.0));
    }

    #[test]
    fn pop_next_follows_virtual_start_order() {
        let mut st = state(1, 2);
        st.queue.push(job(0, 0, 5.0));
        st.queue.push(job(1, 1, 2.0));
        st.queue.push(job(2, 0, 5.0));
        assert_eq!(st.pop_next().unwrap().seq, 1);
        // Equal starts tie-break by admission order.
        assert_eq!(st.pop_next().unwrap().seq, 0);
        assert_eq!(st.pop_next().unwrap().seq, 2);
        assert!(st.pop_next().is_none());
    }

    #[test]
    fn wfq_order_interleaves_a_flood_with_a_light_tenant() {
        // Tenant 0 floods three items (earlier deadlines); tenant 1 has
        // one. The flood's chained tags push its later items behind the
        // light tenant's first, whatever the deadlines say.
        let items = vec![
            FairItem {
                tenant: 0,
                arrival: 0.0,
                deadline: 1.0,
                projected: 1.0,
            },
            FairItem {
                tenant: 0,
                arrival: 0.0,
                deadline: 2.0,
                projected: 1.0,
            },
            FairItem {
                tenant: 0,
                arrival: 0.0,
                deadline: 3.0,
                projected: 1.0,
            },
            FairItem {
                tenant: 1,
                arrival: 0.0,
                deadline: 10.0,
                projected: 1.0,
            },
        ];
        let mut tags = vec![0.0; 2];
        assert_eq!(wfq_order(&items, &mut tags), vec![0, 3, 1, 2]);
        assert_eq!(tags, vec![3.0, 1.0]);
    }

    #[test]
    fn wfq_order_respects_deadlines_within_a_tenant() {
        let items = vec![
            FairItem {
                tenant: 0,
                arrival: 0.0,
                deadline: 9.0,
                projected: 1.0,
            },
            FairItem {
                tenant: 0,
                arrival: 0.0,
                deadline: 2.0,
                projected: 1.0,
            },
        ];
        let mut tags = vec![0.0];
        assert_eq!(wfq_order(&items, &mut tags), vec![1, 0]);
    }
}
