//! The service: sessions + admission + scheduler + a device-wide
//! executor pool, behind one `submit` call.
//!
//! Construction spawns one executor thread per pool device (sizing the
//! pool's real parallelism to its device count — the threads themselves
//! are interchangeable; a job's *device* is fixed at admission-time
//! placement, and whichever thread pops the job runs it on that
//! device). A submitted query flows: intern tenant → look up the
//! dataset's resident [`SelfJoinSession`] → project its cost
//! ([`SelfJoinSession::projected_cost`]) → admission decision against
//! the scheduler's busy horizons and the pool's pressure → virtual
//! placement → an executor runs it through `session.query_on` (exact
//! answer, resident snapshots, transparent re-upload after eviction) →
//! the submitter's [`QueryTicket`] resolves.
//!
//! Time is virtual: arrivals are seconds since the service epoch
//! (callers replaying an open-loop trace pass them explicitly; live
//! callers default to the epoch clock), execution advances per-device
//! busy horizons by *modeled* response time, and a query's latency is
//! `completion − arrival` on that clock.

use crate::admission::{self, AdmissionConfig, Decision};
use crate::metrics::{ServiceMetrics, TenantCounters};
use crate::scheduler::{wfq_order, FairItem, Job, Scheduler};
use grid_join::{JoinReport, NeighborTable, SelfJoinError, SelfJoinSession, SessionConfig};
use sim_gpu::DevicePool;
use sj_datasets::Dataset;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Workers run queries under `catch_unwind` and keep every shared
/// structure consistent before anything that can panic, so the poison
/// flag carries no information here — propagating it would cascade one
/// failed query into a service-wide outage (every later `lock()` on the
/// same mutex panicking in turn).
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Service configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Admission-controller knobs (SLO, delay window, caps).
    pub admission: AdmissionConfig,
    /// Pool-wide budget for resident snapshot bytes; `Some` arms LRU
    /// eviction in the pool's [`sim_gpu::MemoryLedger`].
    pub snapshot_budget: Option<usize>,
    /// Configuration for the sessions the service creates per dataset.
    pub session: SessionConfig,
}

/// Handle to a registered dataset (index into the service's session set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetId(usize);

/// One query submission.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Tenant name (metrics and fair-share are keyed by it).
    pub tenant: String,
    /// Which registered dataset to join.
    pub dataset: DatasetId,
    /// Query radius ε.
    pub epsilon: f64,
    /// Virtual arrival time; `None` stamps the submission with the
    /// service epoch clock.
    pub arrival: Option<Duration>,
    /// Absolute virtual deadline; `None` defaults to `arrival + slo`.
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A live-clock request with default deadline.
    pub fn new(tenant: impl Into<String>, dataset: DatasetId, epsilon: f64) -> Self {
        Self {
            tenant: tenant.into(),
            dataset,
            epsilon,
            arrival: None,
            deadline: None,
        }
    }

    /// Sets the virtual arrival time (open-loop trace replay).
    pub fn at(mut self, arrival: Duration) -> Self {
        self.arrival = Some(arrival);
        self
    }
}

/// Why a submission did not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission shed the query; retry no sooner than `retry_after`.
    Overloaded {
        /// Projected time until enough backlog has drained.
        retry_after: Duration,
    },
    /// The dataset id does not name a registered dataset.
    UnknownDataset,
    /// The service is shutting down.
    ShuttingDown,
    /// The join itself failed on the device.
    Join(SelfJoinError),
    /// The service broke its own contract — an executor panicked
    /// mid-query or a ticket wait timed out. The query may be retried;
    /// the message is diagnostic, not programmatic.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { retry_after } => {
                write!(f, "overloaded; retry after {retry_after:?}")
            }
            Self::UnknownDataset => write!(f, "unknown dataset"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Join(e) => write!(f, "join failed: {e}"),
            Self::Internal(msg) => write!(f, "internal service error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed query as the submitter sees it.
#[derive(Clone, Debug)]
pub struct ServeOutput {
    /// Directed, self-excluded neighbour lists at the queried ε —
    /// pair-for-pair identical to a fresh join.
    pub table: NeighborTable,
    /// Virtual latency: completion − arrival.
    pub latency: Duration,
    /// Virtual time spent queued before a device picked the query.
    pub queue_wait: Duration,
    /// Virtual completion time (seconds since the service epoch).
    pub completion: Duration,
    /// Pool device that executed the query.
    pub device: usize,
    /// Whether the resident index served it (false = rebuilt).
    pub reused_index: bool,
    /// Whether admission flagged it delayed (projected past the SLO).
    pub delayed: bool,
    /// Timing/shape report of the underlying join.
    pub report: JoinReport,
}

/// Completion slot a worker fills and a submitter waits on.
pub(crate) struct TicketInner {
    slot: Mutex<Option<Result<ServeOutput, ServeError>>>,
    cv: Condvar,
}

pub(crate) type TicketShared = Arc<TicketInner>;

pub(crate) fn new_ticket() -> TicketShared {
    Arc::new(TicketInner {
        slot: Mutex::new(None),
        cv: Condvar::new(),
    })
}

fn fulfill(ticket: &TicketShared, outcome: Result<ServeOutput, ServeError>) {
    *lock_clean(&ticket.slot) = Some(outcome);
    ticket.cv.notify_all();
}

/// Default bound on [`QueryTicket::wait`]: generous enough that no live
/// service comes near it, finite so a lost outcome (a bug, not a device
/// fault — those are retried or reported) cannot hang the submitter
/// forever.
const DEFAULT_WAIT: Duration = Duration::from_secs(300);

/// Handle to one admitted query; blocks on [`Self::wait`] until a device
/// worker completes it.
pub struct QueryTicket {
    inner: TicketShared,
}

impl QueryTicket {
    /// Blocks until the query completes and returns its outcome, bounded
    /// by a generous default timeout (see [`Self::wait_for`]).
    pub fn wait(self) -> Result<ServeOutput, ServeError> {
        self.wait_for(DEFAULT_WAIT)
    }

    /// Blocks until the query completes or `timeout` elapses, whichever
    /// comes first. Workers post an outcome even when the executing
    /// query panics (a drop guard posts [`ServeError::Internal`]), so a
    /// timeout here indicates a scheduler bug, not a slow query — it
    /// returns `Internal` rather than blocking the caller forever.
    pub fn wait_for(self, timeout: Duration) -> Result<ServeOutput, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_clean(&self.inner.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Internal(format!(
                    "query outcome not posted within {timeout:?}"
                )));
            }
            slot = self
                .inner
                .cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

struct MetricsState {
    /// Tenant name → interned index (stable across resets).
    ids: HashMap<String, usize>,
    names: Vec<String>,
    counters: Vec<TenantCounters>,
    /// Eviction/re-upload counts already consumed by a metrics reset.
    evictions_base: u64,
    reuploads_base: u64,
}

struct Inner {
    pool: DevicePool,
    config: ServiceConfig,
    /// Registered datasets: name + their resident session.
    sessions: Mutex<Vec<(String, Arc<SelfJoinSession>)>>,
    sched: Scheduler,
    metrics: Mutex<MetricsState>,
    epoch: Mutex<Instant>,
    /// Serializes actual kernel execution across workers: simulated
    /// device time is modeled from measured host wall time, so two joins
    /// running concurrently on the host would inflate each other's
    /// modeled cost (the same substrate lock the shard engine holds).
    /// Device *concurrency* lives in the virtual placement math, not in
    /// the host threads.
    substrate: Mutex<()>,
}

impl Inner {
    /// Sums eviction/re-upload counters over every session.
    fn eviction_totals(&self) -> (u64, u64) {
        let sessions = lock_clean(&self.sessions);
        let mut evictions = 0;
        let mut reuploads = 0;
        for (_, session) in sessions.iter() {
            let stats = session.stats();
            evictions += stats.snapshot_evictions;
            reuploads += stats.snapshot_reuploads;
        }
        (evictions, reuploads)
    }
}

/// The multi-tenant self-join query service. See the [module
/// docs](self); dropping the service drains the queue and joins its
/// workers.
pub struct SelfJoinService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl SelfJoinService {
    /// Brings the service up over `pool`, spawning one worker per device
    /// and arming the pool's snapshot ledger with the configured budget.
    /// A `snapshot_budget` of `None` leaves any budget the operator (or
    /// another service on the same pool) already armed untouched.
    pub fn new(pool: DevicePool, config: ServiceConfig) -> Self {
        if config.snapshot_budget.is_some() {
            pool.memory_ledger().set_budget(config.snapshot_budget);
        }
        let inner = Arc::new(Inner {
            sched: Scheduler::new(pool.len()),
            sessions: Mutex::new(Vec::new()),
            metrics: Mutex::new(MetricsState {
                ids: HashMap::new(),
                names: Vec::new(),
                counters: Vec::new(),
                evictions_base: 0,
                reuploads_base: 0,
            }),
            epoch: Mutex::new(Instant::now()),
            substrate: Mutex::new(()),
            pool,
            config,
        });
        let workers = (0..inner.pool.len())
            .map(|device| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner, device))
            })
            .collect();
        Self { inner, workers }
    }

    /// The pool the service executes on.
    pub fn pool(&self) -> &DevicePool {
        &self.inner.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Registers (and pins) a dataset, creating its resident session.
    pub fn register_dataset(&self, name: impl Into<String>, data: Dataset) -> DatasetId {
        let session = Arc::new(
            SelfJoinSession::new(data, self.inner.pool.clone())
                .with_config(self.inner.config.session),
        );
        let mut sessions = lock_clean(&self.inner.sessions);
        sessions.push((name.into(), session));
        DatasetId(sessions.len() - 1)
    }

    /// The resident session behind a registered dataset.
    pub fn session(&self, dataset: DatasetId) -> Option<Arc<SelfJoinSession>> {
        lock_clean(&self.inner.sessions)
            .get(dataset.0)
            .map(|(_, s)| Arc::clone(s))
    }

    /// Warms a dataset's session: serves each ε once (seeding the
    /// result-size cache and calibrating the cost model), then touches
    /// every pool device so serving traffic never pays a first-touch
    /// upload. Pass the *largest* ε first so the remaining ones reuse its
    /// index generation.
    pub fn warm(&self, dataset: DatasetId, epsilons: &[f64]) -> Result<(), ServeError> {
        let session = self.session(dataset).ok_or(ServeError::UnknownDataset)?;
        for &eps in epsilons {
            session.query(eps).map_err(ServeError::Join)?;
        }
        if let Some(&eps) = epsilons.last() {
            for device in 0..self.inner.pool.len() {
                session.query_on(eps, device).map_err(ServeError::Join)?;
            }
        }
        Ok(())
    }

    /// Submits one query. Returns a ticket to wait on, or the admission
    /// rejection.
    pub fn submit(&self, req: QueryRequest) -> Result<QueryTicket, ServeError> {
        self.submit_batch(vec![req])
            .pop()
            .expect("one request, one outcome")
    }

    /// Submits a burst of queries atomically: the whole batch is decided
    /// and placed on the virtual timeline under one scheduler lock hold,
    /// in fair-share tag order ([`scheduler::wfq_order`]) — exactly what
    /// a trace replayer wants when many virtual arrivals share one real
    /// instant, and the only point where cross-tenant fairness can
    /// reorder anything (a lone streamed submission is placed the moment
    /// it arrives). Outcomes are returned in request order; each request
    /// sees the horizons its tag-predecessors created.
    pub fn submit_batch(&self, reqs: Vec<QueryRequest>) -> Vec<Result<QueryTicket, ServeError>> {
        // Phase 1 — per-request prep without scheduler locks: session
        // lookup, tenant interning, cost projection.
        struct Prep {
            req: QueryRequest,
            tenant: usize,
            cost: grid_join::ProjectedCost,
        }
        let preps: Vec<Result<Prep, ServeError>> = reqs
            .into_iter()
            .map(|req| {
                let session = self
                    .session(req.dataset)
                    .ok_or(ServeError::UnknownDataset)?;
                let tenant = self.intern_tenant(&req.tenant);
                let cost = session.projected_cost(req.epsilon);
                Ok(Prep { req, tenant, cost })
            })
            .collect();
        let slo = self.inner.config.admission.slo.as_secs_f64();

        // Phase 2 — one scheduler lock hold: order the batch by fair
        // tags, then decide + place each request.
        // (admitted tenant/arrival/delayed for metrics, per request)
        let mut admits: Vec<(usize, f64, bool)> = Vec::new();
        let mut rejects: Vec<usize> = Vec::new();
        let mut outcomes: Vec<Option<Result<QueryTicket, ServeError>>> =
            preps.iter().map(|_| None).collect();
        {
            let mut st = lock_clean(&self.inner.sched.state);
            // The pool's load picture is sampled under the scheduler lock
            // (admissions from other threads are serialized by it, so the
            // queued count cannot go stale mid-batch), and each admission
            // in this batch bumps it locally so the queue-depth backstop
            // sees its own batch too — a cold 10k-request batch must not
            // slip past `max_queue_depth` on a stale zero.
            let mut pressure = self.inner.pool.pressure();
            // Health is sampled with the pressure: placement and the
            // projected waits admission reads both skip devices in
            // probation, so a downed device's horizon cannot admit (or
            // stall) anything while it heals.
            let healthy = self.inner.pool.health_mask();
            let now = lock_clean(&self.inner.epoch).elapsed().as_secs_f64();
            // Resolve prep errors first; build the fair-ordering items
            // for the rest.
            let mut pending: Vec<(usize, Prep)> = Vec::new();
            for (i, prep) in preps.into_iter().enumerate() {
                match prep {
                    Ok(prep) => {
                        st.ensure_tenant(prep.tenant);
                        pending.push((i, prep));
                    }
                    Err(e) => outcomes[i] = Some(Err(e)),
                }
            }
            let items: Vec<FairItem> = pending
                .iter()
                .map(|(_, prep)| {
                    let arrival = prep.req.arrival.map(|a| a.as_secs_f64()).unwrap_or(now);
                    FairItem {
                        tenant: prep.tenant,
                        arrival,
                        deadline: prep
                            .req
                            .deadline
                            .map(|d| d.as_secs_f64())
                            .unwrap_or(arrival + slo),
                        projected: prep.cost.modeled.as_secs_f64(),
                    }
                })
                .collect();
            for k in wfq_order(&items, &mut st.tenant_tag) {
                let (i, prep) = &pending[k];
                let item = items[k];
                if st.shutdown {
                    outcomes[*i] = Some(Err(ServeError::ShuttingDown));
                    continue;
                }
                let wait = Duration::from_secs_f64(st.projected_wait(item.arrival, &healthy));
                let decision = admission::decide(
                    &self.inner.config.admission,
                    wait,
                    &prep.cost,
                    st.tenant_inflight[prep.tenant],
                    &pressure,
                );
                outcomes[*i] = Some(match decision {
                    Decision::Admit { delayed } => {
                        let seq = st.next_seq;
                        st.next_seq += 1;
                        let (device, start) = st.place(item.arrival, item.projected, &healthy);
                        // Root of the query's trace tree. Its wall
                        // interval is admission processing; its modeled
                        // interval is the placement *reservation*
                        // (arrival → projected completion) — workers
                        // later record the measured queue/run spans as
                        // children.
                        let mut qspan = sj_obs::Span::enter("serve.query");
                        let (span_id, admit_ns) = if qspan.id() != 0 {
                            qspan.label("tenant", prep.req.tenant.clone());
                            qspan.label("epsilon", prep.req.epsilon);
                            qspan.label("dataset", prep.req.dataset.0);
                            qspan.label("seq", seq);
                            let mut aspan = sj_obs::Span::child_of(qspan.id(), "serve.admission");
                            aspan
                                .label("decision", if delayed { "admit_delayed" } else { "admit" });
                            aspan.label("device", device);
                            aspan.label("projected_us", item.projected * 1e6);
                            aspan.label("wait_us", wait.as_secs_f64() * 1e6);
                            aspan.set_modeled(item.arrival, 0.0);
                            drop(aspan);
                            qspan
                                .set_modeled(item.arrival, (start + item.projected) - item.arrival);
                            (qspan.id(), sj_obs::trace::now_ns())
                        } else {
                            (0, 0)
                        };
                        drop(qspan);
                        let ticket = new_ticket();
                        st.queue.push(Job {
                            seq,
                            tenant: prep.tenant,
                            dataset: prep.req.dataset.0,
                            epsilon: prep.req.epsilon,
                            arrival: item.arrival,
                            projected: item.projected,
                            device,
                            start,
                            deadline: item.deadline,
                            attempts: 0,
                            delayed,
                            ticket: Arc::clone(&ticket),
                            queued: Some(self.inner.pool.queue_work()),
                            span: span_id,
                            admit_ns,
                        });
                        st.tenant_inflight[prep.tenant] += 1;
                        pressure.queued += 1;
                        admits.push((prep.tenant, item.arrival, delayed));
                        Ok(QueryTicket { inner: ticket })
                    }
                    Decision::Reject { retry_after } => {
                        let mut aspan = sj_obs::Span::enter("serve.admission");
                        if aspan.id() != 0 {
                            aspan.label("tenant", prep.req.tenant.clone());
                            aspan.label("decision", "reject");
                            aspan.set_modeled(item.arrival, 0.0);
                        }
                        rejects.push(prep.tenant);
                        Err(ServeError::Overloaded { retry_after })
                    }
                });
            }
        }
        self.inner.sched.cv.notify_all();

        // Phase 3 — metrics, outside the scheduler lock. Counters are
        // double-entried: the per-service `TenantCounters` snapshot and
        // the process-wide `sj_obs` registry (Prometheus/JSON exposition).
        {
            let mut ms = lock_clean(&self.inner.metrics);
            let MetricsState {
                names, counters, ..
            } = &mut *ms;
            let reg = sj_obs::registry();
            for (tenant, arrival, delayed) in admits {
                let c = &mut counters[tenant];
                c.submitted += 1;
                c.admitted += 1;
                if delayed {
                    c.delayed += 1;
                }
                c.first_arrival = Some(match c.first_arrival {
                    Some(first) => first.min(arrival),
                    None => arrival,
                });
                let labels = [("tenant", names[tenant].as_str())];
                reg.counter("sj_serve_submitted_total", &labels).inc();
                reg.counter("sj_serve_admitted_total", &labels).inc();
                if delayed {
                    reg.counter("sj_serve_delayed_total", &labels).inc();
                }
            }
            for tenant in rejects {
                let c = &mut counters[tenant];
                c.submitted += 1;
                c.rejected += 1;
                let labels = [("tenant", names[tenant].as_str())];
                reg.counter("sj_serve_submitted_total", &labels).inc();
                reg.counter("sj_serve_rejected_total", &labels).inc();
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every request decided"))
            .collect()
    }

    fn intern_tenant(&self, name: &str) -> usize {
        let mut ms = lock_clean(&self.inner.metrics);
        match ms.ids.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = ms.names.len();
                ms.ids.insert(name.to_string(), idx);
                ms.names.push(name.to_string());
                ms.counters.push(TenantCounters::default());
                idx
            }
        }
    }

    /// Snapshot of the service metrics (see [`ServiceMetrics`]).
    pub fn metrics(&self) -> ServiceMetrics {
        let (evictions, reuploads) = self.inner.eviction_totals();
        let ms = lock_clean(&self.inner.metrics);
        let counters: HashMap<String, TenantCounters> = ms
            .names
            .iter()
            .cloned()
            .zip(ms.counters.iter().cloned())
            .collect();
        let ledger = self.inner.pool.memory_ledger();
        ServiceMetrics::build(
            &counters,
            evictions.saturating_sub(ms.evictions_base),
            reuploads.saturating_sub(ms.reuploads_base),
            ledger.total(),
            ledger.budget(),
            self.inner.config.admission.slo.as_secs_f64(),
        )
    }

    /// Zeroes traffic counters and virtual clocks (warmup → measurement
    /// boundary). Call only while no queries are queued or running;
    /// resident sessions and their snapshots are untouched.
    pub fn reset_metrics(&self) {
        let (evictions, reuploads) = self.inner.eviction_totals();
        {
            let mut ms = lock_clean(&self.inner.metrics);
            for c in ms.counters.iter_mut() {
                *c = TenantCounters::default();
            }
            ms.evictions_base = evictions;
            ms.reuploads_base = reuploads;
        }
        {
            let mut st = lock_clean(&self.inner.sched.state);
            debug_assert!(st.queue.is_empty(), "reset_metrics with queued queries");
            for b in st.busy_until.iter_mut() {
                *b = 0.0;
            }
            // Fair-share tags are stamped in the old epoch's virtual
            // time; left alone they would order every pre-reset tenant
            // behind fresh ones until arrivals caught up.
            for tag in st.tenant_tag.iter_mut() {
                *tag = 0.0;
            }
        }
        *lock_clean(&self.inner.epoch) = Instant::now();
    }
}

impl Drop for SelfJoinService {
    fn drop(&mut self) {
        {
            let mut st = lock_clean(&self.inner.sched.state);
            st.shutdown = true;
        }
        self.inner.sched.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for SelfJoinService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfJoinService")
            .field("devices", &self.inner.pool.len())
            .field("datasets", &lock_clean(&self.inner.sessions).len())
            .field("config", &self.inner.config)
            .finish()
    }
}

/// Bucket bounds for the streaming latency histogram, computed once.
fn latency_histogram_bounds() -> &'static [f64] {
    static BOUNDS: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    BOUNDS.get_or_init(sj_obs::latency_buckets)
}

/// Posts [`ServeError::Internal`] if the executor unwinds before
/// resolving the ticket — the submitter must never block on a query the
/// service dropped. Disarmed on every deliberate exit (fulfill, retry).
struct OutcomeGuard {
    ticket: Option<TicketShared>,
}

impl OutcomeGuard {
    fn arm(ticket: TicketShared) -> Self {
        Self {
            ticket: Some(ticket),
        }
    }

    fn disarm(&mut self) {
        self.ticket = None;
    }
}

impl Drop for OutcomeGuard {
    fn drop(&mut self) {
        if let Some(t) = self.ticket.take() {
            fulfill(
                &t,
                Err(ServeError::Internal(
                    "executor dropped the query without posting an outcome".into(),
                )),
            );
        }
    }
}

/// One executor thread (the pool spawns one per device for parallelism):
/// pop the next placed job in virtual-start order, run it for real on
/// its assigned device, correct the device's horizon by the measured
/// modeled cost (placement reserved the projection), and resolve the
/// ticket. Execution is supervised: the query runs under `catch_unwind`
/// behind an [`OutcomeGuard`], so a panicking join resolves the ticket
/// with [`ServeError::Internal`] instead of hanging the submitter, and a
/// device fault re-places the job on a healthy device (bounded attempts,
/// only while the retry can still meet the query's deadline).
fn worker_loop(inner: Arc<Inner>, _worker: usize) {
    loop {
        let job = {
            let mut st = lock_clean(&inner.sched.state);
            loop {
                if let Some(job) = st.pop_next() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .sched
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(&inner, job);
    }
}

/// Executes one popped job to resolution: success, terminal error, or a
/// bounded sequence of fault retries on healthy devices.
fn run_job(inner: &Arc<Inner>, mut job: Job) {
    loop {
        let mut guard = OutcomeGuard::arm(Arc::clone(&job.ticket));
        let session = {
            let sessions = lock_clean(&inner.sessions);
            Arc::clone(&sessions[job.dataset].1)
        };
        let (device, start) = (job.device, job.start);
        // Trace the dispatch: a backdated queue-wait span (admission →
        // pop on the wall clock, arrival → virtual start on the modeled
        // clock) and a run span the whole session/plan/kernel subtree
        // nests under. `set_modeled` on the queue span leaves the
        // thread's modeled cursor at `job.start`, exactly where the run
        // subtree's device stages should begin.
        if job.span != 0 {
            let mut wspan = sj_obs::Span::child_of(job.span, "serve.queue");
            wspan.label("device", device);
            if job.admit_ns != 0 {
                wspan.set_wall_start_ns(job.admit_ns);
            }
            wspan.set_modeled(job.arrival, (start - job.arrival).max(0.0));
        }
        let mut rspan = if job.span != 0 {
            let mut s = sj_obs::Span::child_of(job.span, "serve.run");
            s.label("device", device);
            s.label("seq", job.seq);
            s.label("attempt", job.attempts);
            sj_obs::set_modeled_cursor(start);
            Some(s)
        } else {
            None
        };
        // The join itself is the only stage that executes foreign-ish
        // code (kernels, allocators); everything after it is our own
        // bookkeeping. A panic here must cost one query, not the worker
        // thread (and with it a device's entire executor).
        let caught = {
            let _kernels = lock_clean(&inner.substrate);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.query_on(job.epsilon, device)
            }))
        };
        let result = match caught {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                drop(rspan);
                sj_obs::registry()
                    .counter("sj_serve_worker_panics_total", &[])
                    .inc();
                finish_job(
                    inner,
                    &job,
                    Err(ServeError::Internal(format!(
                        "executor panicked during query: {msg}"
                    ))),
                );
                guard.disarm();
                return;
            }
        };
        let actual = match &result {
            Ok(out) => out.report.modeled_total.as_secs_f64(),
            Err(_) => 0.0,
        };
        if let Some(s) = rspan.as_mut() {
            s.set_modeled(start, actual);
        }
        drop(rspan);

        // Degraded-mode retry: a device fault is retryable by
        // construction (re-running the query on a healthy device yields
        // the exact same table), so re-place the job instead of failing
        // it — while attempts remain and the retry can still meet the
        // query's deadline.
        if let Err(e) = &result {
            if e.is_fault() && (job.attempts as usize) < inner.pool.len() {
                inner.pool.tick_health();
                let healthy = inner.pool.health_mask();
                let mut st = lock_clean(&inner.sched.state);
                // Return the unused reservation on the faulted device;
                // later placements stacked on top of it, so shift, never
                // overwrite.
                st.busy_until[device] = (st.busy_until[device] - job.projected).max(0.0);
                let wait = st.projected_wait(job.arrival, &healthy);
                if job.arrival + wait + job.projected <= job.deadline {
                    let (nd, nstart) = st.place(job.arrival, job.projected, &healthy);
                    job.device = nd;
                    job.start = nstart;
                    job.attempts += 1;
                    job.queued = Some(inner.pool.queue_work());
                    drop(st);
                    let mut span = sj_obs::Span::enter("fault.retry");
                    span.label("seq", job.seq);
                    span.label("from", device);
                    span.label("to", nd);
                    span.label("attempt", job.attempts);
                    drop(span);
                    sj_obs::registry()
                        .counter("sj_serve_retries_total", &[])
                        .inc();
                    guard.disarm();
                    continue;
                }
                // Deadline unreachable even on a healthy device: the
                // fault surfaces. The reservation was already returned;
                // re-reserve nothing and fall through to fail the query.
                st.busy_until[device] += job.projected;
            }
        }

        // Pair admission's projection with the measured modeled cost so
        // calibration drift shows up in the cost audit.
        if result.is_ok() {
            sj_obs::audit::record("admission", job.projected, actual);
        }
        finish_job(inner, &job, result.map_err(ServeError::Join));
        guard.disarm();
        return;
    }
}

/// Terminal bookkeeping for one job: horizon correction, in-flight
/// decrement, metrics, and the ticket resolution itself.
fn finish_job(
    inner: &Arc<Inner>,
    job: &Job,
    result: Result<grid_join::SessionQueryOutput, ServeError>,
) {
    let actual = match &result {
        Ok(out) => out.report.modeled_total.as_secs_f64(),
        Err(_) => 0.0,
    };
    let completion = job.start + actual;
    {
        let mut st = lock_clean(&inner.sched.state);
        // Correct by delta: placement reserved the projected cost,
        // and later placements stacked on top of it — shift the
        // horizon by the projection error, never overwrite it.
        st.busy_until[job.device] = (st.busy_until[job.device] + (actual - job.projected)).max(0.0);
        st.tenant_inflight[job.tenant] -= 1;
    }
    // A finished job may have unblocked shutdown draining.
    inner.sched.cv.notify_all();
    let latency = (completion - job.arrival).max(0.0);
    {
        let mut ms = lock_clean(&inner.metrics);
        let MetricsState {
            names, counters, ..
        } = &mut *ms;
        let c = &mut counters[job.tenant];
        let labels = [("tenant", names[job.tenant].as_str())];
        let reg = sj_obs::registry();
        match &result {
            Ok(_) => {
                c.completed += 1;
                c.record_latency(latency);
                c.last_completion = c.last_completion.max(completion);
                reg.counter("sj_serve_completed_total", &labels).inc();
                reg.histogram("sj_serve_latency_secs", &labels, latency_histogram_bounds())
                    .observe(latency);
            }
            Err(_) => {
                c.failed += 1;
                reg.counter("sj_serve_failed_total", &labels).inc();
            }
        }
    }
    let outcome = result.map(|out| ServeOutput {
        table: out.table,
        latency: Duration::from_secs_f64(latency),
        queue_wait: Duration::from_secs_f64((job.start - job.arrival).max(0.0)),
        completion: Duration::from_secs_f64(completion.max(0.0)),
        device: job.device,
        reused_index: out.reused_index,
        delayed: job.delayed,
        report: out.report,
    });
    fulfill(&job.ticket, outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::uniform;

    fn quick_service(devices: usize) -> (SelfJoinService, DatasetId) {
        let service = SelfJoinService::new(
            DevicePool::titan_x(devices),
            ServiceConfig {
                admission: AdmissionConfig {
                    slo: Duration::from_secs(60),
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let id = service.register_dataset("demo", uniform(2, 800, 120));
        (service, id)
    }

    #[test]
    fn submit_executes_and_matches_fresh_join() {
        let (service, id) = quick_service(2);
        let data = service.session(id).unwrap().data().clone();
        let out = service
            .submit(QueryRequest::new("alice", id, 2.0))
            .unwrap()
            .wait()
            .unwrap();
        let fresh = grid_join::GpuSelfJoin::default_device()
            .run(&data, 2.0)
            .unwrap();
        assert_eq!(out.table, fresh.table);
        assert!(out.latency >= out.queue_wait);
        let m = service.metrics();
        assert_eq!(m.total.submitted, 1);
        assert_eq!(m.total.completed, 1);
        assert_eq!(m.tenants[0].tenant, "alice");
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let (service, _) = quick_service(1);
        let err = service
            .submit(QueryRequest::new("alice", DatasetId(99), 2.0))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownDataset);
    }

    #[test]
    fn many_concurrent_queries_all_complete_exactly() {
        let (service, id) = quick_service(2);
        let data = service.session(id).unwrap().data().clone();
        let eps = 2.5;
        let fresh = grid_join::GpuSelfJoin::default_device()
            .run(&data, eps)
            .unwrap();
        let tickets: Vec<_> = (0..12)
            .map(|i| {
                let tenant = if i % 2 == 0 { "alice" } else { "bob" };
                service
                    .submit(QueryRequest::new(tenant, id, eps).at(Duration::from_millis(i as u64)))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().table, fresh.table);
        }
        let m = service.metrics();
        assert_eq!(m.total.completed, 12);
        assert_eq!(m.tenants.len(), 2);
        assert_eq!(m.tenants[0].completed + m.tenants[1].completed, 12);
        assert!(m.total.latency.p99 > 0.0);
    }

    #[test]
    fn overload_rejects_with_retry_after() {
        let service = SelfJoinService::new(
            DevicePool::titan_x(1),
            ServiceConfig {
                admission: AdmissionConfig {
                    // SLO so tight that a calibrated queue of a few
                    // queries must overflow it.
                    slo: Duration::from_nanos(100),
                    delay_factor: 1.0,
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let id = service.register_dataset("demo", uniform(2, 1200, 121));
        // Calibrate so admission has a real cost model.
        service.warm(id, &[3.0]).unwrap();
        // Saturate: same virtual arrival for a burst → projected waits
        // stack up and later submissions must shed.
        let mut rejected = 0;
        let mut tickets = Vec::new();
        for _ in 0..24 {
            match service.submit(QueryRequest::new("flood", id, 3.0).at(Duration::ZERO)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { retry_after }) => {
                    rejected += 1;
                    assert!(retry_after > Duration::ZERO);
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(rejected > 0, "tight SLO must shed some of the burst");
        for t in tickets {
            t.wait().unwrap();
        }
        let m = service.metrics();
        assert_eq!(m.total.rejected, rejected);
    }

    #[test]
    fn fair_share_interleaves_tenants() {
        // Two devices with a fair-share cap of one running query per
        // tenant: a flooding tenant can occupy at most one device, so a
        // light tenant's query runs concurrently on the other.
        let service = SelfJoinService::new(
            DevicePool::titan_x(2),
            ServiceConfig {
                admission: AdmissionConfig {
                    slo: Duration::from_secs(60),
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let id = service.register_dataset("demo", uniform(2, 800, 122));
        service.warm(id, &[2.0]).unwrap();
        service.reset_metrics();
        // One flooding tenant and one light tenant arrive as one burst
        // (atomic batch, so the scheduler sees the contention): the
        // fair-share tags must let the light tenant overtake the flood.
        let mut reqs: Vec<_> = (0..6)
            .map(|i| QueryRequest::new("flood", id, 2.0).at(Duration::from_nanos(i as u64)))
            .collect();
        reqs.push(QueryRequest::new("light", id, 2.0).at(Duration::from_nanos(6)));
        let mut tickets: Vec<_> = service
            .submit_batch(reqs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let light_out = tickets.pop().expect("light ticket").wait().unwrap();
        let flood_outs: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let worst_flood = flood_outs
            .iter()
            .map(|o| o.completion)
            .max()
            .expect("non-empty");
        assert!(
            light_out.completion < worst_flood,
            "fair share: light tenant must finish before the flood drains \
             (light {:?} vs worst {:?})",
            light_out.completion,
            worst_flood
        );
    }

    #[test]
    fn default_config_preserves_an_operator_armed_budget() {
        let pool = DevicePool::titan_x(1);
        pool.memory_ledger().set_budget(Some(1 << 20));
        // snapshot_budget: None must not disarm the pool's budget…
        let service = SelfJoinService::new(pool.clone(), ServiceConfig::default());
        assert_eq!(pool.memory_ledger().budget(), Some(1 << 20));
        drop(service);
        // …while an explicit budget overrides it.
        let service = SelfJoinService::new(
            pool.clone(),
            ServiceConfig {
                snapshot_budget: Some(2 << 20),
                ..ServiceConfig::default()
            },
        );
        assert_eq!(pool.memory_ledger().budget(), Some(2 << 20));
        drop(service);
    }

    #[test]
    fn queue_depth_backstop_sees_its_own_batch() {
        // A cold session (uncalibrated cost model) cannot be admitted on
        // projected latency; the queue-depth backstop must still bound a
        // single huge batch.
        let service = SelfJoinService::new(
            DevicePool::titan_x(1),
            ServiceConfig {
                admission: AdmissionConfig {
                    slo: Duration::from_secs(60),
                    max_queue_depth: 8,
                    tenant_max_inflight: usize::MAX,
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let id = service.register_dataset("d", uniform(2, 300, 123));
        let reqs: Vec<_> = (0..32)
            .map(|_| QueryRequest::new("cold", id, 2.0).at(Duration::ZERO))
            .collect();
        let outcomes = service.submit_batch(reqs);
        let admitted = outcomes.iter().filter(|o| o.is_ok()).count();
        assert!(admitted <= 8, "backstop ignored: {admitted} admitted");
        assert!(admitted > 0);
        for ticket in outcomes.into_iter().flatten() {
            ticket.wait().unwrap();
        }
    }

    #[test]
    fn ticket_wait_for_times_out_with_internal_error() {
        // A ticket nobody ever fulfills must resolve with a clean
        // Internal error, not block the submitter forever.
        let ticket = QueryTicket {
            inner: new_ticket(),
        };
        let err = ticket
            .wait_for(Duration::from_millis(30))
            .expect_err("unfulfilled ticket must time out");
        assert!(matches!(err, ServeError::Internal(_)), "got {err:?}");
    }

    #[test]
    fn transient_fault_retries_transparently() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let (service, id) = quick_service(1);
        let data = service.session(id).unwrap().data().clone();
        service.warm(id, &[2.0]).unwrap();
        let fresh = grid_join::GpuSelfJoin::default_device()
            .run(&data, 2.0)
            .unwrap();
        // Injector op counters start at arming, so the transient lands
        // squarely inside the serving traffic below.
        service
            .pool()
            .inject_faults(&FaultPlan::new(vec![FaultEvent {
                device: 0,
                after_ops: 1,
                kind: FaultKind::Transient,
            }]));
        let before = sj_obs::registry()
            .counter("sj_serve_retries_total", &[])
            .get();
        for _ in 0..3 {
            let out = service
                .submit(QueryRequest::new("alice", id, 2.0))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(out.table, fresh.table);
        }
        let after = sj_obs::registry()
            .counter("sj_serve_retries_total", &[])
            .get();
        assert!(after > before, "the transient fault must surface a retry");
        let m = service.metrics();
        assert_eq!(m.total.completed, 3);
        assert_eq!(m.total.failed, 0);
    }

    #[test]
    fn crashed_device_fails_over_and_queries_complete() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let (service, id) = quick_service(2);
        let data = service.session(id).unwrap().data().clone();
        service.warm(id, &[2.0]).unwrap();
        let fresh = grid_join::GpuSelfJoin::default_device()
            .run(&data, 2.0)
            .unwrap();
        // Device 1 dies on its first serving op and never heals: every
        // query it was placed on must fail over to device 0.
        service
            .pool()
            .inject_faults(&FaultPlan::new(vec![FaultEvent {
                device: 1,
                after_ops: 0,
                kind: FaultKind::Crash {
                    heal_after_probes: u32::MAX,
                },
            }]));
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                service
                    .submit(QueryRequest::new("alice", id, 2.0).at(Duration::from_millis(i)))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().table, fresh.table);
        }
        let m = service.metrics();
        assert_eq!(m.total.completed, 6);
        assert_eq!(m.total.failed, 0);
        assert!(
            !service.pool().is_healthy(1),
            "the crashed device must be in probation"
        );
    }

    #[test]
    fn metrics_json_exports() {
        let (service, id) = quick_service(1);
        service
            .submit(QueryRequest::new("alice", id, 2.0))
            .unwrap()
            .wait()
            .unwrap();
        let json = service.metrics().to_json();
        assert!(json.contains("\"tenant\": \"alice\""));
        assert!(json.contains("\"p99_secs\""));
    }
}
