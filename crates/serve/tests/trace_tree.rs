//! Serve-level trace test: every admitted query's spans form one
//! connected tree — admission → queue → run → session → plan → device
//! stages — carrying both the wall clock and the modeled clock.
//!
//! Lives in an integration test (own process) so the global trace
//! buffers see only this test's spans.

use sj_serve::{AdmissionConfig, DevicePool, QueryRequest, SelfJoinService, ServiceConfig};
use std::collections::HashMap;
use std::time::Duration;

#[test]
fn admitted_queries_form_connected_span_trees() {
    let service = SelfJoinService::new(
        DevicePool::titan_x(2),
        ServiceConfig {
            admission: AdmissionConfig {
                slo: Duration::from_secs(60),
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    let id = service.register_dataset("demo", sj_datasets::synthetic::uniform(2, 900, 7));
    // Calibrate and seed snapshots before tracing so the trace holds
    // exactly the serving-path spans.
    service.warm(id, &[2.0]).unwrap();

    sj_obs::set_enabled(true);
    let _ = sj_obs::drain();
    let queries = 6u64;
    let tickets: Vec<_> = (0..queries)
        .map(|i| {
            let tenant = if i % 2 == 0 { "alice" } else { "bob" };
            service
                .submit(QueryRequest::new(tenant, id, 2.0).at(Duration::from_millis(i)))
                .unwrap()
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    sj_obs::set_enabled(false);
    let records = sj_obs::drain();

    // Well-formed forest: unique ids, no dangling parents, no cycles.
    let stats = sj_obs::validate(&records).expect("well-formed trace");
    assert!(stats.spans > 0);
    assert!(
        stats.threads >= 2,
        "admission and worker threads both trace"
    );

    let mut children: HashMap<u64, Vec<&sj_obs::SpanRecord>> = HashMap::new();
    for r in &records {
        children.entry(r.parent).or_default().push(r);
    }
    let roots: Vec<_> = records.iter().filter(|r| r.name == "serve.query").collect();
    assert_eq!(
        roots.len(),
        queries as usize,
        "one serve.query root per admitted query"
    );
    for root in roots {
        assert_eq!(root.parent, 0, "serve.query is a trace root");
        let (root_start, _) = root
            .modeled_ns
            .expect("root carries the modeled reservation");

        // Every stage of the pipeline appears somewhere under the root.
        let mut names = Vec::new();
        let mut stack = vec![root.id];
        while let Some(id) = stack.pop() {
            for k in children.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                names.push(k.name);
                stack.push(k.id);
            }
        }
        for expected in [
            "serve.admission",
            "serve.queue",
            "serve.run",
            "session.query",
            "plan.execute",
            "gpu.launch",
        ] {
            assert!(
                names.contains(&expected),
                "missing {expected} under serve.query (got {names:?})"
            );
        }

        // Queue and run are measured on both clocks and abut on the
        // virtual timeline: the wait ends where execution starts.
        let direct = &children[&root.id];
        let queue = direct.iter().find(|r| r.name == "serve.queue").unwrap();
        let run = direct.iter().find(|r| r.name == "serve.run").unwrap();
        let (queue_start, queue_dur) = queue.modeled_ns.expect("queue modeled interval");
        let (run_start, run_dur) = run.modeled_ns.expect("run modeled interval");
        assert!(run_dur > 0, "run span measures the modeled join cost");
        assert!(queue_start >= root_start.saturating_sub(2));
        assert!(
            (queue_start + queue_dur).abs_diff(run_start) <= 2,
            "queue wait must end at the virtual start ({} + {} vs {})",
            queue_start,
            queue_dur,
            run_start
        );
        assert!(
            queue.wall_start_ns <= run.wall_start_ns,
            "queue span is backdated to admission on the wall clock"
        );
    }

    // The Chrome export of the forest parses with the shared reader.
    let chrome = sj_obs::chrome_trace(&records);
    let doc = sj_obs::json::parse(&chrome).expect("chrome trace parses");
    let events = doc.get("traceEvents").expect("traceEvents array");
    assert!(
        events.items().len() > records.len(),
        "wall + modeled events"
    );
}
