//! Minimal argument parsing shared by the figure binaries (no external
//! CLI crate; the flags are few and stable).

/// Common harness options.
#[derive(Clone, Debug)]
pub struct Args {
    /// Dataset scale factor in `(0, 1]` (fraction of the paper's point
    /// counts; ε is stretched to preserve selectivity).
    pub scale: f64,
    /// Trials per measurement (the paper averages 3).
    pub trials: usize,
    /// Quick mode: fewer ε points and a smaller scale, for smoke runs.
    pub quick: bool,
    /// Skip reading/writing the CSV cache.
    pub no_cache: bool,
    /// Also write every printed table as JSON under `bench_results/`
    /// (see [`crate::table::emit_table`]).
    pub json: bool,
    /// Enable span tracing (`sj_obs`) and export a Chrome trace of the
    /// measured run under `bench_results/` (binaries that support it).
    pub trace: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: 0.002,
            trials: 1,
            quick: false,
            no_cache: false,
            json: false,
            trace: false,
        }
    }
}

impl Args {
    /// Parses `--scale F`, `--trials N`, `--quick`, `--no-cache` from the
    /// process arguments; later flags win. Unknown flags abort with usage.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a collection conversion
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("missing value for --scale"));
                    out.scale = v.parse().unwrap_or_else(|_| usage("bad --scale value"));
                    if !(out.scale > 0.0 && out.scale <= 1.0) {
                        usage("--scale must be in (0, 1]");
                    }
                }
                "--trials" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("missing value for --trials"));
                    out.trials = v.parse().unwrap_or_else(|_| usage("bad --trials value"));
                    if out.trials == 0 {
                        usage("--trials must be positive");
                    }
                }
                "--quick" => out.quick = true,
                "--no-cache" => out.no_cache = true,
                "--json" => out.json = true,
                "--trace" => out.trace = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.0005);
        }
        out
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <figure-binary> [--scale F] [--trials N] [--quick] [--no-cache] [--json]\n\
         \n\
         --scale F    fraction of the paper's dataset sizes, 0 < F <= 1 (default 0.002)\n\
         --trials N   trials per measurement, best-of (default 1; paper used 3)\n\
         --quick      smoke mode: caps scale at 0.0005\n\
         --no-cache   ignore bench_results/ CSV cache\n\
         --json       also write printed tables to bench_results/<figure>.json\n\
         --trace      record sj_obs spans and export a Chrome trace to bench_results/"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::from_iter(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.002);
        assert_eq!(a.trials, 1);
        assert!(!a.quick);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "0.01", "--trials", "3", "--no-cache"]);
        assert_eq!(a.scale, 0.01);
        assert_eq!(a.trials, 3);
        assert!(a.no_cache);
        assert!(!a.json);
    }

    #[test]
    fn json_flag_parses() {
        assert!(parse(&["--json"]).json);
        assert!(parse(&["--quick", "--json"]).json);
    }

    #[test]
    fn trace_flag_parses() {
        assert!(parse(&["--trace"]).trace);
        assert!(!parse(&["--json"]).trace);
    }

    #[test]
    fn quick_caps_scale() {
        let a = parse(&["--scale", "0.5", "--quick"]);
        assert!(a.scale <= 0.0005);
    }
}
