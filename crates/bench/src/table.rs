//! Fixed-width table printing for the figure binaries.

/// Prints a header + rows as an aligned plain-text table (stdout is the
/// harness's output medium; every figure binary prints the series the
/// paper plots).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    println!("{}", fmt_row(header.to_vec()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    for r in rows {
        println!("{}", fmt_row(r.iter().map(|s| s.as_str()).collect()));
    }
}

/// Formats seconds with sensible precision across magnitudes.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a ratio (speedup) with two decimals and a trailing ×.
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

/// Geometric-mean-free simple average (what the paper's red/blue summary
/// lines show).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(12.345), "12.35s");
        assert_eq!(fmt_speedup(26.91), "26.91x");
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        print_table("empty", &["x"], &[]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        print_table("bad", &["a", "b"], &[vec!["1".into()]]);
    }
}
