//! Fixed-width table printing for the figure binaries, plus the optional
//! machine-readable JSON export behind `--json`.

use crate::cli::Args;
use sj_obs::Json;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Prints a header + rows as an aligned plain-text table (stdout is the
/// harness's output medium; every figure binary prints the series the
/// paper plots).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    println!("{}", fmt_row(header.to_vec()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    for r in rows {
        println!("{}", fmt_row(r.iter().map(|s| s.as_str()).collect()));
    }
}

/// Prints the table and, when `--json` was passed, also records it in
/// `bench_results/<figure>.json` — a JSON array of table objects
/// (`{"figure", "title", "header", "rows"}`) accumulated over the
/// process, sitting alongside the CSV sweep cache so downstream tooling
/// can consume every figure's numbers without scraping stdout.
pub fn emit_table(args: &Args, figure: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    print_table(title, header, rows);
    if args.json {
        match write_json_table(figure, title, header, rows) {
            Ok(path) => eprintln!("  (json: {})", path.display()),
            Err(e) => eprintln!("  warning: could not write JSON for {figure}: {e}"),
        }
    }
}

/// Appends one table to the process-wide JSON export for `figure` and
/// rewrites `bench_results/<figure>.json` (tables are small; rewriting
/// keeps the file a valid JSON array at all times). Cells that parse as
/// finite numbers are emitted as JSON numbers, everything else as
/// strings. Serialization goes through the workspace's shared writer
/// ([`sj_obs::Json`]), the same emitter the trace exporter and
/// `sj_serve`'s metrics snapshot use.
pub fn write_json_table(
    figure: &str,
    title: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    static TABLES: OnceLock<Mutex<HashMap<PathBuf, Vec<Json>>>> = OnceLock::new();
    let mut header_json = Json::arr();
    for h in header {
        header_json = header_json.push(*h);
    }
    let mut rows_json = Json::arr();
    for row in rows {
        let mut r = Json::arr();
        for cell in row {
            r = r.push(json_cell(cell));
        }
        rows_json = rows_json.push(r);
    }
    let table = Json::obj()
        .field("figure", figure)
        .field("title", title)
        .field("header", header_json)
        .field("rows", rows_json);

    let path = crate::output_dir().join(format!("{figure}.json"));
    let registry = TABLES.get_or_init(Mutex::default);
    let mut registry = registry.lock().expect("json registry poisoned");
    let tables = registry.entry(path.clone()).or_default();
    tables.push(table);
    let mut doc = Json::arr();
    for t in tables.iter() {
        doc = doc.push(t.clone());
    }
    fs::write(&path, doc.render_pretty())?;
    Ok(path)
}

fn json_cell(cell: &str) -> Json {
    match cell.trim().parse::<f64>() {
        Ok(v) if v.is_finite() => Json::Num(v),
        _ => Json::Str(cell.to_string()),
    }
}

/// Formats seconds with sensible precision across magnitudes.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a ratio (speedup) with two decimals and a trailing ×.
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

/// Geometric-mean-free simple average (what the paper's red/blue summary
/// lines show).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(12.345), "12.35s");
        assert_eq!(fmt_speedup(26.91), "26.91x");
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        print_table("empty", &["x"], &[]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        print_table("bad", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn json_cells_type_correctly() {
        assert_eq!(json_cell("1.25"), Json::Num(1.25));
        assert_eq!(json_cell(" 42 "), Json::Num(42.0));
        assert_eq!(json_cell("-0.5"), Json::Num(-0.5));
        assert_eq!(json_cell("1.2ms"), Json::Str("1.2ms".into()));
        assert_eq!(json_cell("nan"), Json::Str("nan".into()));
        assert_eq!(json_cell("-"), Json::Str("-".into()));
    }

    #[test]
    fn json_export_accumulates_tables_in_one_valid_file() {
        let figure = "test_json_export_scratch";
        let p1 =
            write_json_table(figure, "t1", &["a", "b"], &[vec!["1".into(), "x".into()]]).unwrap();
        let p2 = write_json_table(figure, "t2", &["c"], &[vec!["2.5".into()]]).unwrap();
        assert_eq!(p1, p2);
        let text = std::fs::read_to_string(&p1).unwrap();
        let doc = sj_obs::json::parse(&text).expect("export parses");
        let tables = doc.items();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].get("title").and_then(Json::as_str), Some("t1"));
        assert_eq!(tables[1].get("title").and_then(Json::as_str), Some("t2"));
        let rows = tables[0].get("rows").unwrap().items();
        assert_eq!(rows[0].items()[0].as_f64(), Some(1.0));
        assert_eq!(rows[0].items()[1].as_str(), Some("x"));
        assert_eq!(
            tables[1].get("rows").unwrap().items()[0].items()[0].as_f64(),
            Some(2.5)
        );
        let _ = std::fs::remove_file(&p1);
    }
}
