//! Figure 8 — speedup of GPU-SJ (with UNICOMP) over the multi-threaded
//! SUPEREGO for every dataset and ε (paper averages: 2.38× overall, ~2×
//! on the real-world datasets, with only a handful of losses).

use sj_bench::cache::SweepCache;
use sj_bench::cli::Args;
use sj_bench::runner::Algo;
use sj_bench::sweep::{seconds_of, sweep_dataset, BrutePolicy};
use sj_bench::table::{emit_table, fmt_speedup, mean};
use sj_datasets::catalog::{Catalog, Family};

fn main() {
    let args = Args::parse();
    let mut cache = SweepCache::open(args.scale, !args.no_cache);
    let catalog = Catalog::new();
    let algos = [Algo::SuperEgo, Algo::GpuUnicomp];

    let mut rows = Vec::new();
    let mut all = Vec::new();
    let mut real = Vec::new();
    let mut losses = 0usize;
    for spec in catalog.specs() {
        let points = sweep_dataset(spec, &args, &mut cache, &algos, BrutePolicy::Skip);
        for p in &points {
            let ego = seconds_of(p, Algo::SuperEgo).expect("measured");
            let gpu = seconds_of(p, Algo::GpuUnicomp).expect("measured");
            let speedup = ego / gpu.max(1e-12);
            all.push(speedup);
            if spec.family != Family::Synthetic {
                real.push(speedup);
            }
            if speedup < 1.0 {
                losses += 1;
            }
            rows.push(vec![
                spec.name.to_string(),
                format!("{:.3}", p.paper_eps),
                fmt_speedup(speedup),
            ]);
        }
    }
    emit_table(
        &args,
        "fig8_speedup_superego",
        &format!(
            "Figure 8: speedup of GPU-SJ (unicomp) over SuperEGO (scale {})",
            args.scale
        ),
        &["dataset", "eps", "speedup"],
        &rows,
    );
    println!(
        "\nAverage speedup: all datasets {}, real-world {} (paper: 2.38x / ~2x)",
        fmt_speedup(mean(&all)),
        fmt_speedup(mean(&real))
    );
    // The paper runs Super-EGO with 32 threads; this host has fewer. Under
    // a perfect-scaling assumption, a 32-thread Super-EGO would be
    // (32 / host_threads)x faster, giving the normalized comparison below.
    let host_threads = rayon::current_num_threads().max(1) as f64;
    let norm = host_threads / 32.0;
    println!(
        "Normalized to the paper's 32 Super-EGO threads (host has {}): all {}, real-world {}",
        host_threads,
        fmt_speedup(mean(&all) * norm),
        fmt_speedup(mean(&real) * norm)
    );
    println!(
        "Measurements where SuperEGO wins (speedup < 1): {losses} of {} (paper: 6)",
        all.len()
    );
    println!(
        "Expected shape: SuperEGO fares worst on uniform synthetic data (no reordering benefit)."
    );
}
