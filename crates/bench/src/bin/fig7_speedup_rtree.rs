//! Figure 7 — speedup of GPU-SJ (with UNICOMP) over CPU-RTREE for every
//! dataset and ε of Figures 4–6, plus the overall average (the paper
//! reports 26.9× on its hardware; the shape to reproduce is: smallest
//! gains on the small low-D workloads, largest on 4–6-D where R-tree
//! index search degrades fastest).

use sj_bench::cache::SweepCache;
use sj_bench::cli::Args;
use sj_bench::runner::Algo;
use sj_bench::sweep::{seconds_of, sweep_dataset, BrutePolicy};
use sj_bench::table::{emit_table, fmt_speedup, mean};
use sj_datasets::catalog::Catalog;

fn main() {
    let args = Args::parse();
    let mut cache = SweepCache::open(args.scale, !args.no_cache);
    let catalog = Catalog::new();
    let algos = [Algo::CpuRtree, Algo::GpuUnicomp];

    let mut rows = Vec::new();
    let mut all_speedups = Vec::new();
    let mut per_dim: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for spec in catalog.specs() {
        let points = sweep_dataset(spec, &args, &mut cache, &algos, BrutePolicy::Skip);
        for p in &points {
            let rtree = seconds_of(p, Algo::CpuRtree).expect("measured");
            let gpu = seconds_of(p, Algo::GpuUnicomp).expect("measured");
            let speedup = rtree / gpu.max(1e-12);
            all_speedups.push(speedup);
            per_dim.entry(spec.dim).or_default().push(speedup);
            rows.push(vec![
                spec.name.to_string(),
                format!("{:.3}", p.paper_eps),
                fmt_speedup(speedup),
            ]);
        }
    }
    emit_table(
        &args,
        "fig7_speedup_rtree",
        &format!(
            "Figure 7: speedup of GPU-SJ (unicomp) over CPU-RTREE (scale {})",
            args.scale
        ),
        &["dataset", "eps", "speedup"],
        &rows,
    );
    let dim_rows: Vec<Vec<String>> = per_dim
        .iter()
        .map(|(d, v)| vec![format!("{d}-D"), fmt_speedup(mean(v))])
        .collect();
    emit_table(
        &args,
        "fig7_speedup_rtree",
        "Average speedup by dimensionality",
        &["n", "avg speedup"],
        &dim_rows,
    );
    println!(
        "\nAverage speedup over CPU-RTREE across all datasets: {} (paper: 26.9x on a TITAN X vs 1 CPU core)",
        fmt_speedup(mean(&all_speedups))
    );
    println!(
        "Expected shape: speedup grows with dimensionality; smallest on the small 2-D workloads."
    );
}
