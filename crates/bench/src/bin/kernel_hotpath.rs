//! Hot-path microbench: the per-thread Algorithm 1 kernel vs the
//! cell-major path (reordered layout + per-cell neighbor hoisting +
//! batched result reservation).
//!
//! Runs both paths over surrogates of the paper's 2M-point tier (uniform
//! Syn-2D and the SDSS galaxy surrogate), asserting pair-for-pair
//! identical tables, and reports per path:
//!
//! * **wall** — host wall time of the join kernels (plus the hoisting
//!   precompute for the cell-major path; estimation excluded from both),
//! * **modeled** — the same quantities through the device time model,
//! * **L1 hit** — the cache simulator's hit rate for one profiled launch
//!   of the join kernel (the paper's Table II methodology).
//!
//! Every table is also written to `bench_results/kernel_hotpath.json` so
//! the perf trajectory is tracked from this PR on. The run *asserts* the
//! acceptance bars: the cell-major path is never slower on modeled time,
//! and (full runs) ≥ 1.3× faster in wall-clock on the syn-2M surrogate.
//!
//! Note: like `scaling_devices`, `--trials` is floored at 3 — the
//! asserted wall-clock ratio is too noisy at best-of-1.

use grid_join::cell_major::{CellMajorPlan, CellMajorSelfJoinKernel};
use grid_join::kernels::SelfJoinKernel;
use grid_join::{DeviceGrid, GpuSelfJoin, GridIndex, HotPath, Pair, SelfJoinConfig};
use sim_gpu::append::AppendBuffer;
use sim_gpu::{Device, DeviceSpec, LaunchConfig, ProfiledLaunch};
use sj_bench::cli::Args;
use sj_bench::eps_for_selectivity;
use sj_bench::table::{emit_table, fmt_secs, fmt_speedup};
use sj_datasets::{sdss, synthetic, Dataset};
use std::time::Duration;

struct PathRun {
    wall: Duration,
    modeled: Duration,
    pairs: usize,
    table: grid_join::NeighborTable,
}

/// Best-of-`trials` batched join on a prebuilt grid; wall/modeled cover
/// the join kernels plus (cell-major) the hoisting pass.
fn run_path(data: &Dataset, grid: &GridIndex, path: HotPath, trials: usize) -> PathRun {
    let mut best: Option<PathRun> = None;
    for _ in 0..trials {
        let join = GpuSelfJoin::default_device().with_config(SelfJoinConfig {
            hot_path: path,
            ..SelfJoinConfig::default()
        });
        let out = join.run_on_grid(data, grid).expect("join failed");
        let b = &out.report.batching;
        let run = PathRun {
            wall: b.kernel_time + b.hoist_time,
            modeled: b.modeled_kernel_time + b.modeled_hoist_time,
            pairs: out.table.total_pairs(),
            table: out.table,
        };
        if best.as_ref().is_none_or(|p| run.wall < p.wall) {
            best = Some(run);
        }
    }
    best.expect("at least one trial")
}

/// L1 hit rate of one profiled launch of the path's join kernel.
fn l1_hit_rate(data: &Dataset, grid: &GridIndex, path: HotPath, result_capacity: usize) -> f64 {
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, data, grid).expect("upload");
    let results = AppendBuffer::<Pair>::new(device.pool(), result_capacity).expect("buffer");
    let metrics = match path {
        HotPath::PerThread => {
            let kernel = SelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                results: &results,
                query_offset: 0,
                query_count: data.len(),
                unicomp: true,
                cell_order: false,
                ownership: None,
            };
            ProfiledLaunch::run(&device, LaunchConfig::default(), data.len(), &kernel).1
        }
        HotPath::CellMajor => {
            let (plan, _) = CellMajorPlan::build(&device, &dg, true, LaunchConfig::default())
                .expect("plan build");
            let kernel = CellMajorSelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                plan: &plan,
                results: &results,
                slot_offset: 0,
                slot_count: data.len(),
                ownership: None,
            };
            ProfiledLaunch::run(&device, LaunchConfig::default(), data.len(), &kernel).1
        }
    };
    assert!(!results.overflowed(), "profiling buffer overflow");
    metrics.hit_rate()
}

fn main() {
    let mut args = Args::parse();
    // This binary *is* the perf tracker: always persist its tables.
    args.json = true;

    // Surrogates of the paper's 2M-point tier. The full run uses a floor
    // high enough that the wall-clock ratio is stable; quick smoke runs
    // shrink it.
    let floor = if args.quick { 8_000 } else { 30_000 };
    let n = ((2_000_000.0 * args.scale) as usize).clamp(floor, 2_000_000);
    let workloads: Vec<(&str, Dataset)> = vec![
        ("syn-2M", synthetic::uniform(2, n, 42)),
        ("SDSS-2M", sdss::sdss2d(n, 305)),
    ];
    let trials = args.trials.max(3);

    let mut syn_wall_speedup = f64::NAN;
    for (name, data) in &workloads {
        let eps = eps_for_selectivity(data, 24.0);
        let grid = GridIndex::build(data, eps).expect("grid build");

        let per_thread = run_path(data, &grid, HotPath::PerThread, trials);
        let cell_major = run_path(data, &grid, HotPath::CellMajor, trials);
        assert_eq!(
            cell_major.table, per_thread.table,
            "{name}: cell-major and per-thread paths disagree"
        );

        // Profiled L1 hit rates (Table II methodology) on the true access
        // stream of each path's join kernel.
        let capacity = (per_thread.pairs * 2).max(1 << 16);
        let pt_hit = l1_hit_rate(data, &grid, HotPath::PerThread, capacity);
        let cm_hit = l1_hit_rate(data, &grid, HotPath::CellMajor, capacity);

        let wall_speedup = per_thread.wall.as_secs_f64() / cell_major.wall.as_secs_f64().max(1e-12);
        let modeled_speedup =
            per_thread.modeled.as_secs_f64() / cell_major.modeled.as_secs_f64().max(1e-12);
        if *name == "syn-2M" {
            syn_wall_speedup = wall_speedup;
        }

        emit_table(
            &args,
            "kernel_hotpath",
            &format!(
                "Hot path: {name} (|D| = {n}, eps = {eps:.4}, selectivity {:.1}, best of {trials})",
                per_thread.pairs as f64 / n as f64
            ),
            &[
                "path",
                "wall",
                "modeled",
                "speedup (wall)",
                "speedup (modeled)",
                "L1 hit",
                "pairs",
            ],
            &[
                vec![
                    "per-thread".into(),
                    fmt_secs(per_thread.wall.as_secs_f64()),
                    fmt_secs(per_thread.modeled.as_secs_f64()),
                    "1.00x".into(),
                    "1.00x".into(),
                    format!("{pt_hit:.3}"),
                    format!("{}", per_thread.pairs),
                ],
                vec![
                    "cell-major".into(),
                    fmt_secs(cell_major.wall.as_secs_f64()),
                    fmt_secs(cell_major.modeled.as_secs_f64()),
                    fmt_speedup(wall_speedup),
                    fmt_speedup(modeled_speedup),
                    format!("{cm_hit:.3}"),
                    format!("{}", cell_major.pairs),
                ],
            ],
        );

        // Smoke bar (CI runs --quick): the cell-major path is never
        // slower on modeled time, within wall-clock measurement noise.
        assert!(
            cell_major.modeled.as_secs_f64() <= per_thread.modeled.as_secs_f64() * 1.05,
            "{name}: cell-major modeled time regressed ({:?} vs {:?})",
            cell_major.modeled,
            per_thread.modeled
        );

        // Tracing-overhead bar: with tracing disabled every sj_obs call
        // site is one relaxed atomic load and an inert guard. Measure
        // that per-call cost directly, count the call sites one traced
        // run of the same join actually hits, and bound their product
        // against the join's wall time.
        if *name == "syn-2M" {
            sj_obs::set_enabled(false);
            let iters = 2_000_000u64;
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                let span = sj_obs::Span::enter("bench.probe");
                std::hint::black_box(span.id());
            }
            let per_call = t0.elapsed().as_secs_f64() / iters as f64;

            sj_obs::trace::clear();
            sj_obs::set_enabled(true);
            let _ = run_path(data, &grid, HotPath::CellMajor, 1);
            sj_obs::set_enabled(false);
            let spans = sj_obs::drain().len();

            let overhead = per_call * spans as f64;
            let pct = 100.0 * overhead / cell_major.wall.as_secs_f64().max(1e-12);
            println!(
                "\ntracing disabled-path overhead: {spans} call sites x {:.1}ns \
                 = {:.2}us ({pct:.3}% of the cell-major join wall; bar <= 2%)",
                per_call * 1e9,
                overhead * 1e6
            );
            assert!(
                pct <= 2.0,
                "disabled tracing costs {pct:.2}% of the join hot path (bar: 2%)"
            );
        }
    }

    println!(
        "\nsyn-2M wall-clock speedup (cell-major vs per-thread): {} (acceptance bar: 1.30x)",
        fmt_speedup(syn_wall_speedup)
    );
    if !args.quick {
        assert!(
            syn_wall_speedup >= 1.3,
            "hot-path speedup regressed: {syn_wall_speedup:.2}x on syn-2M (need >= 1.3x)"
        );
    }
}
