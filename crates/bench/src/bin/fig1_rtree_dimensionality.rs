//! Figure 1 — the motivating experiment.
//!
//! (a) R-tree self-join response time and average neighbors/point vs
//! dimension (Syn-nD, 2×10⁶ points, ε = 1). The paper's shape: a U-curve
//! in time (worst at 2-D from the huge result set, degrading again toward
//! 6-D from index-search exhaustion) and an avg-neighbors curve that
//! falls by orders of magnitude with dimension.
//!
//! (b) Time vs ε on the 6-D dataset (ε ∈ 4..12): super-linear growth as
//! the search hyper-volume expands.

use rtree::rtree_self_join;
use sj_bench::cli::Args;
use sj_bench::table::{emit_table, fmt_secs};
use sj_datasets::catalog::Catalog;
use sj_datasets::synthetic;

fn main() {
    let args = Args::parse();
    let catalog = Catalog::new();

    // Panel (a): dimensions 2..6 at paper ε = 1.
    let mut rows = Vec::new();
    for dim in 2..=6usize {
        let spec = catalog
            .get(&format!("Syn{dim}D2M"))
            .expect("catalog covers 2..6 D");
        let count = spec.scaled_count(args.scale);
        let data = synthetic::uniform(dim, count, spec.seed);
        let stretch = (count as f64 / spec.paper_count as f64).powf(-1.0 / dim as f64);
        let eps = 1.0 * stretch;
        let (table, report) = rtree_self_join(&data, eps);
        rows.push(vec![
            format!("{dim}"),
            format!("{count}"),
            format!("{eps:.4}"),
            fmt_secs(report.query.as_secs_f64()),
            format!("{:.2}", table.avg_neighbors()),
            format!("{}", report.candidates),
        ]);
    }
    emit_table(
        &args,
        "fig1_rtree_dimensionality",
        &format!(
            "Figure 1a: R-tree self-join vs dimension (Syn-nD, paper eps=1, scale {})",
            args.scale
        ),
        &["n", "|D|", "eps", "time", "avg neighbors", "candidates"],
        &rows,
    );

    // Panel (b): Syn6D2M, ε sweep 4..12 (paper's x-axis).
    let spec = catalog.get("Syn6D2M").unwrap();
    let count = spec.scaled_count(args.scale);
    let data = synthetic::uniform(6, count, spec.seed);
    let stretch = (count as f64 / spec.paper_count as f64).powf(-1.0 / 6.0);
    let mut rows = Vec::new();
    for paper_eps in [4.0, 6.0, 8.0, 10.0, 12.0] {
        let eps = paper_eps * stretch;
        let (table, report) = rtree_self_join(&data, eps);
        rows.push(vec![
            format!("{paper_eps}"),
            format!("{eps:.3}"),
            fmt_secs(report.query.as_secs_f64()),
            format!("{:.2}", table.avg_neighbors()),
        ]);
    }
    emit_table(
        &args,
        "fig1_rtree_dimensionality",
        "Figure 1b: R-tree time vs eps (Syn6D2M)",
        &["eps (paper)", "eps (scaled)", "time", "avg neighbors"],
        &rows,
    );
    println!("\nExpected shape: (a) worst times at n=2 and n=6, avg neighbors falling with n;");
    println!("(b) time and avg neighbors rising super-linearly with eps.");
}
