//! Table I — dataset inventory.
//!
//! Prints the paper's Table I (name, |D|, n) alongside the scaled sizes
//! this reproduction runs and basic generated-shape statistics (bounding
//! box, density) from a small sample of each generator.

use sj_bench::cli::Args;
use sj_bench::table::emit_table;
use sj_datasets::catalog::Catalog;
use sj_datasets::stats;

fn main() {
    let args = Args::parse();
    let catalog = Catalog::new();
    let rows: Vec<Vec<String>> = catalog
        .specs()
        .iter()
        .map(|spec| {
            let sample = spec.generate((0.0005f64).min(args.scale));
            let ext = stats::extent(&sample).expect("non-empty sample");
            vec![
                spec.name.to_string(),
                format!("{}", spec.paper_count),
                format!("{}", spec.dim),
                format!("{}", spec.scaled_count(args.scale)),
                format!(
                    "{:.3}..{:.3}",
                    spec.paper_epsilons[0], spec.paper_epsilons[4]
                ),
                format!(
                    "{:.3}..{:.3}",
                    spec.scaled_epsilons(args.scale)[0],
                    spec.scaled_epsilons(args.scale)[4]
                ),
                format!("{:.2e}", ext.density),
            ]
        })
        .collect();
    emit_table(
        &args,
        "table1_datasets",
        &format!("Table I: datasets (scale {})", args.scale),
        &[
            "Dataset",
            "|D| (paper)",
            "n",
            "|D| (scaled)",
            "eps (paper)",
            "eps (scaled)",
            "density",
        ],
        &rows,
    );
    println!(
        "\nSW-/SDSS- are shape-matched surrogates (see DESIGN.md); Syn- are uniform in [0,100]^n."
    );
}
