//! Skew ablation — the paper's "future work includes examining skewed
//! data in greater detail" (§II), plus its §VI-C claim that uniform data
//! is the grid's worst case.
//!
//! Sweeps a family of datasets from fully uniform to heavily clustered
//! (fixed |D| and ε) and reports, for each skew level: non-empty cell
//! count, average points per cell, GPU-SJ modeled response time
//! (±UNICOMP), Super-EGO time, and the kernel's warp-imbalance /
//! L1-hit-rate profile. Expected shape: skew reduces non-empty cells and
//! index-search overhead (uniform = worst case for the grid) while
//! raising per-cell densities and warp imbalance; cell-ordered scheduling
//! recovers regularity.

use grid_join::kernels::SelfJoinKernel;
use grid_join::{DeviceGrid, GpuSelfJoin, GridIndex, HotPath, Pair, SelfJoinConfig};
use sim_gpu::append::AppendBuffer;
use sim_gpu::work::launch_work_profiled;
use sim_gpu::{launch_profiled, Device, DeviceSpec, LaunchConfig};
use sj_bench::cli::Args;
use sj_bench::table::{emit_table, fmt_secs};
use sj_datasets::synthetic::{clustered, uniform};
use sj_datasets::Dataset;
use superego::SuperEgo;

fn dataset_for(skew: usize, n: usize) -> (String, Dataset) {
    match skew {
        0 => ("uniform".to_string(), uniform(2, n, 1234)),
        _ => {
            // Fewer clusters and tighter sigma = more skew.
            let clusters = [32, 12, 5, 2][skew - 1];
            let sigma = [4.0, 2.5, 1.5, 0.8][skew - 1];
            let background = [0.3, 0.2, 0.1, 0.05][skew - 1];
            (
                format!("skew-{skew} ({clusters} clusters, sigma {sigma})"),
                clustered(2, n, clusters, sigma, background, 1234),
            )
        }
    }
}

fn main() {
    let args = Args::parse();
    let n = (40_000.0 * (args.scale / 0.002)) as usize;
    let n = n.clamp(4_000, 400_000);
    let eps = 0.8;
    let mut rows = Vec::new();
    for skew in 0..=4usize {
        let (label, data) = dataset_for(skew, n);
        let grid = GridIndex::build(&data, eps).expect("grid");
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&device, &data, &grid).expect("upload");

        // Work/cache profile of the plain kernel.
        let results = AppendBuffer::<Pair>::new(device.pool(), 64_000_000).expect("buffer");
        let kernel = SelfJoinKernel {
            grid: &dg,
            eps_sq: dg.epsilon * dg.epsilon,
            results: &results,
            query_offset: 0,
            query_count: data.len(),
            unicomp: false,
            cell_order: false,
            ownership: None,
        };
        let (_, work) = launch_work_profiled(&device, LaunchConfig::default(), data.len(), &kernel);
        let (_, cache) = launch_profiled(&device, LaunchConfig::default(), data.len(), &kernel);
        drop(results);
        drop(dg);

        // Response times.
        let gpu = GpuSelfJoin::default_device()
            .unicomp(false)
            .run(&data, eps)
            .expect("gpu");
        let uni = GpuSelfJoin::default_device()
            .unicomp(true)
            .run(&data, eps)
            .expect("uni");
        // Query-ordering ablation targets the per-thread path explicitly
        // (the default cell-major path is inherently cell-ordered).
        let ordered_cfg = SelfJoinConfig {
            cell_order_queries: true,
            hot_path: HotPath::PerThread,
            ..SelfJoinConfig::default()
        };
        let ord = GpuSelfJoin::default_device()
            .with_config(ordered_cfg)
            .run(&data, eps)
            .expect("ordered");
        assert_eq!(gpu.table, uni.table);
        assert_eq!(gpu.table, ord.table);
        let (ego_table, ego) = SuperEgo::default().self_join(&data, eps);
        assert_eq!(ego_table, gpu.table);

        rows.push(vec![
            label,
            format!("{}", grid.non_empty_cells()),
            format!("{:.1}", data.len() as f64 / grid.non_empty_cells() as f64),
            format!("{:.2}", gpu.table.avg_neighbors()),
            fmt_secs(gpu.report.modeled_total.as_secs_f64()),
            fmt_secs(uni.report.modeled_total.as_secs_f64()),
            fmt_secs(ord.report.modeled_total.as_secs_f64()),
            fmt_secs((ego.sort_time + ego.join_time).as_secs_f64()),
            format!("{:.2}", work.mean_warp_imbalance()),
            format!("{:.3}", cache.hit_rate()),
        ]);
    }
    emit_table(
        &args,
        "ablation_skew",
        &format!("Skew ablation: 2-D, |D| = {n}, eps = {eps}"),
        &[
            "dataset",
            "non-empty cells",
            "pts/cell",
            "avg neighbors",
            "GPU",
            "GPU+unicomp",
            "GPU+cell-order",
            "SuperEGO",
            "warp imbalance",
            "L1 hit rate",
        ],
        &rows,
    );
    println!("\nExpected: non-empty cells fall and pts/cell rise with skew (uniform is the");
    println!("grid's worst case, paper §VI-C); warp imbalance rises with skew; cell-ordered");
    println!("scheduling and UNICOMP stay result-identical throughout (asserted).");
}
