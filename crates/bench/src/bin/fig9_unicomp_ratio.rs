//! Figure 9 — impact of UNICOMP: ratio of GPU-SJ response times *without*
//! over *with* the optimization, per dataset and ε, in the paper's three
//! panels (real-world, Syn-2M, Syn-10M).
//!
//! Expected shape: ratios ≳ 1 everywhere (UNICOMP is safe), within ~1.5
//! on 2-D real-world data, and ≥ 2 on the 5-/6-D synthetic datasets where
//! the paper measures improved cache utilization (Table II).

use sj_bench::cache::SweepCache;
use sj_bench::cli::Args;
use sj_bench::runner::Algo;
use sj_bench::sweep::{seconds_of, sweep_dataset, BrutePolicy};
use sj_bench::table::{emit_table, mean};
use sj_datasets::catalog::{Catalog, DatasetSpec};

fn panel(title: &str, specs: &[&DatasetSpec], args: &Args, cache: &mut SweepCache) {
    let algos = [Algo::Gpu, Algo::GpuUnicomp];
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for spec in specs {
        let points = sweep_dataset(spec, args, cache, &algos, BrutePolicy::Skip);
        for p in &points {
            let without = seconds_of(p, Algo::Gpu).expect("measured");
            let with = seconds_of(p, Algo::GpuUnicomp).expect("measured");
            let ratio = without / with.max(1e-12);
            ratios.push(ratio);
            rows.push(vec![
                spec.name.to_string(),
                format!("{:.3}", p.paper_eps),
                format!("{ratio:.2}"),
            ]);
        }
    }
    emit_table(
        args,
        "fig9_unicomp_ratio",
        title,
        &["dataset", "eps", "ratio (no-unicomp / unicomp)"],
        &rows,
    );
    println!("panel average ratio: {:.2}", mean(&ratios));
}

fn main() {
    let args = Args::parse();
    let mut cache = SweepCache::open(args.scale, !args.no_cache);
    let catalog = Catalog::new();

    let real: Vec<&DatasetSpec> = catalog.real_world().collect();
    panel(
        &format!(
            "Figure 9a: UNICOMP ratio, real-world (scale {})",
            args.scale
        ),
        &real,
        &args,
        &mut cache,
    );
    let syn2m: Vec<&DatasetSpec> = catalog.synthetic_tier("2M").collect();
    panel(
        "Figure 9b: UNICOMP ratio, Syn- 2M tier",
        &syn2m,
        &args,
        &mut cache,
    );
    let syn10m: Vec<&DatasetSpec> = catalog.synthetic_tier("10M").collect();
    panel(
        "Figure 9c: UNICOMP ratio, Syn- 10M tier",
        &syn10m,
        &args,
        &mut cache,
    );
}
