//! Device scaling — the sharded engine's headline figure.
//!
//! Runs the sharded multi-device self-join on 1/2/4/8 simulated TITAN X
//! devices over two surrogates of the paper's 2M-point workloads (uniform
//! Syn-2D and the SDSS galaxy surrogate) and reports the modeled response
//! time per device count plus the speedup over one device. A plain
//! single-device `GpuSelfJoin` row anchors the comparison.
//!
//! Times are the engine's modeled response times (partition + busiest
//! device stream — see `sj_shard::engine`): with simulated devices
//! time-sharing one host, modeled device time is the quantity that
//! reflects multi-device wall-clock, exactly as the paper's evaluation
//! reports modeled device response times for GPU-SJ.
//!
//! Expected shape: near-linear scaling at 2–4 devices, tapering at 8 as
//! halo replication and the serial partition pass grow relative to
//! per-device work. The run *asserts* ≥1.5× at 4 devices on the syn-2M
//! surrogate — the subsystem's acceptance bar.
//!
//! Note: `--trials` is floored at 3 here (unlike the other figure
//! binaries) — per-shard kernel walls are short enough that best-of-1
//! makes the scaling ratio noisy run to run.

use grid_join::GpuSelfJoin;
use sj_bench::cli::Args;
use sj_bench::eps_for_selectivity;
use sj_bench::table::{emit_table, fmt_secs, fmt_speedup};
use sj_datasets::{sdss, synthetic, Dataset};
use sj_shard::ShardedSelfJoin;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = Args::parse();
    // Surrogates of the paper's 2M-point tier. The scaling experiment
    // needs enough grid columns per shard for thin halos (the halo is one
    // ε-column per shard side), so its floor (20k points) is higher than
    // the other figures'.
    let n = ((2_000_000.0 * args.scale) as usize).clamp(20_000, 2_000_000);
    let workloads: Vec<(&str, Dataset)> = vec![
        ("syn-2M", synthetic::uniform(2, n, 42)),
        ("SDSS-2M", sdss::sdss2d(n, 305)),
    ];

    let mut speedup4_syn = 0.0;
    // See module docs: a 3-trial floor keeps the asserted ratio stable.
    let trials = args.trials.max(3);
    for (name, data) in &workloads {
        let eps = eps_for_selectivity(data, 24.0);

        let single = GpuSelfJoin::default_device()
            .run(data, eps)
            .expect("single-device join failed");
        let mut rows = vec![vec![
            "plain GPU-SJ".to_string(),
            "-".to_string(),
            "-".to_string(),
            fmt_secs(single.report.modeled_total.as_secs_f64()),
            "-".to_string(),
            format!("{}", single.table.total_pairs()),
        ]];

        let mut base = f64::NAN;
        for &devices in &DEVICE_COUNTS {
            let engine = ShardedSelfJoin::titan_x(devices);
            let mut best: Option<sj_shard::ShardedOutput> = None;
            for _ in 0..trials {
                let out = engine.run(data, eps).expect("sharded join failed");
                assert_eq!(
                    out.table.total_pairs(),
                    single.table.total_pairs(),
                    "{name}: sharded x{devices} disagrees with single-device"
                );
                assert_eq!(out.report.duplicates_merged, 0);
                if best
                    .as_ref()
                    .is_none_or(|b| out.report.modeled_total < b.report.modeled_total)
                {
                    best = Some(out);
                }
            }
            let out = best.expect("at least one trial");
            let modeled = out.report.modeled_total.as_secs_f64();
            if devices == 1 {
                base = modeled;
            }
            let speedup = base / modeled;
            if *name == "syn-2M" && devices == 4 {
                speedup4_syn = speedup;
            }
            rows.push(vec![
                format!("sharded x{devices}"),
                format!("{}", out.report.shards.len()),
                format!(
                    "{:.1}%",
                    100.0 * out.report.ghost_points as f64 / data.len() as f64
                ),
                fmt_secs(modeled),
                fmt_speedup(speedup),
                format!("{}", out.table.total_pairs()),
            ]);
        }
        emit_table(
            &args,
            "scaling_devices",
            &format!("Device scaling: {name} (|D| = {n}, eps = {eps:.3}, best of {trials} trials)"),
            &[
                "engine",
                "shards",
                "ghosts",
                "modeled time",
                "speedup vs x1",
                "pairs",
            ],
            &rows,
        );
    }

    println!(
        "\nsyn-2M speedup at 4 devices: {} (acceptance bar: 1.50x)",
        fmt_speedup(speedup4_syn)
    );
    assert!(
        speedup4_syn >= 1.5,
        "device scaling regressed: {speedup4_syn:.2}x at 4 devices on syn-2M (need >= 1.5x)"
    );
    println!("Expected shape: near-linear scaling at 2-4 devices, tapering at 8 as halo");
    println!("replication and the serial partition pass grow relative to per-device work.");
}
