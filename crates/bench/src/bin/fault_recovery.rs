//! Serving through a fault storm: exactness and goodput under device
//! failures.
//!
//! An open-loop query stream is offered to [`sj_serve`]'s
//! `SelfJoinService` on 4 simulated TITAN X devices at ~70% of modeled
//! pool capacity, twice over the identical stream:
//!
//! * **fault-free** — the reference run; its completed-query throughput
//!   (virtual QPS) is the goodput baseline.
//! * **fault storm** — a seeded IPPP storm of transient upload/launch
//!   failures and stragglers ([`sim_gpu::FaultPlan::storm`]) plus a
//!   pinned crash that takes one of the four devices down for the rest
//!   of the run. The service must degrade, not collapse: health-aware
//!   placement routes around the dead device, in-flight queries retry on
//!   survivors while their deadline still allows, and admission sheds
//!   with capacity-aware `retry_after` hints.
//!
//! The acceptance bar, asserted at the end:
//!
//! * every completed answer is pair-for-pair identical to a fresh
//!   `GpuSelfJoin` run at the same ε — faults never corrupt a result;
//! * goodput under the storm stays ≥ 60% of the fault-free goodput
//!   (one device of four is gone, so ~75% is the structural ceiling);
//! * p99 latency of completed queries stays under the SLO in both runs
//!   (admission keeps its promise for the queries it admits, even while
//!   the pool is degraded);
//! * the recovery machinery demonstrably fired: serve-level retries > 0
//!   and the crashed device is in probation when the stream drains.
//!
//! Latencies and throughput are virtual (modeled) seconds. Tables land
//! in `bench_results/fault_recovery.json`.

use grid_join::{GpuSelfJoin, NeighborTable, SelfJoinSession};
use sim_gpu::{DevicePool, FaultEvent, FaultKind, FaultPlan, StormConfig};
use sj_bench::cli::Args;
use sj_bench::eps_for_realized;
use sj_bench::table::emit_table;
use sj_datasets::synthetic;
use sj_serve::{AdmissionConfig, QueryRequest, SelfJoinService, ServeError, ServiceConfig};
use std::collections::HashMap;
use std::time::Duration;

/// In-band ε cycle (fractions of the base ε; everything ≥ 0.55 reuses
/// the resident index).
const CYCLE: [f64; 3] = [1.0, 0.8, 0.6];

const DEVICES: usize = 4;

/// Offered load as a fraction of modeled 4-device capacity: below 1.0 so
/// the fault-free run is comfortably inside the SLO and the storm run's
/// degradation is attributable to the faults, not to overload.
const LOAD: f64 = 0.7;

/// SLO as a multiple of the mean steady-state query cost.
const SLO_FACTOR: f64 = 12.0;

/// Internal admission target under the SLO (see `serve_slo`): projection
/// noise and retry detours must not push completed tails over the bar.
const GUARD_BAND: f64 = 0.65;
const DELAY_FACTOR: f64 = 1.2;

/// Minimum storm-run goodput as a fraction of fault-free goodput.
const GOODPUT_FLOOR: f64 = 0.6;

fn main() {
    let mut args = Args::parse();
    args.json = true;

    let floor = if args.quick { 4_000 } else { 12_000 };
    let n = ((1_000_000.0 * args.scale) as usize).clamp(floor, 1_000_000);
    let data = synthetic::uniform(2, n, 97);
    let base = eps_for_realized(&data, 16.0);
    let eps_set: Vec<f64> = CYCLE.iter().map(|f| base * f).collect();
    let queries = if args.quick { 60 } else { 240 };

    // Fresh-join reference tables for the exactness check.
    let join = GpuSelfJoin::default_device();
    let mut reference: HashMap<u64, NeighborTable> = HashMap::new();
    for &eps in &eps_set {
        let out = join.run(&data, eps).expect("reference join failed");
        reference.insert(eps.to_bits(), out.table);
    }

    // Steady-state cost calibration (same recipe as serve_slo): second
    // pass over a warm throwaway session defines pool capacity.
    let mean_cost = {
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        for &eps in &eps_set {
            session.query(eps).expect("calibration query failed");
        }
        let mut total = 0.0;
        for &eps in &eps_set {
            let out = session.query(eps).expect("calibration query failed");
            total += out.report.modeled_total.as_secs_f64();
        }
        total / eps_set.len() as f64
    };
    let slo = Duration::from_secs_f64(SLO_FACTOR * mean_cost);
    let offered_qps = LOAD * DEVICES as f64 / mean_cost;
    let stream: Vec<(f64, f64)> = (0..queries)
        .map(|i| (eps_set[i % eps_set.len()], i as f64 / offered_qps))
        .collect();

    // The seeded storm: transients and stragglers across the pool, plus
    // a pinned crash that permanently downs device 3 early in the run.
    // (Storm crashes are disabled so exactly one device is lost; the op
    // axis starts counting when the plan is armed, after warmup.)
    let storm = {
        let mut events = FaultPlan::storm(&StormConfig {
            seed: 1018,
            devices: DEVICES,
            horizon_ops: 2 * queries as u64,
            peak_rate: 0.15,
            crash_weight: 0.0,
            ..StormConfig::default()
        })
        .events()
        .to_vec();
        events.push(FaultEvent {
            device: DEVICES - 1,
            after_ops: 4,
            kind: FaultKind::Crash {
                heal_after_probes: u32::MAX,
            },
        });
        FaultPlan::new(events)
    };

    let mut rows = Vec::new();
    let mut goodput = [0.0f64; 2];
    let mut p99 = [0.0f64; 2];
    for (run, faults) in [(0usize, None), (1usize, Some(&storm))] {
        let service = SelfJoinService::new(
            DevicePool::titan_x(DEVICES),
            ServiceConfig {
                admission: AdmissionConfig {
                    slo: Duration::from_secs_f64(slo.as_secs_f64() * GUARD_BAND),
                    delay_factor: DELAY_FACTOR,
                    // One tenant offers the whole stream; the fair-share
                    // in-flight cap would turn a below-capacity run into
                    // artificial shedding.
                    tenant_max_inflight: usize::MAX,
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let id = service.register_dataset("syn", data.clone());
        // Two warm passes: resident snapshots on every device and a
        // steady-state cost model before any fault can fire.
        service.warm(id, &eps_set).expect("warm failed");
        service.warm(id, &eps_set).expect("warm failed");
        service.reset_metrics();
        let retries_before = sj_obs::registry()
            .counter("sj_serve_retries_total", &[])
            .get();
        if let Some(plan) = faults {
            service.pool().inject_faults(plan);
        }

        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for &(eps, arrival) in &stream {
            let req = QueryRequest::new("survivor", id, eps).at(Duration::from_secs_f64(arrival));
            match service.submit(req) {
                Ok(ticket) => tickets.push((eps, ticket)),
                Err(ServeError::Overloaded { retry_after }) => {
                    assert!(retry_after > Duration::ZERO);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        let mut failed = 0u64;
        for (eps, ticket) in tickets {
            match ticket.wait() {
                Ok(out) => assert_eq!(
                    &out.table,
                    &reference[&eps.to_bits()],
                    "served answer diverged from a fresh join (eps {eps:.4})"
                ),
                // A fault surfacing after the retry budget (or past the
                // query's deadline) is a legitimate degraded outcome —
                // a wrong answer never is.
                Err(ServeError::Join(e)) if faults.is_some() => {
                    assert!(e.is_fault(), "non-fault join error under storm: {e}");
                    failed += 1;
                }
                Err(e) => panic!("query failed: {e}"),
            }
        }
        let retries = sj_obs::registry()
            .counter("sj_serve_retries_total", &[])
            .get()
            - retries_before;

        let m = service.metrics();
        assert_eq!(m.total.failed, failed, "metrics disagree on failures");
        goodput[run] = m.total.qps;
        p99[run] = m.total.latency.p99;
        rows.push(vec![
            if run == 0 {
                "fault-free"
            } else {
                "fault storm"
            }
            .to_string(),
            format!("{}", m.total.completed),
            format!("{failed}"),
            format!("{rejected}"),
            format!("{retries}"),
            format!("{:.1}", m.total.qps),
            format!("{:.2}", m.total.latency.p99 * 1e3),
        ]);

        if faults.is_some() {
            assert!(retries > 0, "the storm must surface serve-level retries");
            assert!(
                !service.pool().is_healthy(DEVICES - 1),
                "the crashed device must still be in probation"
            );
            let snapshot = service.pool().health_snapshot();
            println!(
                "  storm: {} faults planned, health at drain: {snapshot:?}",
                storm.len()
            );
        }
        assert!(
            p99[run] <= slo.as_secs_f64(),
            "completed p99 {:.2}ms broke the {:.2}ms SLO ({} run)",
            p99[run] * 1e3,
            slo.as_secs_f64() * 1e3,
            if run == 0 { "fault-free" } else { "storm" }
        );
    }

    emit_table(
        &args,
        "fault_recovery",
        &format!(
            "Serving through a 1-of-{DEVICES}-device crash + transient storm \
             (|D| = {n}, {queries} queries at {LOAD}x capacity = {:.1} offered QPS, \
             SLO = {:.2}ms modeled)",
            offered_qps,
            slo.as_secs_f64() * 1e3
        ),
        &[
            "run",
            "completed",
            "failed",
            "rejected",
            "retries",
            "goodput QPS",
            "p99 ms",
        ],
        &rows,
    );

    let ratio = goodput[1] / goodput[0].max(f64::MIN_POSITIVE);
    assert!(
        ratio >= GOODPUT_FLOOR,
        "goodput collapsed under the storm: {:.1} vs {:.1} fault-free QPS \
         ({:.0}% < {:.0}% floor)",
        goodput[1],
        goodput[0],
        ratio * 100.0,
        GOODPUT_FLOOR * 100.0
    );
    println!(
        "\nacceptance bar: storm goodput {:.1} QPS >= {:.0}% of fault-free {:.1} QPS, \
         p99 under SLO in both runs, all completed answers exact — passed",
        goodput[1],
        GOODPUT_FLOOR * 100.0,
        goodput[0]
    );
}
