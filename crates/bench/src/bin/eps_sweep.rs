//! ε-sweep figure: rebuild-per-point vs one resident index generation.
//!
//! The paper's figures sweep ε across a workload, and the paper's
//! one-shot entry point pays grid build + snapshot upload + hoist at
//! *every* sweep point. A resident [`SelfJoinSession`] with
//! `build_headroom` sized to the sweep ceiling builds **once** — at the
//! largest ε of the sweep — and serves every ascending point from the
//! same generation (ε′ ≤ ε_built is exact; only the kernels' distance
//! threshold changes), with `reuse_floor` set so the first (smallest)
//! point already sits inside the validity band.
//!
//! For each sweep point this binary reports the fresh-join modeled cost
//! (`rebuild ms`) against the session's (`resident ms`), asserts the
//! session rebuilt exactly once for the whole curve and won on total
//! modeled time, and checks every answer pair-for-pair against the fresh
//! join. Tables land in `bench_results/eps_sweep.json`.

use grid_join::{GpuSelfJoin, SelfJoinSession, SessionConfig};
use sim_gpu::DevicePool;
use sj_bench::cli::Args;
use sj_bench::eps_for_realized;
use sj_bench::table::{emit_table, fmt_speedup};
use sj_datasets::{sdss, synthetic, Dataset};

/// Sweep ceiling over the base ε (the headroom the session builds with).
const SWEEP_SPAN: f64 = 1.8;

fn main() {
    let mut args = Args::parse();
    // This binary is a perf tracker: always persist its tables.
    args.json = true;

    let points = if args.quick { 6 } else { 10 };
    let floor = if args.quick { 6_000 } else { 20_000 };
    let n = ((2_000_000.0 * args.scale) as usize).clamp(floor, 2_000_000);
    let workloads: Vec<(&str, Dataset)> = vec![
        ("syn-2M", synthetic::uniform(2, n, 42)),
        ("SDSS-2M", sdss::sdss2d(n, 305)),
    ];

    for (name, data) in &workloads {
        // Ascending linear sweep from ε₀ to the ceiling ε₀ · SWEEP_SPAN,
        // starting at ~8 neighbours/point (the curve then rises with ε²).
        let eps0 = eps_for_realized(data, 8.0);
        let sweep: Vec<f64> = (0..points)
            .map(|i| eps0 * (1.0 + (SWEEP_SPAN - 1.0) * i as f64 / (points - 1) as f64))
            .collect();

        // The session builds once, at the ceiling: headroom lifts the
        // first build there, and the floor admits the whole sweep.
        let session =
            SelfJoinSession::new(data.clone(), DevicePool::titan_x(1)).with_config(SessionConfig {
                build_headroom: SWEEP_SPAN,
                reuse_floor: 1.0 / SWEEP_SPAN * 0.99,
                ..SessionConfig::default()
            });
        let join = GpuSelfJoin::default_device();

        let mut rows = Vec::new();
        let mut rebuild_total = 0.0;
        let mut resident_total = 0.0;
        for &eps in &sweep {
            let fresh = join.run(data, eps).expect("fresh join failed");
            let out = session.query(eps).expect("session query failed");
            assert_eq!(
                out.table, fresh.table,
                "{name}: resident answer diverged at eps {eps:.4}"
            );
            let rebuild = fresh.report.modeled_total.as_secs_f64();
            let resident = out.report.modeled_total.as_secs_f64();
            rebuild_total += rebuild;
            resident_total += resident;
            rows.push(vec![
                format!("{eps:.4}"),
                format!("{:.1}", out.table.avg_neighbors()),
                format!("{:.3}", rebuild * 1e3),
                format!("{:.3}", resident * 1e3),
                fmt_speedup(rebuild / resident),
                if out.reused_index { "reuse" } else { "build" }.into(),
            ]);
        }
        let stats = session.stats();
        rows.push(vec![
            "total".into(),
            "-".into(),
            format!("{:.3}", rebuild_total * 1e3),
            format!("{:.3}", resident_total * 1e3),
            fmt_speedup(rebuild_total / resident_total),
            format!("{} builds", stats.index_builds),
        ]);

        emit_table(
            &args,
            "eps_sweep",
            &format!(
                "Ascending eps sweep: rebuild-per-point vs resident session \
                 ({name}, |D| = {n}, {points} points, headroom {SWEEP_SPAN})"
            ),
            &[
                "eps",
                "avg nbrs",
                "rebuild ms",
                "resident ms",
                "speedup",
                "index",
            ],
            &rows,
        );

        assert_eq!(
            stats.index_builds, 1,
            "{name}: the whole sweep must reuse one index generation"
        );
        assert_eq!(stats.index_reuses, points as u64 - 1);
        assert!(
            resident_total < rebuild_total,
            "{name}: resident sweep ({resident_total:.6}s) must beat \
             rebuild-per-point ({rebuild_total:.6}s)"
        );
    }

    println!(
        "\nacceptance bar: one index build per sweep, resident total under \
         rebuild-per-point total, all answers exact — passed"
    );
}
