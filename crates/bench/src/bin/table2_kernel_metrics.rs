//! Table II — kernel metrics of GPU-SJ without and with UNICOMP.
//!
//! The paper profiles four dataset/ε points with the NVIDIA Visual
//! Profiler: SW2DA and SDSS2DA at ε = 0.3 (response-time ratio < 2) and
//! Syn5D2M / Syn6D2M at ε = 8 (ratio > 2). Reported per kernel:
//! theoretical occupancy and unified-cache bandwidth utilization, plus the
//! occupancy and cache-utilization *ratios* (UNICOMP / base).
//!
//! Expected shape: UNICOMP always lowers occupancy (more registers per
//! thread); it lowers cache utilization on the 2-D datasets (ratio < 1)
//! but *raises* it on the 5-/6-D datasets (ratio > 1) — the temporal-
//! locality effect the paper uses to explain super-2× speedups.

use grid_join::kernels::SelfJoinKernel;
use grid_join::{DeviceGrid, GridIndex, Pair};
use sim_gpu::append::AppendBuffer;
use sim_gpu::{Device, DeviceSpec, LaunchConfig, ProfiledLaunch};
use sj_bench::cli::Args;
use sj_bench::table::emit_table;
use sj_datasets::catalog::Catalog;

struct ProfilePoint {
    dataset: &'static str,
    paper_eps: f64,
}

const POINTS: [ProfilePoint; 4] = [
    ProfilePoint {
        dataset: "SW2DA",
        paper_eps: 0.3,
    },
    ProfilePoint {
        dataset: "SDSS2DA",
        paper_eps: 0.3,
    },
    ProfilePoint {
        dataset: "Syn5D2M",
        paper_eps: 8.0,
    },
    ProfilePoint {
        dataset: "Syn6D2M",
        paper_eps: 8.0,
    },
];

fn main() {
    let args = Args::parse();
    let catalog = Catalog::new();
    let mut rows = Vec::new();
    for pt in &POINTS {
        let spec = catalog.get(pt.dataset).expect("known dataset");
        let data = spec.generate(args.scale);
        // Same selectivity stretch the sweeps use.
        let stretch = (spec.scaled_count(args.scale) as f64 / spec.paper_count as f64)
            .powf(-1.0 / spec.dim as f64);
        let eps = pt.paper_eps * stretch;
        eprintln!(
            "profiling {} at paper eps {} (actual {eps:.4}, {} pts)…",
            spec.name,
            pt.paper_eps,
            data.len()
        );

        let grid = GridIndex::build(&data, eps).expect("grid build");
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&device, &data, &grid).expect("upload");

        let mut metrics = Vec::new();
        for unicomp in [false, true] {
            // A generous result buffer: profiling uses a single launch.
            let results =
                AppendBuffer::<Pair>::new(device.pool(), (data.len() * 4096).max(1 << 22))
                    .expect("result buffer");
            let kernel = SelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                results: &results,
                query_offset: 0,
                query_count: data.len(),
                unicomp,
                cell_order: false,
                ownership: None,
            };
            let (_stats, m) =
                ProfiledLaunch::run(&device, LaunchConfig::default(), data.len(), &kernel);
            assert!(!results.overflowed(), "profiling buffer overflow");
            metrics.push(m);
        }
        let base = &metrics[0];
        let uni = &metrics[1];
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", pt.paper_eps),
            format!(
                "{:.2}",
                base.wall.as_secs_f64() / uni.wall.as_secs_f64().max(1e-12)
            ),
            format!("{:.1}%", base.occupancy * 100.0),
            format!("{:.2}", base.unified_cache_gbs),
            format!("{:.1}%", uni.occupancy * 100.0),
            format!("{:.2}", uni.unified_cache_gbs),
            format!("{:.2}", uni.occupancy / base.occupancy),
            format!(
                "{:.2}",
                uni.unified_cache_gbs / base.unified_cache_gbs.max(1e-12)
            ),
            format!("{:.3}/{:.3}", base.hit_rate(), uni.hit_rate()),
        ]);
    }
    emit_table(
        &args,
        "table2_kernel_metrics",
        &format!(
            "Table II: kernel metrics without/with UNICOMP (scale {})",
            args.scale
        ),
        &[
            "Dataset",
            "eps",
            "Ratio resp. time",
            "Occupancy (GPU)",
            "Cache GB/s (GPU)",
            "Occupancy (UNICOMP)",
            "Cache GB/s (UNICOMP)",
            "Ratio occupancy",
            "Ratio cache util.",
            "L1 hit rate (base/uni)",
        ],
        &rows,
    );
    println!("\nPaper's values: occupancy 100%→75% (2-D), 62.5%→50% (5-/6-D);");
    println!("cache-utilization ratio ≈0.75 on SW2DA/SDSS2DA, 1.88/1.59 on Syn5D2M/Syn6D2M.");
}
