//! Figure 5 — response time vs ε on the 2–6-D uniform synthetic datasets
//! (2×10⁶-point tier), five algorithms.

use sj_bench::cache::SweepCache;
use sj_bench::cli::Args;
use sj_bench::sweep::print_response_time_panel;
use sj_datasets::catalog::Catalog;

fn main() {
    let args = Args::parse();
    let mut cache = SweepCache::open(args.scale, !args.no_cache);
    let catalog = Catalog::new();
    for spec in catalog.synthetic_tier("2M") {
        print_response_time_panel("fig5_syn2m", spec, &args, &mut cache);
    }
}
