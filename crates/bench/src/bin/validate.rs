//! Five-way cross-validation sweep — the release gate.
//!
//! Runs every algorithm on a matrix of dataset families, dimensionalities
//! and ε values and asserts identical result counts everywhere. Exits
//! non-zero on any mismatch (`run_algorithms` panics), so CI can gate on
//! this binary.

use sj_bench::cli::Args;
use sj_bench::runner::{run_algorithms, Algo};
use sj_bench::table::print_table;
use sj_datasets::synthetic::{clustered, uniform};
use sj_datasets::{sdss, sw, Dataset};

fn main() {
    let args = Args::parse();
    let n = ((2000.0 * (args.scale / 0.002)) as usize).clamp(500, 50_000);
    let cases: Vec<(String, Dataset, f64)> = vec![
        ("uniform-2d".into(), uniform(2, n, 1), 3.0),
        ("uniform-3d".into(), uniform(3, n, 2), 8.0),
        ("uniform-4d".into(), uniform(4, n / 2, 3), 14.0),
        ("uniform-5d".into(), uniform(5, n / 2, 4), 22.0),
        ("uniform-6d".into(), uniform(6, n / 2, 5), 30.0),
        ("clustered-2d".into(), clustered(2, n, 5, 1.0, 0.1, 6), 1.2),
        ("clustered-4d".into(), clustered(4, n / 2, 4, 2.0, 0.15, 7), 3.5),
        ("sw-2d".into(), sw::sw2d(n, 8), 4.0),
        ("sw-3d".into(), sw::sw3d(n, 9), 8.0),
        ("sdss-2d".into(), sdss::sdss2d(n, 10), 1.0),
    ];
    let mut rows = Vec::new();
    for (name, data, eps) in &cases {
        // run_algorithms panics on any count mismatch across the five.
        let ms = run_algorithms(data, *eps, &Algo::ALL, 1);
        rows.push(vec![
            name.clone(),
            format!("{}", data.len()),
            format!("{eps}"),
            format!("{}", ms[0].pairs),
            "agree".to_string(),
        ]);
    }
    print_table(
        "Cross-validation: GPU brute / R-tree / Super-EGO / GPU / GPU+unicomp",
        &["case", "|D|", "eps", "directed pairs", "status"],
        &rows,
    );
    println!("\nAll {} cases validated: five implementations agree exactly.", cases.len());
}
