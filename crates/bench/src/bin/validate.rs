//! Cross-validation sweep — the release gate.
//!
//! Two layers, both over the paper's Table I workloads (scaled):
//!
//! 1. **Count validation**: the five evaluated algorithms (GPU brute
//!    force, CPU-RTREE, Super-EGO, GPU-SJ, GPU-SJ+UNICOMP) must report
//!    identical directed-pair counts (`run_algorithms` panics on any
//!    mismatch).
//! 2. **Exact-table validation**: the sharded multi-device engine must be
//!    *pair-for-pair* identical to single-device GPU-SJ, the parallel
//!    host join and the R-tree — and its deduplicating merge must remove
//!    zero duplicates (the halo-ownership invariant). The per-thread
//!    kernel path (with and without UNICOMP) must likewise be
//!    pair-for-pair identical to the default cell-major hot path.
//!
//! Exits non-zero on any disagreement, so CI can gate on this binary.

use grid_join::{GpuSelfJoin, GridIndex, HotPath};
use rtree::rtree_self_join;
use sj_bench::cli::Args;
use sj_bench::runner::{run_algorithms, Algo};
use sj_bench::table::emit_table;
use sj_datasets::catalog::Catalog;
use sj_shard::ShardedSelfJoin;

fn main() {
    let args = Args::parse();
    let catalog = Catalog::new();
    let mut rows = Vec::new();
    for (i, spec) in catalog.specs().iter().enumerate() {
        let data = spec.generate(args.scale);
        let eps = spec.scaled_epsilons(args.scale)[2]; // mid-sweep ε
        eprintln!(
            "  validating {} ({} pts, eps {eps:.4})…",
            spec.name,
            data.len()
        );

        // Layer 1: five-way count agreement (panics on mismatch).
        let ms = run_algorithms(&data, eps, &Algo::ALL, 1);

        // Layer 2: exact neighbour-table agreement, sharded included.
        // Device count varies across cases to exercise 2/3/4-device pools.
        let devices = 2 + i % 3;
        let single = GpuSelfJoin::default_device()
            .run(&data, eps)
            .expect("single-device GPU-SJ failed");
        let sharded = ShardedSelfJoin::titan_x(devices)
            .run(&data, eps)
            .expect("sharded engine failed");
        assert_eq!(
            sharded.table, single.table,
            "{}: sharded (x{devices}) != single-device GPU-SJ",
            spec.name
        );
        assert_eq!(
            sharded.report.duplicates_merged, 0,
            "{}: sharded merge removed duplicates — ownership violated",
            spec.name
        );
        // Hot-path cross-check: `single` ran the default cell-major path;
        // the per-thread path must be pair-for-pair identical in both
        // traversal modes.
        for unicomp in [true, false] {
            let per_thread = GpuSelfJoin::default_device()
                .unicomp(unicomp)
                .hot_path(HotPath::PerThread)
                .run(&data, eps)
                .expect("per-thread GPU-SJ failed");
            assert_eq!(
                per_thread.table, single.table,
                "{}: per-thread (unicomp={unicomp}) != cell-major hot path",
                spec.name
            );
        }
        let grid = GridIndex::build(&data, eps).expect("grid build failed");
        let host = grid_join::host_self_join_parallel(&data, &grid);
        assert_eq!(host, single.table, "{}: host parallel != GPU-SJ", spec.name);
        let (rt, _) = rtree_self_join(&data, eps);
        assert_eq!(rt, single.table, "{}: R-tree != GPU-SJ", spec.name);
        assert_eq!(ms[0].pairs as usize, single.table.total_pairs());

        rows.push(vec![
            spec.name.to_string(),
            format!("{}", data.len()),
            format!("{eps:.4}"),
            format!("{}", ms[0].pairs),
            format!("x{devices}, {} shards", sharded.report.shards.len()),
            "agree".to_string(),
        ]);
    }
    emit_table(
        &args,
        "validate",
        "Cross-validation: brute / R-tree / Super-EGO / GPU / GPU+unicomp / sharded / host",
        &[
            "case",
            "|D|",
            "eps",
            "directed pairs",
            "sharded run",
            "status",
        ],
        &rows,
    );
    println!(
        "\nAll {} Table I workloads validated: counts agree across the five algorithms,\n\
         the per-thread kernels (±UNICOMP) are pair-for-pair identical to the cell-major\n\
         hot path, and the sharded engine is pair-for-pair identical to GPU-SJ, the\n\
         parallel host join and the R-tree (zero merge duplicates).",
        rows.len()
    );
}
