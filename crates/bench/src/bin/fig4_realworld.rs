//! Figure 4 — response time vs ε on the real-world surrogates
//! (SW2DA/B, SW3DA/B, SDSS2DA/B), five algorithms.
//!
//! Expected shape (paper): GPU-SJ beats CPU-RTREE on every panel and
//! SuperEGO on most; brute force is flat in ε and worst except at the
//! largest ε of small datasets.

use sj_bench::cache::SweepCache;
use sj_bench::cli::Args;
use sj_bench::sweep::print_response_time_panel;
use sj_datasets::catalog::Catalog;

fn main() {
    let args = Args::parse();
    let mut cache = SweepCache::open(args.scale, !args.no_cache);
    let catalog = Catalog::new();
    for spec in catalog.real_world() {
        print_response_time_panel("fig4_realworld", spec, &args, &mut cache);
    }
}
