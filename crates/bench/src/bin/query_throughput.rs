//! Query-serving throughput: resident [`SelfJoinSession`] vs
//! rebuild-per-query, on a mixed-ε query stream.
//!
//! The paper's pipeline answers *one* query; a serving deployment answers
//! a stream of them against a pinned dataset. This bench replays a
//! 64-query stream whose ε values wander inside (and occasionally
//! outside) the session's validity band, over surrogates of the paper's
//! 2M-point tier (uniform Syn-2D and the SDSS galaxy surrogate), on
//! 1/2/4 simulated TITAN X devices:
//!
//! * **rebuild** — every query runs a fresh [`GpuSelfJoin`]: grid build +
//!   snapshot upload + estimate + kernels, queries round-robined across
//!   devices. This is what serving traffic through the paper's one-shot
//!   entry point costs.
//! * **session** — one [`SelfJoinSession`] per pool: the built index,
//!   device snapshots and hoisted cell-major plan stay resident; in-band
//!   queries pay only estimate + kernels, and the pool lease rotation
//!   spreads the stream across devices.
//!
//! Modeled QPS is `queries / makespan`, with the makespan the busiest
//! device's accumulated modeled response time (the same convention as
//! `scaling_devices`). Each workload asserts the acceptance bar:
//! **session ≥ 2× rebuild QPS** at every device count. A sample of
//! session answers is also checked pair-for-pair against fresh joins.
//! Every table is written to `bench_results/query_throughput.json`.

use grid_join::{GpuSelfJoin, NeighborTable, SelfJoinSession, SessionConfig};
use sim_gpu::DevicePool;
use sj_bench::cli::Args;
use sj_bench::eps_for_realized;
use sj_bench::table::{emit_table, fmt_speedup};
use sj_datasets::{sdss, synthetic, Dataset};
use std::collections::HashMap;

/// In-band wander pattern (fractions of the stream's base ε). The stream
/// opens at 1.0 so the first build's band covers the cycle; the floor
/// value 0.57 sits just above the default 0.5 reuse floor.
const CYCLE: [f64; 16] = [
    1.0, 0.92, 0.78, 0.85, 0.6, 0.95, 0.7, 0.88, 0.64, 0.99, 0.74, 0.81, 0.57, 0.9, 0.67, 0.83,
];
const QUERIES: usize = 64;
/// One deliberate out-of-band spike (ε grows past the built cell width),
/// forcing a mid-stream rebuild cascade like a real mixed tenant would.
const SPIKE_AT: usize = 32;
const SPIKE_FACTOR: f64 = 1.2;

/// The 64-query ε stream for a given base ε.
fn stream(base: f64) -> Vec<f64> {
    (0..QUERIES)
        .map(|i| {
            if i == SPIKE_AT {
                base * SPIKE_FACTOR
            } else {
                base * CYCLE[i % CYCLE.len()]
            }
        })
        .collect()
}

struct BaselineRun {
    /// Modeled response time per *distinct* ε (rebuild cost is
    /// ε-dependent, not position-dependent).
    modeled: HashMap<u64, f64>,
    /// Fresh neighbour tables per distinct ε, for the equivalence check.
    tables: HashMap<u64, NeighborTable>,
}

/// Runs the rebuild-per-query baseline once per distinct ε.
fn run_baseline(data: &Dataset, epsilons: &[f64]) -> BaselineRun {
    let join = GpuSelfJoin::default_device();
    let mut modeled = HashMap::new();
    let mut tables = HashMap::new();
    for &eps in epsilons {
        let key = eps.to_bits();
        if modeled.contains_key(&key) {
            continue;
        }
        let out = join.run(data, eps).expect("baseline join failed");
        modeled.insert(key, out.report.modeled_total.as_secs_f64());
        tables.insert(key, out.table);
    }
    BaselineRun { modeled, tables }
}

fn main() {
    let mut args = Args::parse();
    // This binary is a perf tracker: always persist its tables.
    args.json = true;

    let floor = if args.quick { 6_000 } else { 20_000 };
    let n = ((2_000_000.0 * args.scale) as usize).clamp(floor, 2_000_000);
    let workloads: Vec<(&str, Dataset)> = vec![
        ("syn-2M", synthetic::uniform(2, n, 42)),
        ("SDSS-2M", sdss::sdss2d(n, 305)),
    ];

    for (name, data) in &workloads {
        // Calibrated so both workloads realize ~24 neighbours/point — the
        // paper's SDSS-tier selectivity — keeping the stream index-bound
        // rather than result-download-bound (see `eps_for_realized`).
        let base = eps_for_realized(data, 24.0);
        let epsilons = stream(base);
        let baseline = run_baseline(data, &epsilons);

        let mut rows = Vec::new();
        for devices in [1usize, 2, 4] {
            // Rebuild-per-query: round-robin the stream across devices;
            // the busiest device bounds completion.
            let mut busy = vec![0.0f64; devices];
            for (i, eps) in epsilons.iter().enumerate() {
                busy[i % devices] += baseline.modeled[&eps.to_bits()];
            }
            let rebuild_makespan = busy.iter().cloned().fold(0.0, f64::max);
            let rebuild_qps = QUERIES as f64 / rebuild_makespan;

            // Resident session over the pool: the lease rotation spreads
            // the stream; residency amortizes build + upload + hoist. The
            // reuse floor is sized to the stream: the deepest post-spike
            // wander is 0.57/1.2 = 0.475 of the spike's build, so a 0.45
            // floor lets the spike cost one rebuild instead of a cascade
            // (operators tune the band to their traffic's ε spread).
            let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(devices))
                .with_config(SessionConfig {
                    reuse_floor: 0.45,
                    ..SessionConfig::default()
                });
            let mut busy = vec![0.0f64; devices];
            for (i, &eps) in epsilons.iter().enumerate() {
                let out = session.query(eps).expect("session query failed");
                busy[out.device] += out.report.modeled_total.as_secs_f64();
                // Spot-check equivalence on a sample (first touch, deep
                // reuse, the spike, and a post-spike rebuild).
                if [0, 9, SPIKE_AT, 44].contains(&i) {
                    assert_eq!(
                        &out.table,
                        &baseline.tables[&eps.to_bits()],
                        "{name}: session answer diverged at query {i} (eps {eps:.4})"
                    );
                }
            }
            let stats = session.stats();
            let session_makespan = busy.iter().cloned().fold(0.0, f64::max);
            let session_qps = QUERIES as f64 / session_makespan;
            let speedup = session_qps / rebuild_qps;

            rows.push(vec![
                format!("{devices}"),
                format!("{rebuild_qps:.1}"),
                format!("{session_qps:.1}"),
                fmt_speedup(speedup),
                format!("{}", stats.index_builds),
                format!("{}", stats.index_reuses),
                format!("{}", stats.snapshot_uploads),
            ]);

            assert!(
                speedup >= 2.0,
                "{name}: session QPS speedup {speedup:.2}x at {devices} device(s) \
                 below the 2x acceptance bar"
            );
        }

        emit_table(
            &args,
            "query_throughput",
            &format!(
                "Query throughput: {name} (|D| = {n}, base eps = {base:.4}, \
                 {QUERIES}-query mixed-eps stream)"
            ),
            &[
                "devices",
                "rebuild QPS",
                "session QPS",
                "speedup",
                "rebuilds",
                "reuses",
                "uploads",
            ],
            &rows,
        );
    }

    println!("\nacceptance bar: resident session >= 2x rebuild-per-query modeled QPS — passed");
}
