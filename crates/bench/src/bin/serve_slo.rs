//! Serving under overload: admission control vs admit-everything.
//!
//! An open-loop, mixed-tenant query stream is offered to [`sj_serve`]'s
//! `SelfJoinService` at ~2× the pool's modeled capacity, on 1/2/4
//! simulated TITAN X devices. Three tenants share two datasets (two
//! astronomy tenants on the SDSS surrogate, one on uniform Syn) with
//! in-band ε cycles, so resident sessions serve every query without
//! rebuilds and the *only* variable is what the front door does with the
//! backlog:
//!
//! * **baseline** — admission disabled: every query is queued. Under a
//!   sustained 2× overload the queue grows linearly and tail latency
//!   collapses to the stream length (p99 ≥ 3× the SLO is asserted — the
//!   collapse the controller exists to prevent).
//! * **admission** — projected completion (scheduler backlog + the
//!   session's calibrated cost projection) is checked against the SLO
//!   with a 20% guard band; queries that would break it are rejected
//!   with `Overloaded { retry_after }`. The assertion: **p99 of completed
//!   queries stays under the SLO**, with the shed fraction reported.
//!
//! Latencies are virtual (modeled) seconds — identical semantics to the
//! admission controller's own arithmetic. Every completed answer is
//! checked pair-for-pair against a fresh `GpuSelfJoin` run at the same ε.
//! All tables land in `bench_results/serve_slo.json`.

use grid_join::{GpuSelfJoin, NeighborTable, SelfJoinSession};
use sim_gpu::DevicePool;
use sj_bench::cli::Args;
use sj_bench::eps_for_realized;
use sj_bench::table::{emit_table, fmt_speedup};
use sj_datasets::{sdss, synthetic, Dataset};
use sj_serve::{AdmissionConfig, QueryRequest, SelfJoinService, ServeError, ServiceConfig};
use std::collections::HashMap;
use std::time::Duration;

/// In-band ε cycle per tenant (fractions of the dataset's base ε; the
/// session's default reuse floor is 0.5, so everything ≥ 0.55 reuses).
const CYCLE: [f64; 4] = [1.0, 0.85, 0.7, 0.55];

/// Tenant mix: name + dataset index. Two astronomy tenants share the
/// SDSS session; the sky-survey tenant drives the uniform surrogate.
const TENANTS: [(&str, usize); 3] = [("astro-a", 0), ("sky", 1), ("astro-b", 0)];

/// Offered load as a multiple of modeled pool capacity.
const OVERLOAD: f64 = 2.0;

/// SLO as a multiple of the mean projected query cost (a queue depth
/// allowance of ~8 per device).
const SLO_FACTOR: f64 = 8.0;

/// The admission controller aims under the SLO so projection noise and
/// host-wall measurement jitter (modeled time derives from measured wall
/// time) cannot push completed tails over it: the internal target is
/// `GUARD_BAND × SLO` and the delay window ends at
/// `GUARD_BAND × DELAY_FACTOR × SLO` = 0.78 × SLO.
const GUARD_BAND: f64 = 0.65;
const DELAY_FACTOR: f64 = 1.2;

fn main() {
    let mut args = Args::parse();
    // This binary is a perf tracker: always persist its tables.
    args.json = true;

    let floor = if args.quick { 5_000 } else { 16_000 };
    let n = ((2_000_000.0 * args.scale) as usize).clamp(floor, 2_000_000);
    let datasets: Vec<(&str, Dataset)> = vec![
        ("SDSS-2M", sdss::sdss2d(n, 305)),
        ("syn-2M", synthetic::uniform(2, n, 42)),
    ];
    let bases: Vec<f64> = datasets
        .iter()
        .map(|(_, data)| eps_for_realized(data, 16.0))
        .collect();
    // Distinct ε set per dataset, largest first (warm order).
    let eps_sets: Vec<Vec<f64>> = bases
        .iter()
        .map(|base| CYCLE.iter().map(|f| base * f).collect())
        .collect();

    // Fresh-join reference tables for the exactness check, one per
    // (dataset, ε).
    let join = GpuSelfJoin::default_device();
    let mut reference: HashMap<(usize, u64), NeighborTable> = HashMap::new();
    for (d, (_, data)) in datasets.iter().enumerate() {
        for &eps in &eps_sets[d] {
            let out = join.run(data, eps).expect("reference join failed");
            reference.insert((d, eps.to_bits()), out.table);
        }
    }

    // Calibration pass: a throwaway resident session per dataset serves
    // each ε twice — the second pass is the steady state the stream will
    // run in (resident snapshot, cached exact estimate) and its measured
    // modeled cost defines the pool's capacity, hence the SLO and the
    // offered overload.
    let mean_cost = {
        let mut total = 0.0;
        let mut count = 0usize;
        for (d, (_, data)) in datasets.iter().enumerate() {
            let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
            for &eps in &eps_sets[d] {
                session.query(eps).expect("calibration query failed");
            }
            for &eps in &eps_sets[d] {
                let out = session.query(eps).expect("calibration query failed");
                total += out.report.modeled_total.as_secs_f64();
                count += 1;
            }
        }
        total / count as f64
    };
    let slo = Duration::from_secs_f64(SLO_FACTOR * mean_cost);

    let mut rows = Vec::new();
    // The first traced run's spans, exported after the sweep.
    let mut trace_records: Option<Vec<sj_obs::SpanRecord>> = None;
    for devices in [1usize, 2, 4] {
        let queries = (80 * devices).max(160);
        let offered_qps = OVERLOAD * devices as f64 / mean_cost;
        let stream: Vec<(usize, usize, f64, f64)> = (0..queries)
            .map(|i| {
                let (_, dataset) = TENANTS[i % TENANTS.len()];
                let eps = bases[dataset] * CYCLE[i % CYCLE.len()];
                (i % TENANTS.len(), dataset, eps, i as f64 / offered_qps)
            })
            .collect();

        let mut measured: Vec<(bool, f64, f64, u64)> = Vec::new(); // (admission, p99, rejected_frac, delayed)
        for admission_on in [false, true] {
            // Trace only the admission-controlled stream: that is the
            // serving path the span taxonomy documents, and keeping the
            // baseline untraced keeps the ring buffers comfortably
            // within one run's spans.
            let tracing = args.trace && admission_on;
            if tracing {
                sj_obs::trace::clear();
                sj_obs::set_enabled(true);
            }
            let service = SelfJoinService::new(
                DevicePool::titan_x(devices),
                ServiceConfig {
                    admission: AdmissionConfig {
                        enabled: admission_on,
                        slo: Duration::from_secs_f64(slo.as_secs_f64() * GUARD_BAND),
                        delay_factor: DELAY_FACTOR,
                        ..AdmissionConfig::default()
                    },
                    ..ServiceConfig::default()
                },
            );
            let ids: Vec<_> = datasets
                .iter()
                .map(|(name, data)| service.register_dataset(*name, data.clone()))
                .collect();
            for (d, set) in eps_sets.iter().enumerate() {
                // Two warm passes: the second serves from caches, pulling
                // the session's cost calibration to steady state.
                service.warm(ids[d], set).expect("warm failed");
                service.warm(ids[d], set).expect("warm failed");
            }
            service.reset_metrics();

            let mut tickets = Vec::new();
            for &(tenant, dataset, eps, arrival) in &stream {
                let req = QueryRequest::new(TENANTS[tenant].0, ids[dataset], eps)
                    .at(Duration::from_secs_f64(arrival));
                match service.submit(req) {
                    Ok(ticket) => tickets.push((dataset, eps, ticket)),
                    Err(ServeError::Overloaded { .. }) => {
                        assert!(admission_on, "baseline must admit everything");
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            for (dataset, eps, ticket) in tickets {
                let out = ticket.wait().expect("admitted query failed");
                assert_eq!(
                    &out.table,
                    &reference[&(dataset, eps.to_bits())],
                    "served answer diverged from a fresh join (eps {eps:.4})"
                );
            }
            let m = service.metrics();
            assert_eq!(m.total.failed, 0);
            if tracing {
                sj_obs::set_enabled(false);
                let records = sj_obs::drain();
                let stats = sj_obs::validate(&records).expect("trace must be well-formed");
                let roots = records.iter().filter(|r| r.name == "serve.query").count() as u64;
                assert_eq!(
                    roots, m.total.admitted,
                    "one serve.query root per admitted query"
                );
                println!(
                    "  trace[{devices} dev]: {} spans, {} roots, depth {}, {} threads",
                    stats.spans, stats.roots, stats.max_depth, stats.threads
                );
                if trace_records.is_none() {
                    trace_records = Some(records);
                }
            }
            let rejected_frac = m.total.rejected as f64 / m.total.submitted.max(1) as f64;
            measured.push((
                admission_on,
                m.total.latency.p99,
                rejected_frac,
                m.total.delayed,
            ));
        }

        let (_, p99_base, _, _) = measured[0];
        let (_, p99_adm, rejected_frac, delayed) = measured[1];
        let slo_secs = slo.as_secs_f64();
        rows.push(vec![
            format!("{devices}"),
            format!("{queries}"),
            format!("{offered_qps:.1}"),
            format!("{:.2}", slo_secs * 1e3),
            format!("{:.2}", p99_base * 1e3),
            format!("{:.2}", p99_adm * 1e3),
            fmt_speedup(p99_base / slo_secs),
            format!("{:.0}%", rejected_frac * 100.0),
            format!("{delayed}"),
        ]);

        assert!(
            p99_adm <= slo_secs,
            "admission p99 {:.1}ms broke the {:.1}ms SLO at {devices} device(s)",
            p99_adm * 1e3,
            slo_secs * 1e3
        );
        assert!(
            p99_base >= 3.0 * slo_secs,
            "baseline p99 {:.1}ms is under 3x the {:.1}ms SLO at {devices} device(s) — \
             the offered load is not an overload",
            p99_base * 1e3,
            slo_secs * 1e3
        );
        assert!(
            rejected_frac > 0.0,
            "admission survived a 2x overload without shedding — implausible"
        );
    }

    emit_table(
        &args,
        "serve_slo",
        &format!(
            "Serving under 2x overload: admission control vs admit-everything \
             (|D| = {n} per dataset, 3 tenants, SLO = {:.1}ms modeled)",
            slo.as_secs_f64() * 1e3
        ),
        &[
            "devices",
            "queries",
            "offered QPS",
            "SLO ms",
            "baseline p99 ms",
            "admission p99 ms",
            "baseline p99 / SLO",
            "rejected",
            "delayed",
        ],
        &rows,
    );

    if let Some(records) = trace_records {
        let dir = sj_bench::output_dir();
        let full = sj_obs::chrome_trace(&records);
        sj_obs::json::parse(&full).expect("chrome trace must be valid JSON");
        let full_path = dir.join("serve_slo_trace.json");
        std::fs::write(&full_path, &full).expect("write trace");
        // A small committed sample: the complete span trees of the first
        // few admitted queries, so the repo carries a loadable example
        // without megabytes of trace.
        let sample = sample_trees(&records, 3);
        sj_obs::validate(&sample).expect("sample trees stay connected");
        let sample_json = sj_obs::chrome_trace(&sample);
        sj_obs::json::parse(&sample_json).expect("trace sample must be valid JSON");
        let sample_path = dir.join("trace_sample.json");
        std::fs::write(&sample_path, &sample_json).expect("write trace sample");
        println!(
            "\ntrace: {} ({} spans) / sample: {} ({} spans) — load in chrome://tracing",
            full_path.display(),
            records.len(),
            sample_path.display(),
            sample.len()
        );
    }

    // Calibration audit: admission's projected cost vs the measured
    // modeled cost of every executed query in this run.
    match sj_obs::audit::report("admission") {
        Some(report) => println!("\n{}", report.summary()),
        None => println!("\ncost audit [admission]: no samples recorded"),
    }

    println!(
        "\nacceptance bar: admission p99 <= SLO while baseline p99 >= 3x SLO, \
         all completed answers exact — passed"
    );
}

/// The complete span trees of the first `k` `serve.query` roots (in
/// record order): each record whose ancestor chain reaches one of them.
fn sample_trees(records: &[sj_obs::SpanRecord], k: usize) -> Vec<sj_obs::SpanRecord> {
    use std::collections::{HashMap, HashSet};
    let parent: HashMap<u64, u64> = records.iter().map(|r| (r.id, r.parent)).collect();
    let roots: HashSet<u64> = records
        .iter()
        .filter(|r| r.name == "serve.query")
        .take(k)
        .map(|r| r.id)
        .collect();
    records
        .iter()
        .filter(|r| {
            let mut cur = r.id;
            loop {
                if roots.contains(&cur) {
                    return true;
                }
                match parent.get(&cur) {
                    Some(&p) if p != 0 => cur = p,
                    _ => return false,
                }
            }
        })
        .cloned()
        .collect()
}
