//! Runs the paper's five evaluated algorithms on one (dataset, ε) pair.

use grid_join::{gpu_brute_force, GpuSelfJoin, SelfJoinConfig};
use rtree::rtree_self_join;
use sim_gpu::{Device, DeviceSpec};
use sj_datasets::Dataset;
use superego::SuperEgo;

/// The algorithms of the paper's evaluation, in legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// GPU brute-force nested-loop join (lower bound, ε-independent).
    GpuBrute,
    /// Sequential R-tree search-and-refine (the reference implementation).
    CpuRtree,
    /// Multi-threaded Super-EGO (state of the art on the CPU).
    SuperEgo,
    /// GPU-SJ without UNICOMP.
    Gpu,
    /// GPU-SJ with UNICOMP (the paper's headline configuration).
    GpuUnicomp,
}

impl Algo {
    /// All five, in the paper's legend order.
    pub const ALL: [Algo; 5] = [
        Algo::GpuBrute,
        Algo::CpuRtree,
        Algo::SuperEgo,
        Algo::Gpu,
        Algo::GpuUnicomp,
    ];

    /// Legend label as printed in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::GpuBrute => "GPU: Brute Force",
            Algo::CpuRtree => "R-Tree",
            Algo::SuperEgo => "SuperEGO",
            Algo::Gpu => "GPU",
            Algo::GpuUnicomp => "GPU: unicomp",
        }
    }

    /// Short machine-readable id used in CSV caches.
    pub fn id(&self) -> &'static str {
        match self {
            Algo::GpuBrute => "brute",
            Algo::CpuRtree => "rtree",
            Algo::SuperEgo => "superego",
            Algo::Gpu => "gpu",
            Algo::GpuUnicomp => "gpu_unicomp",
        }
    }

    /// Parses a CSV id.
    pub fn from_id(id: &str) -> Option<Algo> {
        Algo::ALL.into_iter().find(|a| a.id() == id)
    }
}

/// One timed run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Which algorithm.
    pub algo: Algo,
    /// Response time in seconds (best of `trials`).
    pub seconds: f64,
    /// Directed result pairs (self excluded).
    pub pairs: u64,
}

/// Runs the requested algorithms, cross-validating that every exact
/// algorithm reports the same pair count (a mismatch panics: the harness
/// must never silently publish numbers from disagreeing implementations).
///
/// Timing follows the paper's methodology: CPU-RTREE reports query time
/// only (index construction excluded, §VI-B); Super-EGO reports
/// ego-sort + join; GPU variants report the **modeled device response
/// time** — grid construction plus the pipelined timeline of uploads,
/// modeled kernels and result downloads (the kernels execute on host
/// cores, so wall time is converted through the device's documented
/// throughput model; see `sim_gpu::DeviceSpec::throughput_vs_host_core`);
/// brute force reports a single modeled kernel invocation.
pub fn run_algorithms(
    data: &Dataset,
    epsilon: f64,
    algos: &[Algo],
    trials: usize,
) -> Vec<Measurement> {
    let trials = trials.max(1);
    let mut out = Vec::with_capacity(algos.len());
    let mut reference_pairs: Option<u64> = None;
    for &algo in algos {
        let mut best = f64::INFINITY;
        let mut pairs = 0u64;
        for _ in 0..trials {
            let (secs, p) = run_once(data, epsilon, algo);
            best = best.min(secs);
            pairs = p;
        }
        if algo != Algo::GpuBrute {
            // Brute force also computes the exact count, so include it in
            // the cross-validation set.
        }
        match reference_pairs {
            None => reference_pairs = Some(pairs),
            Some(r) => assert_eq!(
                r,
                pairs,
                "result mismatch: {} found {pairs} pairs, expected {r}",
                algo.label()
            ),
        }
        out.push(Measurement {
            algo,
            seconds: best,
            pairs,
        });
    }
    out
}

fn run_once(data: &Dataset, epsilon: f64, algo: Algo) -> (f64, u64) {
    match algo {
        Algo::GpuBrute => {
            let device = Device::new(DeviceSpec::titan_x_pascal());
            let r = gpu_brute_force(&device, data, epsilon).expect("brute force OOM");
            (r.modeled_wall.as_secs_f64(), r.pairs)
        }
        Algo::CpuRtree => {
            let (table, report) = rtree_self_join(data, epsilon);
            (report.query.as_secs_f64(), table.total_pairs() as u64)
        }
        Algo::SuperEgo => {
            let (table, report) = SuperEgo::default().self_join(data, epsilon);
            (
                (report.sort_time + report.join_time).as_secs_f64(),
                table.total_pairs() as u64,
            )
        }
        Algo::Gpu | Algo::GpuUnicomp => {
            let device = Device::new(DeviceSpec::titan_x_pascal());
            let join = GpuSelfJoin::new(device).with_config(SelfJoinConfig {
                unicomp: algo == Algo::GpuUnicomp,
                ..SelfJoinConfig::default()
            });
            let out = join.run(data, epsilon).expect("GPU self-join failed");
            (
                out.report.modeled_total.as_secs_f64(),
                out.table.total_pairs() as u64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::uniform;

    #[test]
    fn all_algorithms_agree() {
        let data = uniform(2, 1500, 101);
        let ms = run_algorithms(&data, 2.0, &Algo::ALL, 1);
        assert_eq!(ms.len(), 5);
        let counts: Vec<u64> = ms.iter().map(|m| m.pairs).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert!(ms.iter().all(|m| m.seconds >= 0.0));
    }

    #[test]
    fn algo_id_roundtrip() {
        for a in Algo::ALL {
            assert_eq!(Algo::from_id(a.id()), Some(a));
        }
        assert_eq!(Algo::from_id("nope"), None);
    }

    #[test]
    fn trials_take_best() {
        let data = uniform(2, 500, 102);
        let ms = run_algorithms(&data, 2.0, &[Algo::SuperEgo], 2);
        assert_eq!(ms.len(), 1);
    }
}
