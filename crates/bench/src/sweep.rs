//! Shared ε-sweep driver used by the response-time and derived figures.

use crate::cache::SweepCache;
use crate::cli::Args;
use crate::runner::{run_algorithms, Algo, Measurement};
use sj_datasets::catalog::DatasetSpec;

/// Whether the sweep includes the ε-independent brute-force baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrutePolicy {
    /// Run it at the first ε only, as the paper does ("we only run the
    /// brute force algorithm for a single value of ε").
    FirstEpsOnly,
    /// Skip it (derived figures don't need it).
    Skip,
}

/// All measurements at one ε of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// ε as labeled in the paper's figure.
    pub paper_eps: f64,
    /// ε actually used after the selectivity-preserving stretch.
    pub actual_eps: f64,
    /// Measurements in `Algo::ALL` order (brute present only per policy).
    pub results: Vec<Measurement>,
}

/// Runs (or loads from cache) the full ε sweep of one dataset.
pub fn sweep_dataset(
    spec: &DatasetSpec,
    args: &Args,
    cache: &mut SweepCache,
    algos: &[Algo],
    brute: BrutePolicy,
) -> Vec<SweepPoint> {
    let paper_eps = spec.paper_epsilons;
    let actual_eps = spec.scaled_epsilons(args.scale);
    // Generate lazily: only if at least one measurement is missing.
    let mut data = None;
    let mut out = Vec::with_capacity(paper_eps.len());
    for (i, (&pe, &ae)) in paper_eps.iter().zip(&actual_eps).enumerate() {
        let mut wanted: Vec<Algo> = algos.to_vec();
        if brute == BrutePolicy::FirstEpsOnly && i == 0 && !wanted.contains(&Algo::GpuBrute) {
            wanted.insert(0, Algo::GpuBrute);
        }
        wanted.retain(|a| brute != BrutePolicy::Skip || *a != Algo::GpuBrute);

        let missing: Vec<Algo> = wanted
            .iter()
            .copied()
            .filter(|&a| cache.get(spec.name, pe, a).is_none())
            .collect();
        if !missing.is_empty() {
            let d = data.get_or_insert_with(|| spec.generate(args.scale));
            eprintln!(
                "  measuring {} eps={pe} ({} pts, actual eps {ae:.4}): {:?}",
                spec.name,
                d.len(),
                missing.iter().map(|a| a.id()).collect::<Vec<_>>()
            );
            for m in run_algorithms(d, ae, &missing, args.trials) {
                cache.put(spec.name, pe, m);
            }
        }
        let results: Vec<Measurement> = wanted
            .iter()
            .map(|&a| cache.get(spec.name, pe, a).expect("just measured"))
            .collect();
        out.push(SweepPoint {
            paper_eps: pe,
            actual_eps: ae,
            results,
        });
    }
    out
}

/// The four indexed algorithms (everything except brute force).
pub const INDEXED: [Algo; 4] = [Algo::CpuRtree, Algo::SuperEgo, Algo::Gpu, Algo::GpuUnicomp];

/// Convenience: extracts one algorithm's seconds from a sweep point.
pub fn seconds_of(p: &SweepPoint, algo: Algo) -> Option<f64> {
    p.results.iter().find(|m| m.algo == algo).map(|m| m.seconds)
}

/// Runs and prints one response-time panel (a dataset of Figures 4–6):
/// rows are ε values, columns the five algorithms. `figure` names the
/// JSON export written when `--json` is on.
pub fn print_response_time_panel(
    figure: &str,
    spec: &DatasetSpec,
    args: &Args,
    cache: &mut SweepCache,
) {
    use crate::table::{emit_table, fmt_secs};
    let points = sweep_dataset(spec, args, cache, &INDEXED, BrutePolicy::FirstEpsOnly);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![format!("{:.3}", p.paper_eps)];
            for algo in Algo::ALL {
                row.push(match seconds_of(p, algo) {
                    Some(s) => fmt_secs(s),
                    None => "-".to_string(),
                });
            }
            let pairs = p
                .results
                .iter()
                .find(|m| m.algo != Algo::GpuBrute)
                .map(|m| m.pairs)
                .unwrap_or(0);
            row.push(format!("{pairs}"));
            row
        })
        .collect();
    emit_table(
        args,
        figure,
        &format!(
            "{} (|D| scaled to {}, scale {})",
            spec.name,
            spec.scaled_count(args.scale),
            args.scale
        ),
        &[
            "eps",
            "GPU: Brute Force",
            "R-Tree",
            "SuperEGO",
            "GPU",
            "GPU: unicomp",
            "pairs",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::catalog::{sweep, DatasetSpec, Family};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "TinyTest",
            family: Family::Synthetic,
            dim: 2,
            paper_count: 1_000_000,
            paper_epsilons: sweep(0.2, 1.0),
            seed: 7,
        }
    }

    #[test]
    fn sweep_fills_cache_and_reuses_it() {
        let args = Args {
            scale: 0.001,
            ..Args::default()
        };
        let mut cache = SweepCache::open(0.0, false); // in-memory only
        let spec = tiny_spec();
        let pts = sweep_dataset(
            &spec,
            &args,
            &mut cache,
            &INDEXED,
            BrutePolicy::FirstEpsOnly,
        );
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].results.len(), 5, "first point includes brute");
        assert_eq!(pts[1].results.len(), 4);
        let filled = cache.len();
        assert_eq!(filled, 4 * 5 + 1);
        // Second run touches nothing new.
        let again = sweep_dataset(
            &spec,
            &args,
            &mut cache,
            &INDEXED,
            BrutePolicy::FirstEpsOnly,
        );
        assert_eq!(cache.len(), filled);
        assert_eq!(
            seconds_of(&pts[2], Algo::Gpu),
            seconds_of(&again[2], Algo::Gpu)
        );
    }

    #[test]
    fn skip_policy_omits_brute() {
        let args = Args {
            scale: 0.001,
            ..Args::default()
        };
        let mut cache = SweepCache::open(0.0, false);
        let pts = sweep_dataset(
            &tiny_spec(),
            &args,
            &mut cache,
            &[Algo::Gpu],
            BrutePolicy::Skip,
        );
        assert!(pts.iter().all(|p| p.results.len() == 1));
    }
}
