//! Reproduction harness for the paper's evaluation (§VI).
//!
//! One binary per table/figure (see `src/bin/`), sharing this library:
//!
//! * [`cli`] — `--scale`, `--trials`, `--quick` flag parsing shared by all
//!   binaries.
//! * [`runner`] — runs the five evaluated algorithms (GPU brute force,
//!   CPU-RTREE, Super-EGO, GPU-SJ, GPU-SJ + UNICOMP) on a dataset/ε and
//!   cross-validates their result counts.
//! * [`cache`] — CSV result cache under `bench_results/`, so the derived
//!   figures (7, 8, 9) can reuse the sweeps measured for figures 4–6.
//! * [`table`] — fixed-width table printing in the layout of the paper's
//!   figures.
//!
//! Scaling: the paper's datasets (2–15.2M points) are scaled down by
//! `--scale` (default 0.002) with a selectivity-preserving ε stretch (see
//! `sj_datasets::catalog`), so every experiment runs in the same
//! average-neighbors regime as the paper — the regime that determines who
//! wins and by how much — at laptop-friendly sizes. Pass `--scale 1.0` for
//! paper-scale runs on serious hardware.

pub mod cache;
pub mod cli;
pub mod runner;
pub mod sweep;
pub mod table;

pub use cli::Args;
pub use runner::{run_algorithms, Algo, Measurement};

/// The figure binaries' output directory (`bench_results/`), created on
/// first use. Every writer — the JSON table export, the CSV sweep cache —
/// resolves its paths through this, so a binary can never fail on a
/// missing directory regardless of which output paths a run exercises.
pub fn output_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("bench_results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// ε that lands a workload at roughly `target` average neighbours per
/// point under its mean density (clustered data comes out denser —
/// fine: that is the regime where cost-based scheduling matters).
/// Dimension-general: inverts `density × V_dim(ε) = target` with the
/// exact n-ball volume, so the 4-D/6-D scaling workloads sit in the same
/// selectivity regime as the 2-D tiers (where it reduces to the familiar
/// `√(target / (π·density))`). Shared by the `scaling_devices` and
/// `kernel_hotpath` binaries so their "~24 neighbors/point" tiers stay
/// comparable.
pub fn eps_for_selectivity(data: &sj_datasets::Dataset, target: f64) -> f64 {
    let ext = sj_datasets::stats::extent(data).expect("non-empty workload");
    let dim = data.dim();
    let unit_ball = sj_datasets::stats::n_ball_volume(dim, 1.0);
    (target / (ext.density * unit_ball)).powf(1.0 / dim as f64)
}

/// Sampled average neighbour count at `eps` (host scan over a stride
/// sample — cheap and device-free).
fn realized_selectivity(data: &sj_datasets::Dataset, eps: f64) -> f64 {
    let grid = grid_join::GridIndex::build(data, eps).expect("calibration grid");
    let n = data.len().max(1);
    let stride = n.div_ceil(512);
    let mut total = 0u64;
    let mut samples = 0u64;
    for q in (0..n).step_by(stride) {
        grid_join::host_join::query_neighbors(data, &grid, q, |_| total += 1);
        samples += 1;
    }
    total as f64 / samples as f64
}

/// Calibrates ε until the *realized* average neighbour count lands near
/// `target`. The closed-form [`eps_for_selectivity`] assumes uniform
/// density; on the clustered SDSS surrogate it overshoots by an order of
/// magnitude (dense galaxy cores), which would turn query streams
/// result-download-bound. In 2-D the pair count grows ~ε², so a √-ratio
/// update converges in a few steps. Shared by the serving-path binaries
/// (`query_throughput`, `serve_slo`, `eps_sweep`).
pub fn eps_for_realized(data: &sj_datasets::Dataset, target: f64) -> f64 {
    let mut eps = eps_for_selectivity(data, target);
    for _ in 0..6 {
        let realized = realized_selectivity(data, eps).max(1e-3);
        let ratio = realized / target;
        if (0.8..=1.25).contains(&ratio) {
            break;
        }
        eps *= (target / realized).sqrt().clamp(0.3, 3.0);
    }
    eps
}
