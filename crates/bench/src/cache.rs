//! CSV cache for sweep measurements.
//!
//! Figures 7–9 of the paper are derived from the response-time sweeps of
//! Figures 4–6. The harness caches every `(dataset, ε, algorithm)`
//! measurement under `bench_results/sweep_scale<scale>.csv` so derived
//! figures reuse earlier runs instead of re-measuring.

use crate::runner::{Algo, Measurement};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// One cached row.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Dataset name (paper's Table I naming).
    pub dataset: String,
    /// Paper-scale ε (before the selectivity stretch).
    pub epsilon: f64,
    /// The measurement.
    pub m: Measurement,
}

/// A sweep cache bound to one scale factor.
#[derive(Debug)]
pub struct SweepCache {
    path: PathBuf,
    rows: HashMap<(String, u64, Algo), Measurement>,
    enabled: bool,
}

fn eps_key(eps: f64) -> u64 {
    eps.to_bits()
}

impl SweepCache {
    /// Opens (and loads, if present) the cache for a scale factor.
    /// `enabled = false` produces an inert cache (for `--no-cache`).
    pub fn open(scale: f64, enabled: bool) -> Self {
        let path = crate::output_dir().join(format!("sweep_scale{scale}.csv"));
        let mut rows = HashMap::new();
        if enabled {
            if let Ok(text) = fs::read_to_string(&path) {
                for line in text.lines().skip(1) {
                    if let Some(row) = parse_line(line) {
                        rows.insert(
                            (row.dataset.clone(), eps_key(row.epsilon), row.m.algo),
                            row.m,
                        );
                    }
                }
            }
        }
        Self {
            path,
            rows,
            enabled,
        }
    }

    /// Looks up a cached measurement.
    pub fn get(&self, dataset: &str, epsilon: f64, algo: Algo) -> Option<Measurement> {
        self.rows
            .get(&(dataset.to_string(), eps_key(epsilon), algo))
            .copied()
    }

    /// Inserts a measurement and appends it to the CSV file.
    pub fn put(&mut self, dataset: &str, epsilon: f64, m: Measurement) {
        self.rows
            .insert((dataset.to_string(), eps_key(epsilon), m.algo), m);
        if !self.enabled {
            return;
        }
        if let Some(parent) = self.path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let fresh = !self.path.exists();
        if let Ok(mut f) = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            if fresh {
                let _ = writeln!(f, "dataset,epsilon,algo,seconds,pairs");
            }
            let _ = writeln!(
                f,
                "{},{},{},{},{}",
                dataset,
                epsilon,
                m.algo.id(),
                m.seconds,
                m.pairs
            );
        }
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn parse_line(line: &str) -> Option<Row> {
    let mut parts = line.split(',');
    let dataset = parts.next()?.to_string();
    let epsilon: f64 = parts.next()?.parse().ok()?;
    let algo = Algo::from_id(parts.next()?)?;
    let seconds: f64 = parts.next()?.parse().ok()?;
    let pairs: u64 = parts.next()?.parse().ok()?;
    Some(Row {
        dataset,
        epsilon,
        m: Measurement {
            algo,
            seconds,
            pairs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_parse() {
        let line = "SW2DA,0.3,gpu_unicomp,1.25,4242";
        let row = parse_line(line).unwrap();
        assert_eq!(row.dataset, "SW2DA");
        assert_eq!(row.m.algo, Algo::GpuUnicomp);
        assert_eq!(row.m.pairs, 4242);
        assert!(parse_line("garbage").is_none());
        assert!(parse_line("a,b,c,d,e").is_none());
    }

    #[test]
    fn disabled_cache_is_inert_in_memory_only() {
        let mut c = SweepCache::open(0.12345, false);
        assert!(c.is_empty());
        c.put(
            "X",
            1.0,
            Measurement {
                algo: Algo::Gpu,
                seconds: 1.0,
                pairs: 10,
            },
        );
        assert_eq!(c.len(), 1);
        assert!(c.get("X", 1.0, Algo::Gpu).is_some());
        assert!(c.get("X", 2.0, Algo::Gpu).is_none());
    }
}
