//! Microbenchmarks of the ε-grid index: construction cost (the paper
//! argues grid insertion is far cheaper than R-tree construction) and the
//! two hot lookup primitives of the kernel inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_join::grid::mask_range;
use grid_join::GridIndex;
use rtree::selfjoin::build_bin_sorted;
use sj_datasets::synthetic::uniform;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    for dim in [2usize, 4, 6] {
        let data = uniform(dim, 20_000, 1);
        let eps = match dim {
            2 => 1.0,
            4 => 6.0,
            _ => 15.0,
        };
        g.bench_with_input(BenchmarkId::new("grid", dim), &data, |b, d| {
            b.iter(|| GridIndex::build(black_box(d), eps).unwrap())
        });
        // The paper's comparison point: building the R-tree over the same
        // data costs far more (it is excluded from the paper's timings,
        // which flatters CPU-RTREE).
        g.bench_with_input(BenchmarkId::new("rtree", dim), &data, |b, d| {
            b.iter(|| build_bin_sorted(black_box(d)))
        });
        // STR bulk loading: the fast way to build a packed R-tree.
        g.bench_with_input(BenchmarkId::new("rtree_bulk", dim), &data, |b, d| {
            b.iter(|| rtree::RTree::bulk_load(black_box(d), 16))
        });
    }
    g.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let data = uniform(3, 50_000, 2);
    let grid = GridIndex::build(&data, 2.0).unwrap();
    let ids: Vec<u64> = grid.b().iter().step_by(7).copied().collect();
    let mut g = c.benchmark_group("index_lookup");
    g.bench_function("find_cell_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(grid.find_cell(black_box(ids[i])))
        })
    });
    g.bench_function("find_cell_miss", |b| {
        b.iter(|| black_box(grid.find_cell(black_box(u64::MAX - 3))))
    });
    g.bench_function("mask_range", |b| {
        let mask = grid.m(0);
        let mut lo = 0u32;
        b.iter(|| {
            lo = (lo + 3) % 40;
            black_box(mask_range(black_box(mask), lo, lo + 2))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_lookups);
criterion_main!(benches);
