//! Kernel microbenchmarks: the GPUSELFJOINGLOBAL kernel with and without
//! UNICOMP (the ablation behind Figure 9), and the result-size estimation
//! kernel of the batching scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_join::cell_major::{CellMajorPlan, CellMajorSelfJoinKernel};
use grid_join::kernels::{CountKernel, SelfJoinKernel};
use grid_join::{DeviceGrid, GridIndex, Pair};
use sim_gpu::append::AppendBuffer;
use sim_gpu::{launch, Device, DeviceSpec, LaunchConfig};
use sj_datasets::synthetic::uniform;
use std::hint::black_box;

fn bench_selfjoin_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("selfjoin_kernel");
    g.sample_size(10);
    for (dim, eps) in [(2usize, 0.7), (4, 5.0), (6, 12.0)] {
        let data = uniform(dim, 20_000, 3);
        let grid = GridIndex::build(&data, eps).unwrap();
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
        for unicomp in [false, true] {
            let label = if unicomp { "unicomp" } else { "full" };
            g.bench_with_input(
                BenchmarkId::new(format!("{dim}d"), label),
                &unicomp,
                |b, &uni| {
                    let mut results = AppendBuffer::<Pair>::new(device.pool(), 8_000_000).unwrap();
                    b.iter(|| {
                        results.clear();
                        let kernel = SelfJoinKernel {
                            grid: &dg,
                            eps_sq: dg.epsilon * dg.epsilon,
                            results: black_box(&results),
                            query_offset: 0,
                            query_count: data.len(),
                            unicomp: uni,
                            cell_order: false,
                            ownership: None,
                        };
                        launch(&device, LaunchConfig::default(), data.len(), &kernel);
                        assert!(!results.overflowed());
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_hot_paths(c: &mut Criterion) {
    // Per-thread vs cell-major join kernel at matched work (UNICOMP on);
    // the standing microbench behind the `kernel_hotpath` figure binary.
    let mut g = c.benchmark_group("hot_path_2d_20k");
    g.sample_size(10);
    let data = uniform(2, 20_000, 11);
    let grid = GridIndex::build(&data, 0.7).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    g.bench_function("per_thread", |b| {
        let mut results = AppendBuffer::<Pair>::new(device.pool(), 8_000_000).unwrap();
        b.iter(|| {
            results.clear();
            let kernel = SelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                results: black_box(&results),
                query_offset: 0,
                query_count: data.len(),
                unicomp: true,
                cell_order: false,
                ownership: None,
            };
            launch(&device, LaunchConfig::default(), data.len(), &kernel);
            assert!(!results.overflowed());
        });
    });
    g.bench_function("cell_major", |b| {
        let (plan, _) = CellMajorPlan::build(&device, &dg, true, LaunchConfig::default()).unwrap();
        let mut results = AppendBuffer::<Pair>::new(device.pool(), 8_000_000).unwrap();
        b.iter(|| {
            results.clear();
            let kernel = CellMajorSelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                plan: &plan,
                results: black_box(&results),
                slot_offset: 0,
                slot_count: data.len(),
                ownership: None,
            };
            launch(&device, LaunchConfig::default(), data.len(), &kernel);
            assert!(!results.overflowed());
        });
    });
    g.bench_function("cell_major_with_plan_build", |b| {
        let mut results = AppendBuffer::<Pair>::new(device.pool(), 8_000_000).unwrap();
        b.iter(|| {
            results.clear();
            let (plan, _) =
                CellMajorPlan::build(&device, &dg, true, LaunchConfig::default()).unwrap();
            let kernel = CellMajorSelfJoinKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                plan: &plan,
                results: black_box(&results),
                slot_offset: 0,
                slot_count: data.len(),
                ownership: None,
            };
            launch(&device, LaunchConfig::default(), data.len(), &kernel);
            assert!(!results.overflowed());
        });
    });
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let data = uniform(2, 50_000, 4);
    let grid = GridIndex::build(&data, 0.8).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let ids: Vec<u32> = (0..50_000u32).step_by(50).collect();
    let sample = device.alloc_from_host(&ids).unwrap();
    c.bench_function("count_kernel_1k_sample", |b| {
        b.iter(|| {
            let counts = AppendBuffer::<u32>::new(device.pool(), ids.len()).unwrap();
            let kernel = CountKernel {
                grid: &dg,
                eps_sq: dg.epsilon * dg.epsilon,
                sample_ids: &sample,
                counts: &counts,
            };
            launch(&device, LaunchConfig::default(), ids.len(), &kernel);
            black_box(counts.len())
        })
    });
}

fn bench_cell_order(c: &mut Criterion) {
    // Query-scheduling ablation (extension beyond the paper): skewed data
    // where same-cell scheduling improves locality.
    let data = sj_datasets::synthetic::clustered(2, 20_000, 6, 1.2, 0.1, 9);
    let grid = GridIndex::build(&data, 1.0).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let mut g = c.benchmark_group("query_order_skewed_2d");
    g.sample_size(10);
    for (label, cell_order) in [("input_order", false), ("cell_order", true)] {
        g.bench_function(label, |b| {
            let mut results = AppendBuffer::<Pair>::new(device.pool(), 16_000_000).unwrap();
            b.iter(|| {
                results.clear();
                let kernel = SelfJoinKernel {
                    grid: &dg,
                    eps_sq: dg.epsilon * dg.epsilon,
                    results: black_box(&results),
                    query_offset: 0,
                    query_count: data.len(),
                    unicomp: false,
                    cell_order,
                    ownership: None,
                };
                launch(&device, LaunchConfig::default(), data.len(), &kernel);
                assert!(!results.overflowed());
            });
        });
    }
    g.finish();
}

fn bench_knn(c: &mut Criterion) {
    use grid_join::knn::gpu_knn;
    let data = uniform(2, 10_000, 10);
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let mut g = c.benchmark_group("knn_10k_2d");
    g.sample_size(10);
    for k in [4usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| gpu_knn(&device, black_box(&data), 2.0, k).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_selfjoin_kernel,
    bench_hot_paths,
    bench_estimator,
    bench_cell_order,
    bench_knn
);
criterion_main!(benches);
