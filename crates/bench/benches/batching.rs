//! Batching-scheme microbenchmarks: estimation cost, batch-count
//! sensitivity (the paper fixes ≥3 batches; this quantifies what more
//! batches cost), and the stream-timeline scheduler itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grid_join::batching::{estimate_result_size, run_batched, BatchingConfig, ExecOptions};
use grid_join::{DeviceGrid, GridIndex, HotPath};
use sim_gpu::{BatchCost, Device, DeviceSpec, LaunchConfig, StreamTimeline, TransferModel};
use sj_datasets::synthetic::uniform;
use std::hint::black_box;
use std::time::Duration;

fn bench_estimation(c: &mut Criterion) {
    let data = uniform(2, 40_000, 7);
    let grid = GridIndex::build(&data, 0.8).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let cfg = BatchingConfig::default();
    c.bench_function("estimate_result_size_40k", |b| {
        b.iter(|| estimate_result_size(&device, black_box(&dg), &cfg, None).unwrap())
    });
}

fn bench_batch_counts(c: &mut Criterion) {
    let data = uniform(2, 20_000, 8);
    let grid = GridIndex::build(&data, 1.0).unwrap();
    let device = Device::new(DeviceSpec::titan_x_pascal());
    let dg = DeviceGrid::upload(&device, &data, &grid).unwrap();
    let mut g = c.benchmark_group("batch_count_sensitivity");
    g.sample_size(10);
    for batches in [3usize, 8, 32] {
        let cfg = BatchingConfig {
            min_batches: batches,
            ..BatchingConfig::default()
        };
        let opts = ExecOptions {
            unicomp: true,
            cell_order: false,
            hot_path: HotPath::PerThread,
            ..ExecOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(batches), &cfg, |b, cfg| {
            b.iter(|| {
                run_batched(&device, black_box(&dg), LaunchConfig::default(), opts, cfg).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_timeline(c: &mut Criterion) {
    let model = TransferModel::new(11.5, 10.0);
    let batches: Vec<BatchCost> = (0..64)
        .map(|i| BatchCost {
            h2d_bytes: 1 << 20,
            kernel: Duration::from_micros(500 + (i % 7) * 100),
            d2h_bytes: 8 << 20,
        })
        .collect();
    c.bench_function("stream_timeline_64_batches", |b| {
        let tl = StreamTimeline::new(model, 3);
        b.iter(|| tl.schedule(black_box(&batches)))
    });
}

criterion_group!(
    benches,
    bench_estimation,
    bench_batch_counts,
    bench_timeline
);
criterion_main!(benches);
