//! Baseline comparison microbenchmarks: the full five-algorithm lineup on
//! one fixed workload (a miniature of the Figure 5 panels), plus the
//! Super-EGO ablations (reordering, parallelism).

use criterion::{criterion_group, criterion_main, Criterion};
use grid_join::{gpu_brute_force, host_self_join_parallel, GpuSelfJoin, GridIndex};
use rtree::rtree_self_join;
use sim_gpu::{Device, DeviceSpec};
use sj_datasets::synthetic::uniform;
use std::hint::black_box;
use superego::SuperEgo;

fn bench_algorithms(c: &mut Criterion) {
    let data = uniform(2, 10_000, 5);
    let eps = 1.0;
    let mut g = c.benchmark_group("algorithms_2d_10k");
    g.sample_size(10);
    g.bench_function("gpu_sj_unicomp", |b| {
        b.iter(|| {
            GpuSelfJoin::default_device()
                .unicomp(true)
                .run(black_box(&data), eps)
                .unwrap()
        })
    });
    g.bench_function("gpu_sj_full", |b| {
        b.iter(|| {
            GpuSelfJoin::default_device()
                .unicomp(false)
                .run(black_box(&data), eps)
                .unwrap()
        })
    });
    g.bench_function("cpu_rtree", |b| {
        b.iter(|| rtree_self_join(black_box(&data), eps))
    });
    g.bench_function("superego", |b| {
        b.iter(|| SuperEgo::default().self_join(black_box(&data), eps))
    });
    g.bench_function("host_grid_parallel", |b| {
        let grid = GridIndex::build(&data, eps).unwrap();
        b.iter(|| host_self_join_parallel(black_box(&data), &grid))
    });
    g.bench_function("gpu_brute_force", |b| {
        let device = Device::new(DeviceSpec::titan_x_pascal());
        b.iter(|| gpu_brute_force(&device, black_box(&data), eps).unwrap())
    });
    g.finish();
}

fn bench_superego_ablations(c: &mut Criterion) {
    // Skewed data is where reordering is supposed to pay.
    let data = sj_datasets::synthetic::clustered(4, 8_000, 6, 2.0, 0.1, 6);
    let eps = 3.0;
    let mut g = c.benchmark_group("superego_ablation_4d_skew");
    g.sample_size(10);
    g.bench_function("default", |b| {
        b.iter(|| SuperEgo::default().self_join(black_box(&data), eps))
    });
    g.bench_function("no_reorder", |b| {
        let se = SuperEgo {
            reorder: false,
            ..Default::default()
        };
        b.iter(|| se.self_join(black_box(&data), eps))
    });
    g.bench_function("sequential", |b| {
        let se = SuperEgo {
            parallel: false,
            ..Default::default()
        };
        b.iter(|| se.self_join(black_box(&data), eps))
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms, bench_superego_ablations);
criterion_main!(benches);
