//! Density-based clustering on top of the self-join — the paper's
//! motivating application (§I: "the DBSCAN clustering algorithm requires
//! range queries that search the neighborhood of all data points"; Böhm
//! et al. \[6\] showed that computing the self-join *first* beats issuing
//! range queries one at a time inside the clustering loop).
//!
//! [`dbscan`] implements textbook DBSCAN (Ester et al. 1996) over a
//! precomputed [`NeighborTable`]; [`dbscan_with_join`] runs the GPU
//! self-join and clusters in one call. [`Clustering`] carries labels plus
//! summary queries (cluster sizes, noise fraction) and a label-invariant
//! equality for testing.

use grid_join::{GpuSelfJoin, NeighborTable, SelfJoinError};
use sj_datasets::Dataset;

/// Per-point DBSCAN label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Below the density threshold and not reachable from any core point.
    Noise,
    /// Member of the cluster with the given id (`0..num_clusters`).
    Cluster(u32),
}

/// A completed clustering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<Label>,
    num_clusters: u32,
}

impl Clustering {
    /// Per-point labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of clusters found.
    pub fn num_clusters(&self) -> u32 {
        self.num_clusters
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == Label::Noise).count()
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters as usize];
        for l in &self.labels {
            if let Label::Cluster(c) = l {
                sizes[*c as usize] += 1;
            }
        }
        sizes
    }

    /// Whether two clusterings are identical up to cluster renumbering.
    ///
    /// DBSCAN's cluster *ids* depend on visit order, but with a fixed
    /// neighbour table the partition itself is deterministic for core
    /// points; border points can legitimately attach to different
    /// clusters across valid DBSCAN runs, so this comparison is what
    /// tests should use between our own (deterministic) runs.
    pub fn equivalent(&self, other: &Clustering) -> bool {
        if self.labels.len() != other.labels.len() || self.num_clusters != other.num_clusters {
            return false;
        }
        let mut map: Vec<Option<u32>> = vec![None; self.num_clusters as usize];
        for (a, b) in self.labels.iter().zip(&other.labels) {
            match (a, b) {
                (Label::Noise, Label::Noise) => {}
                (Label::Cluster(x), Label::Cluster(y)) => match map[*x as usize] {
                    None => map[*x as usize] = Some(*y),
                    Some(m) if m == *y => {}
                    _ => return false,
                },
                _ => return false,
            }
        }
        true
    }
}

/// Runs DBSCAN over a precomputed neighbour table.
///
/// `min_pts` counts the query point itself, per the original paper's
/// convention: a point is *core* iff `|N_ε(p)| + 1 ≥ min_pts` (the table
/// excludes self-pairs).
///
/// # Panics
///
/// Panics if `min_pts == 0`.
pub fn dbscan(table: &NeighborTable, min_pts: usize) -> Clustering {
    assert!(min_pts > 0, "min_pts must be positive");
    let n = table.num_points();
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut clusters = 0u32;
    let mut frontier: Vec<u32> = Vec::new();
    for p in 0..n {
        if labels[p] != UNVISITED {
            continue;
        }
        if table.neighbors(p).len() + 1 < min_pts {
            labels[p] = NOISE;
            continue;
        }
        let cid = clusters;
        clusters += 1;
        labels[p] = cid;
        frontier.clear();
        frontier.extend_from_slice(table.neighbors(p));
        while let Some(q) = frontier.pop() {
            let q = q as usize;
            match labels[q] {
                UNVISITED => {
                    labels[q] = cid;
                    if table.neighbors(q).len() + 1 >= min_pts {
                        frontier.extend_from_slice(table.neighbors(q));
                    }
                }
                NOISE => labels[q] = cid, // border point adoption
                _ => {}
            }
        }
    }
    Clustering {
        labels: labels
            .into_iter()
            .map(|l| {
                if l == NOISE {
                    Label::Noise
                } else {
                    Label::Cluster(l)
                }
            })
            .collect(),
        num_clusters: clusters,
    }
}

/// Convenience: GPU self-join + DBSCAN in one call (the pipeline the
/// paper motivates).
pub fn dbscan_with_join(
    join: &GpuSelfJoin,
    data: &Dataset,
    epsilon: f64,
    min_pts: usize,
) -> Result<Clustering, SelfJoinError> {
    let out = join.run(data, epsilon)?;
    Ok(dbscan(&out.table, min_pts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_join::Pair;
    use sj_datasets::synthetic::{clustered, uniform};

    fn table_of(edges: &[(u32, u32)], n: usize) -> NeighborTable {
        let mut pairs = Vec::new();
        for &(a, b) in edges {
            pairs.push(Pair::new(a, b));
            pairs.push(Pair::new(b, a));
        }
        NeighborTable::from_pairs(n, &pairs)
    }

    #[test]
    fn two_chains_two_clusters() {
        // 0-1-2 and 3-4-5, min_pts 2 (every connected point is core).
        let t = table_of(&[(0, 1), (1, 2), (3, 4), (4, 5)], 7);
        let c = dbscan(&t, 2);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.noise_count(), 1); // point 6 is isolated
        assert_eq!(c.labels()[6], Label::Noise);
        assert_eq!(c.labels()[0], c.labels()[2]);
        assert_ne!(c.labels()[0], c.labels()[3]);
        assert_eq!(c.cluster_sizes(), vec![3, 3]);
    }

    #[test]
    fn min_pts_gates_core_status() {
        // A 3-star: center 0 with leaves 1,2,3.
        let t = table_of(&[(0, 1), (0, 2), (0, 3)], 4);
        // min_pts=4: center has 3 neighbors + itself = 4 → core.
        let c = dbscan(&t, 4);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.noise_count(), 0);
        // min_pts=5: nothing is core, everything is noise.
        let c = dbscan(&t, 5);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.noise_count(), 4);
    }

    #[test]
    fn border_points_adopted_not_core() {
        // Dense core 0-1-2 (triangle) + pendant 3 attached to 2.
        let t = table_of(&[(0, 1), (0, 2), (1, 2), (2, 3)], 4);
        let c = dbscan(&t, 3);
        assert_eq!(c.num_clusters(), 1);
        // 3 has 1 neighbor (+1 = 2 < 3): border, adopted into the cluster.
        assert_eq!(c.labels()[3], c.labels()[0]);
    }

    #[test]
    fn empty_input() {
        let t = NeighborTable::from_pairs(0, &[]);
        let c = dbscan(&t, 3);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.labels().len(), 0);
    }

    #[test]
    fn equivalent_up_to_renumbering() {
        let t = table_of(&[(0, 1), (2, 3)], 4);
        let a = dbscan(&t, 2);
        // Build the same partition with swapped ids by relabeling manually.
        let b = Clustering {
            labels: vec![
                Label::Cluster(1),
                Label::Cluster(1),
                Label::Cluster(0),
                Label::Cluster(0),
            ],
            num_clusters: 2,
        };
        assert!(a.equivalent(&b));
        let c = Clustering {
            labels: vec![
                Label::Cluster(0),
                Label::Cluster(1),
                Label::Cluster(1),
                Label::Cluster(0),
            ],
            num_clusters: 2,
        };
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn recovers_planted_blobs_end_to_end() {
        let data = clustered(2, 3000, 4, 1.0, 0.04, 77);
        let join = GpuSelfJoin::default_device();
        let c = dbscan_with_join(&join, &data, 1.0, 6).unwrap();
        assert!(c.num_clusters() >= 3, "found {}", c.num_clusters());
        let mut sizes = c.cluster_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = sizes.iter().take(4).sum();
        assert!(
            top4 as f64 > 0.7 * data.len() as f64,
            "top clusters hold {top4} of {}",
            data.len()
        );
    }

    #[test]
    fn sparse_uniform_is_mostly_noise() {
        let data = uniform(3, 1000, 78);
        let join = GpuSelfJoin::default_device();
        // Tiny ε: nobody has min_pts neighbors.
        let c = dbscan_with_join(&join, &data, 0.5, 4).unwrap();
        assert!(
            c.noise_count() as f64 > 0.95 * data.len() as f64,
            "noise {}",
            c.noise_count()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let data = clustered(2, 1500, 3, 1.2, 0.1, 79);
        let join = GpuSelfJoin::default_device();
        let a = dbscan_with_join(&join, &data, 1.0, 5).unwrap();
        let b = dbscan_with_join(&join, &data, 1.0, 5).unwrap();
        assert_eq!(a, b, "same table ⇒ same labels, ids included");
    }

    #[test]
    #[should_panic(expected = "min_pts must be positive")]
    fn zero_min_pts_rejected() {
        let t = NeighborTable::from_pairs(1, &[]);
        let _ = dbscan(&t, 0);
    }
}
