//! Error types for grid construction and the self-join pipeline.

use sim_gpu::{DeviceFault, OutOfMemory};
use std::fmt;

/// Errors detected while building the ε-grid index.
#[derive(Clone, Debug, PartialEq)]
pub enum GridBuildError {
    /// ε must be finite and strictly positive.
    InvalidEpsilon(f64),
    /// More dimensions than the kernels support.
    TooManyDimensions {
        /// Requested dimensionality.
        dim: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Point ids are stored as `u32`.
    TooManyPoints(usize),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Offending point id.
        point: usize,
        /// Offending dimension.
        dim: usize,
    },
    /// The virtual cell space does not fit in a `u64` linear id.
    CellSpaceOverflow {
        /// Offending per-dimension cell counts.
        cells_per_dim: Vec<u64>,
    },
}

impl fmt::Display for GridBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidEpsilon(e) => write!(f, "epsilon must be finite and positive, got {e}"),
            Self::TooManyDimensions { dim, max } => {
                write!(f, "dimensionality {dim} exceeds supported maximum {max}")
            }
            Self::TooManyPoints(n) => write!(f, "dataset of {n} points exceeds u32 point ids"),
            Self::NonFiniteCoordinate { point, dim } => write!(
                f,
                "point {point} has a non-finite coordinate in dimension {dim}"
            ),
            Self::CellSpaceOverflow { cells_per_dim } => write!(
                f,
                "virtual cell space overflows u64 linear ids (cells per dim: {cells_per_dim:?}); increase epsilon"
            ),
        }
    }
}

impl std::error::Error for GridBuildError {}

/// Errors from the GPU self-join pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum SelfJoinError {
    /// Index construction failed.
    Grid(GridBuildError),
    /// A device allocation failed even after batching subdivided the work
    /// as far as it could.
    Device(OutOfMemory),
    /// A plan asked an existing index to serve a query radius larger than
    /// the built grid's cell width — the one-cell adjacent search would
    /// miss neighbours. The index must be rebuilt at the larger ε
    /// (sessions do this automatically when ε leaves the validity band).
    EpsilonExceedsIndex {
        /// The requested query radius ε′.
        query: f64,
        /// The cell width ε the index was built with.
        built: f64,
    },
    /// An injected (or modeled) device failure interrupted the pipeline —
    /// a crash or a transient upload/launch fault. Retryable: re-running
    /// on a healthy device (or the same one, for transients) yields the
    /// exact same pairs, and sessions/engines above do so automatically.
    Fault(DeviceFault),
}

impl SelfJoinError {
    /// Whether this error is an injected device fault that a retry on a
    /// healthy device can absorb (as opposed to a logic or capacity error
    /// that would recur anywhere).
    pub fn is_fault(&self) -> bool {
        matches!(self, Self::Fault(_))
    }
}

impl fmt::Display for SelfJoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Grid(e) => write!(f, "grid construction failed: {e}"),
            Self::Device(e) => write!(f, "device allocation failed: {e}"),
            Self::EpsilonExceedsIndex { query, built } => write!(
                f,
                "query epsilon {query} exceeds the index cell width {built}; rebuild the index"
            ),
            Self::Fault(e) => write!(f, "device fault: {e}"),
        }
    }
}

impl std::error::Error for SelfJoinError {}

impl From<GridBuildError> for SelfJoinError {
    fn from(e: GridBuildError) -> Self {
        Self::Grid(e)
    }
}

impl From<OutOfMemory> for SelfJoinError {
    fn from(e: OutOfMemory) -> Self {
        Self::Device(e)
    }
}

impl From<DeviceFault> for SelfJoinError {
    fn from(e: DeviceFault) -> Self {
        Self::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GridBuildError::InvalidEpsilon(0.0)
            .to_string()
            .contains("epsilon"));
        assert!(GridBuildError::TooManyDimensions { dim: 9, max: 8 }
            .to_string()
            .contains('9'));
        assert!(GridBuildError::NonFiniteCoordinate { point: 3, dim: 1 }
            .to_string()
            .contains("non-finite"));
        let sj: SelfJoinError = GridBuildError::TooManyPoints(5_000_000_000).into();
        assert!(sj.to_string().contains("grid construction"));
        let oom: SelfJoinError = OutOfMemory {
            requested: 10,
            available: 5,
        }
        .into();
        assert!(oom.to_string().contains("device allocation"));
    }
}
