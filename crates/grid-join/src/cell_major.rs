//! The cell-major hot path: reordered point layout, per-cell neighbor
//! hoisting, and batched result reservation.
//!
//! The baseline [`crate::kernels::SelfJoinKernel`] pays three costs per
//! *thread* even though every point of a home cell performs byte-identical
//! traversal work: adjacent-range mask clipping, `3^d` binary searches of
//! `B`, and scattered point loads through the `A` indirection. This module
//! restructures the join around the *cell*:
//!
//! 1. **Cell-major data layout** — threads read coordinates from the
//!    grid's reordered snapshot ([`GridIndex::reordered_coords`]): a
//!    cell's points are one contiguous `dim`-strided scan, and original
//!    ids are recovered through the `A` remap only when a pair is emitted.
//! 2. **Per-cell neighbor hoisting** — [`CellMajorPlan`] runs two small
//!    one-thread-per-*cell* kernels that clip the adjacent ranges and
//!    binary-search `B` **once per non-empty home cell**, materializing a
//!    CSR neighbor-offset table keyed by `G` index. The join kernel then
//!    walks precomputed cell positions, cutting the search work from
//!    `O(|D| · 3^d · log |B|)` to `O(|B| · 3^d · log |B|)`.
//! 3. **Batched result reservation** — threads stage candidate pairs in a
//!    small fixed local buffer ([`PairStage`]) and flush with **one**
//!    atomic cursor reservation per batch
//!    ([`sim_gpu::append::AppendBuffer::reserve`]) instead of one atomic
//!    per pair.
//!
//! The pair set produced is identical to the per-thread kernels' —
//! asserted pair-for-pair by the equivalence suites and the `validate`
//! release gate. Every global-memory access still flows through the
//! [`ThreadCtx`] tracer, so the profiled mode drives the cache simulator
//! with the *new* true access stream.

use crate::device_grid::DeviceGrid;
use crate::kernels::{kernel_registers, traced_find_cell, traced_mask_range};
use crate::linearize::{delinearize, linearize, MAX_DIM};
use crate::result::{Ownership, Pair};
use crate::unicomp::{adjacent_ranges, for_each_full, for_each_unicomp};
use sim_gpu::append::AppendBuffer;
use sim_gpu::occupancy::KernelResources;
use sim_gpu::{launch, Device, DeviceBuffer, Kernel, LaunchConfig, OutOfMemory, ThreadCtx, Tracer};
use std::time::{Duration, Instant};

/// Slots in the per-thread result staging buffer. Small enough to live in
/// registers/local memory on a real GPU; every flush replaces that many
/// result atomics with one.
pub const PAIR_STAGE: usize = 16;

/// Which join hot path the executor runs. Results are pair-for-pair
/// identical; only the work distribution differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HotPath {
    /// The paper's Algorithm 1 as written: every thread clips, searches
    /// and gathers for itself (kept as the baseline for ablation).
    PerThread,
    /// The cell-major path of this module: reordered layout, per-cell
    /// neighbor hoisting, batched result reservation. Default.
    #[default]
    CellMajor,
}

/// A fixed local staging buffer for result pairs, flushed to the global
/// [`AppendBuffer`] with one atomic reservation per batch.
struct PairStage {
    buf: [Pair; PAIR_STAGE],
    len: usize,
}

impl PairStage {
    #[inline]
    fn new() -> Self {
        Self {
            buf: [Pair::default(); PAIR_STAGE],
            len: 0,
        }
    }

    /// Stages one pair, flushing first when the buffer is full.
    #[inline]
    fn push<T: Tracer>(
        &mut self,
        ctx: &mut ThreadCtx<'_, T>,
        results: &AppendBuffer<Pair>,
        pair: Pair,
    ) {
        if self.len == PAIR_STAGE {
            self.flush(ctx, results);
        }
        self.buf[self.len] = pair;
        self.len += 1;
    }

    /// Reserves `len` slots with a single atomic and stores the staged
    /// pairs (stores past capacity are discarded and surface as overflow,
    /// like per-pair pushes).
    #[inline]
    fn flush<T: Tracer>(&mut self, ctx: &mut ThreadCtx<'_, T>, results: &AppendBuffer<Pair>) {
        if self.len == 0 {
            return;
        }
        ctx.trace_atomic(results.cursor_addr(), 8);
        let r = results.reserve(self.len);
        for (i, &p) in self.buf[..self.len].iter().enumerate() {
            if let Some(addr) = results.write_reserved(&r, i, p) {
                ctx.trace_store(addr, std::mem::size_of::<Pair>());
            }
        }
        self.len = 0;
    }
}

/// Per-cell hoisting pass shared by the count and fill kernels: computes
/// the home cell's clipped adjacent ranges and enumerates the *existing*
/// neighbor cells (positions in `B`/`G`), invoking `found` for each.
///
/// In full mode the home cell itself is included (its position is `h`, no
/// search needed); in UNICOMP mode only the parity-selected neighbor
/// subset is visited — the home cell is handled by the join kernel's
/// id-ordering rule.
#[inline]
fn for_each_existing_neighbor<T: Tracer, F: FnMut(&mut ThreadCtx<'_, T>, u32)>(
    ctx: &mut ThreadCtx<'_, T>,
    grid: &DeviceGrid,
    h: usize,
    unicomp: bool,
    mut found: F,
) {
    let dim = grid.dim;
    let lin = ctx.read(&grid.b, h);
    let mut cell = [0u32; MAX_DIM];
    delinearize(lin, &grid.cells_per_dim[..dim], &mut cell[..dim]);
    let mut adj = [(0u32, 0u32); MAX_DIM];
    adjacent_ranges(&cell[..dim], &grid.cells_per_dim[..dim], &mut adj[..dim]);
    let mut filtered = [(0u32, 0u32); MAX_DIM];
    for j in 0..dim {
        match traced_mask_range(ctx, grid, j, adj[j].0, adj[j].1) {
            Some(r) => filtered[j] = r,
            // The home cell is non-empty, so every dimension's mask
            // contains at least its coordinate.
            None => unreachable!("mask cannot eliminate the home cell's coordinate"),
        }
    }
    if unicomp {
        for_each_unicomp(dim, &cell[..dim], &filtered[..dim], |coords| {
            let l = linearize(coords, &grid.cells_per_dim[..dim]);
            if let Some(nh) = traced_find_cell(ctx, grid, l) {
                found(ctx, nh as u32);
            }
        });
    } else {
        for_each_full(dim, &filtered[..dim], |coords| {
            let l = linearize(coords, &grid.cells_per_dim[..dim]);
            if l == lin {
                // The home cell exists at position h by construction.
                found(ctx, h as u32);
            } else if let Some(nh) = traced_find_cell(ctx, grid, l) {
                found(ctx, nh as u32);
            }
        });
    }
}

/// Pass 1 of the hoisting precompute: one thread per non-empty cell,
/// counting its existing neighbor cells. Appends `(h, count)`.
struct CellNeighborCountKernel<'a> {
    grid: &'a DeviceGrid,
    unicomp: bool,
    counts: &'a AppendBuffer<(u32, u32)>,
}

impl Kernel for CellNeighborCountKernel<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            registers_per_thread: kernel_registers(self.grid.dim, self.unicomp),
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        let h = ctx.global_id;
        if h >= self.grid.b.len() {
            return;
        }
        let mut count = 0u32;
        for_each_existing_neighbor(ctx, self.grid, h, self.unicomp, |_, _| count += 1);
        ctx.trace_atomic(self.counts.cursor_addr(), 8);
        if let Some(addr) = self.counts.push((h as u32, count)) {
            ctx.trace_store(addr, 8);
        }
    }
}

/// Pass 2: re-runs the traversal and appends one `(h, neighbor_h)` record
/// per existing neighbor cell; the host scatters them into the CSR table.
struct CellNeighborFillKernel<'a> {
    grid: &'a DeviceGrid,
    unicomp: bool,
    entries: &'a AppendBuffer<(u32, u32)>,
}

impl Kernel for CellNeighborFillKernel<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            registers_per_thread: kernel_registers(self.grid.dim, self.unicomp),
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        let h = ctx.global_id;
        if h >= self.grid.b.len() {
            return;
        }
        for_each_existing_neighbor(ctx, self.grid, h, self.unicomp, |ctx, nh| {
            ctx.trace_atomic(self.entries.cursor_addr(), 8);
            if let Some(addr) = self.entries.push((h as u32, nh)) {
                ctx.trace_store(addr, 8);
            }
        });
    }
}

/// Cost accounting of a [`CellMajorPlan`] build, fed into the batching
/// report/timeline so the hoisting pass is never free in either host wall
/// or modeled device time.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanBuildStats {
    /// Host wall time of the whole build (kernels + CSR assembly).
    pub wall: Duration,
    /// Modeled device time of the two hoisting kernels.
    pub modeled: Duration,
    /// Bytes uploaded for the CSR table and the slot→cell map.
    pub h2d_bytes: usize,
    /// Bytes drained back to the host by the two passes.
    pub d2h_bytes: usize,
}

/// The device-resident per-cell neighbor table plus the slot→cell map —
/// everything the cell-major join kernel shares across a home cell's
/// threads.
#[derive(Debug)]
pub struct CellMajorPlan {
    /// Whether the neighbor lists are the UNICOMP parity subset (home
    /// cell excluded) or the full adjacency (home cell included).
    pub unicomp: bool,
    /// `A`-slot → position of its cell in `B`/`G`.
    pub cell_of_slot: DeviceBuffer<u32>,
    /// CSR offsets into [`Self::nbr_cells`] (`|B| + 1` entries).
    pub nbr_offsets: DeviceBuffer<u32>,
    /// CSR values: existing neighbor-cell positions in `B`/`G`, sorted
    /// ascending per home cell.
    pub nbr_cells: DeviceBuffer<u32>,
}

impl CellMajorPlan {
    /// Device bytes this plan keeps resident (the CSR table plus the
    /// slot→cell map) — what a session's snapshot ledger accounts for.
    pub fn resident_bytes(&self) -> usize {
        self.cell_of_slot.size_bytes() + self.nbr_offsets.size_bytes() + self.nbr_cells.size_bytes()
    }

    /// Upper bound on [`Self::resident_bytes`] for a plan over `grid`,
    /// computable before the hoisting kernels run: every cell has at most
    /// `min(3^dim, |B|)` existing neighbor cells in the CSR table.
    pub fn projected_bytes_upper(grid: &DeviceGrid) -> usize {
        let nb = grid.b.len();
        let shell = 3usize.saturating_pow(grid.dim as u32).min(nb.max(1));
        let u32s = std::mem::size_of::<u32>();
        grid.num_points * u32s + (nb + 1) * u32s + nb.saturating_mul(shell) * u32s
    }

    /// Builds the plan on the device: two one-thread-per-cell kernel
    /// passes (count, then fill) perform the hoisted mask clipping and
    /// `B` searches; the host prefix-sums and scatters the records into
    /// the CSR table and uploads it together with the slot→cell map.
    pub fn build(
        device: &Device,
        grid: &DeviceGrid,
        unicomp: bool,
        launch_cfg: LaunchConfig,
    ) -> Result<(Self, PlanBuildStats), OutOfMemory> {
        let t0 = Instant::now();
        let nb = grid.b.len();
        let mut stats = PlanBuildStats::default();

        // Pass 1: per-cell neighbor counts.
        let mut counts = AppendBuffer::<(u32, u32)>::new(device.pool(), nb)?;
        let s1 = launch(
            device,
            launch_cfg,
            nb,
            &CellNeighborCountKernel {
                grid,
                unicomp,
                counts: &counts,
            },
        );
        let count_records = counts.drain_to_host();
        drop(counts);
        stats.modeled += s1.modeled_wall;
        stats.d2h_bytes += count_records.len() * 8;

        let mut offsets = vec![0u32; nb + 1];
        let mut total = 0u64;
        for &(h, c) in &count_records {
            offsets[h as usize + 1] = c;
        }
        for off in offsets.iter_mut().skip(1) {
            total += *off as u64;
            assert!(
                total <= u32::MAX as u64,
                "neighbor table exceeds u32 offsets ({total} entries)"
            );
            *off = total as u32;
        }

        // Pass 2: materialize the (h, neighbor) records.
        let mut entries = AppendBuffer::<(u32, u32)>::new(device.pool(), total as usize)?;
        let s2 = launch(
            device,
            launch_cfg,
            nb,
            &CellNeighborFillKernel {
                grid,
                unicomp,
                entries: &entries,
            },
        );
        debug_assert!(!entries.overflowed(), "fill pass exceeded counted total");
        let fill_records = entries.drain_to_host();
        drop(entries);
        stats.modeled += s2.modeled_wall;
        stats.d2h_bytes += fill_records.len() * 8;

        // Counting scatter into CSR, then per-list sort: append order is
        // nondeterministic across blocks, the sorted lists are not.
        let mut values = vec![0u32; total as usize];
        let mut cursor: Vec<u32> = offsets[..nb].to_vec();
        for &(h, nh) in &fill_records {
            let c = &mut cursor[h as usize];
            values[*c as usize] = nh;
            *c += 1;
        }
        for w in offsets.windows(2) {
            values[w[0] as usize..w[1] as usize].sort_unstable();
        }

        // Slot→cell map, derived from G (pure host metadata, like A).
        let g_host = grid.g.as_slice();
        let mut cell_of_slot = vec![0u32; grid.num_points];
        for (h, r) in g_host.iter().enumerate() {
            cell_of_slot[r.begin as usize..r.end as usize].fill(h as u32);
        }

        let plan = Self {
            unicomp,
            cell_of_slot: device.alloc_from_host(&cell_of_slot)?,
            nbr_offsets: device.alloc_from_host(&offsets)?,
            nbr_cells: device.alloc_from_host(&values)?,
        };
        stats.h2d_bytes = plan.cell_of_slot.size_bytes()
            + plan.nbr_offsets.size_bytes()
            + plan.nbr_cells.size_bytes();
        stats.wall = t0.elapsed();
        Ok((plan, stats))
    }
}

/// The cell-major self-join kernel: one logical thread per `A`-slot in
/// `slot_offset .. slot_offset + slot_count` (consecutive threads handle
/// points of the same grid cell by construction). Per thread it performs
/// **zero** mask clips and **zero** `B` searches — the plan hoisted them
/// per cell — and scans each neighbor cell's points as one contiguous
/// read stream from the reordered snapshot, reading the `A` remap only
/// when a pair is emitted. Results flush through the staged reservation
/// path (one atomic per [`PAIR_STAGE`] pairs).
pub struct CellMajorSelfJoinKernel<'a> {
    /// Device-resident grid and data (must carry the reordered snapshot).
    pub grid: &'a DeviceGrid,
    /// Squared distance threshold ε′² (see
    /// [`crate::kernels::SelfJoinKernel::eps_sq`]): usually the grid's own
    /// ε², smaller under resident-index reuse. The hoisted neighbor table
    /// is ε′-independent — it enumerates adjacent *cells*, which cover any
    /// radius up to the cell width — so one plan serves every in-band ε′.
    pub eps_sq: f64,
    /// Hoisted per-cell neighbor table (must match `unicomp`).
    pub plan: &'a CellMajorPlan,
    /// Result pair sink.
    pub results: &'a AppendBuffer<Pair>,
    /// First `A`-slot handled by this launch.
    pub slot_offset: usize,
    /// Number of slots in this launch.
    pub slot_count: usize,
    /// Optional emit-time ownership window: pairs whose key falls outside
    /// `[lo, hi)` are dropped *before* staging, so a sharded subplan never
    /// materializes ghost-keyed pairs (see
    /// [`crate::kernels::SelfJoinKernel::ownership`]).
    pub ownership: Option<Ownership>,
}

impl Kernel for CellMajorSelfJoinKernel<'_> {
    fn resources(&self) -> KernelResources {
        // Same register model as the per-thread kernel: hoisting removes
        // the traversal bookkeeping (adjacent ranges, odometer state,
        // search cursors) but the staging buffer and CSR cursors consume
        // the savings, so occupancy — and Table II — are unchanged.
        KernelResources {
            registers_per_thread: kernel_registers(self.grid.dim, self.plan.unicomp),
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        if ctx.global_id >= self.slot_count {
            return;
        }
        let slot = self.slot_offset + ctx.global_id;
        let grid = self.grid;
        let dim = grid.dim;
        let eps_sq = self.eps_sq;

        // Home cell and query point: the slot→cell read replaces the
        // per-thread cell computation + mask clip + own-cell search.
        let h = ctx.read(&self.plan.cell_of_slot, slot) as usize;
        let mut p = [0.0f64; MAX_DIM];
        p[..dim].copy_from_slice(ctx.read_range(&grid.reordered, slot * dim, dim));
        let qid = ctx.read(&grid.a, slot);
        let owns_query = self.ownership.is_none_or(|o| o.keeps(qid));
        if !self.plan.unicomp && !owns_query {
            // Full mode emits only query-keyed pairs; a ghost query's
            // whole traversal would be filtered, so skip it entirely.
            return;
        }
        let owns = |id: u32| self.ownership.is_none_or(|o| o.keeps(id));

        let mut stage = PairStage::new();
        let lo = ctx.read(&self.plan.nbr_offsets, h) as usize;
        let hi = ctx.read(&self.plan.nbr_offsets, h + 1) as usize;

        if self.plan.unicomp {
            // Home cell via the id-ordering rule on slots (slots are a
            // bijection with ids, so "each unordered pair once" holds and
            // no candidate id read is needed below the diagonal). Under
            // UNICOMP a ghost query may be the sole producer of an owned
            // candidate's pair, so filtering is per direction, never a
            // whole-thread skip.
            let own = ctx.read(&grid.g, h);
            for s in (slot as u32 + 1)..own.end {
                let q = ctx.read_range(&grid.reordered, s as usize * dim, dim);
                if dist_sq(&p[..dim], q) <= eps_sq {
                    let cand = ctx.read(&grid.a, s as usize);
                    if owns_query {
                        stage.push(ctx, self.results, Pair::new(qid, cand));
                    }
                    if owns(cand) {
                        stage.push(ctx, self.results, Pair::new(cand, qid));
                    }
                }
            }
            // Parity-selected neighbor cells: both directions per hit.
            for k in lo..hi {
                let nh = ctx.read(&self.plan.nbr_cells, k) as usize;
                let r = ctx.read(&grid.g, nh);
                for s in r.begin..r.end {
                    let q = ctx.read_range(&grid.reordered, s as usize * dim, dim);
                    if dist_sq(&p[..dim], q) <= eps_sq {
                        let cand = ctx.read(&grid.a, s as usize);
                        if owns_query {
                            stage.push(ctx, self.results, Pair::new(qid, cand));
                        }
                        if owns(cand) {
                            stage.push(ctx, self.results, Pair::new(cand, qid));
                        }
                    }
                }
            }
        } else {
            // Full traversal: the list includes the home cell; the slot
            // comparison excludes exactly the query point itself.
            for k in lo..hi {
                let nh = ctx.read(&self.plan.nbr_cells, k) as usize;
                let r = ctx.read(&grid.g, nh);
                for s in r.begin..r.end {
                    if s as usize == slot {
                        continue;
                    }
                    let q = ctx.read_range(&grid.reordered, s as usize * dim, dim);
                    if dist_sq(&p[..dim], q) <= eps_sq {
                        let cand = ctx.read(&grid.a, s as usize);
                        stage.push(ctx, self.results, Pair::new(qid, cand));
                    }
                }
            }
        }
        stage.flush(ctx, self.results);
    }
}

/// Squared Euclidean distance between two register/cache-resident slices.
#[inline]
fn dist_sq(p: &[f64], q: &[f64]) -> f64 {
    let mut acc = 0.0;
    for j in 0..p.len() {
        let d = p[j] - q[j];
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;
    use crate::result::NeighborTable;
    use sim_gpu::{Device, DeviceSpec};
    use sj_datasets::synthetic::{clustered, lattice, uniform};
    use sj_datasets::Dataset;

    fn run_cell_major(data: &Dataset, eps: f64, unicomp: bool) -> Vec<Pair> {
        let grid = GridIndex::build(data, eps).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, data, &grid).unwrap();
        let (plan, stats) =
            CellMajorPlan::build(&dev, &dg, unicomp, LaunchConfig::default()).unwrap();
        assert!(stats.h2d_bytes > 0 || data.is_empty());
        let mut results =
            AppendBuffer::<Pair>::new(dev.pool(), data.len() * data.len() + 64).unwrap();
        let kernel = CellMajorSelfJoinKernel {
            grid: &dg,
            eps_sq: eps * eps,
            plan: &plan,
            results: &results,
            slot_offset: 0,
            slot_count: data.len(),
            ownership: None,
        };
        launch(&dev, LaunchConfig::default(), data.len(), &kernel);
        assert!(!results.overflowed());
        results.drain_to_host()
    }

    fn run_per_thread(data: &Dataset, eps: f64, unicomp: bool) -> Vec<Pair> {
        let grid = GridIndex::build(data, eps).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, data, &grid).unwrap();
        let mut results =
            AppendBuffer::<Pair>::new(dev.pool(), data.len() * data.len() + 64).unwrap();
        let kernel = crate::kernels::SelfJoinKernel {
            grid: &dg,
            eps_sq: eps * eps,
            results: &results,
            query_offset: 0,
            query_count: data.len(),
            unicomp,
            cell_order: false,
            ownership: None,
        };
        launch(&dev, LaunchConfig::default(), data.len(), &kernel);
        assert!(!results.overflowed());
        results.drain_to_host()
    }

    fn assert_paths_agree(data: &Dataset, eps: f64) {
        for unicomp in [false, true] {
            let cm = NeighborTable::from_pairs(data.len(), &run_cell_major(data, eps, unicomp));
            let pt = NeighborTable::from_pairs(data.len(), &run_per_thread(data, eps, unicomp));
            assert_eq!(cm, pt, "unicomp={unicomp}, eps={eps}");
        }
    }

    #[test]
    fn matches_per_thread_kernel_2d() {
        assert_paths_agree(&uniform(2, 500, 61), 4.0);
    }

    #[test]
    fn matches_per_thread_kernel_3d_clustered() {
        assert_paths_agree(&clustered(3, 450, 5, 1.0, 0.1, 62), 1.8);
    }

    #[test]
    fn matches_per_thread_kernel_6d() {
        assert_paths_agree(&uniform(6, 220, 63), 35.0);
    }

    #[test]
    fn duplicate_points_handled() {
        let mut data = Dataset::new(2);
        for _ in 0..7 {
            data.push(&[3.0, 3.0]);
        }
        for unicomp in [false, true] {
            let t = NeighborTable::from_pairs(7, &run_cell_major(&data, 0.5, unicomp));
            assert!(t.is_irreflexive());
            assert_eq!(t.total_pairs(), 42, "unicomp={unicomp}"); // 7×6 directed
        }
    }

    #[test]
    fn slot_batches_partition_results() {
        let data = uniform(2, 500, 64);
        let eps = 4.0;
        let grid = GridIndex::build(&data, eps).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let (plan, _) = CellMajorPlan::build(&dev, &dg, true, LaunchConfig::default()).unwrap();
        let mut all = Vec::new();
        for (off, cnt) in [(0usize, 180usize), (180, 180), (360, 140)] {
            let mut results = AppendBuffer::<Pair>::new(dev.pool(), 500 * 500).unwrap();
            let kernel = CellMajorSelfJoinKernel {
                grid: &dg,
                eps_sq: eps * eps,
                plan: &plan,
                results: &results,
                slot_offset: off,
                slot_count: cnt,
                ownership: None,
            };
            launch(&dev, LaunchConfig::default(), cnt, &kernel);
            all.extend(results.drain_to_host());
        }
        let expected = NeighborTable::from_pairs(500, &run_per_thread(&data, eps, false));
        assert_eq!(NeighborTable::from_pairs(500, &all), expected);
    }

    #[test]
    fn plan_neighbor_lists_match_host_enumeration() {
        // The CSR table must contain exactly the existing adjacent cells
        // the host-side grid would enumerate for each home cell.
        let data = uniform(3, 400, 65);
        let grid = GridIndex::build(&data, 9.0).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let (plan, _) = CellMajorPlan::build(&dev, &dg, false, LaunchConfig::default()).unwrap();
        let offsets = plan.nbr_offsets.as_slice();
        let values = plan.nbr_cells.as_slice();
        let mut cbuf = [0u32; MAX_DIM];
        for (h, &cell) in grid.b().iter().enumerate() {
            delinearize(cell, grid.cells_per_dim(), &mut cbuf[..3]);
            let mut adj = [(0u32, 0u32); MAX_DIM];
            adjacent_ranges(&cbuf[..3], grid.cells_per_dim(), &mut adj[..3]);
            let mut filtered = [(0u32, 0u32); MAX_DIM];
            for j in 0..3 {
                filtered[j] = grid.mask_range(j, adj[j].0, adj[j].1).unwrap();
            }
            let mut expected = Vec::new();
            for_each_full(3, &filtered[..3], |coords| {
                let lin = linearize(coords, grid.cells_per_dim());
                if let Some(nh) = grid.find_cell(lin) {
                    expected.push(nh as u32);
                }
            });
            expected.sort_unstable();
            assert_eq!(
                &values[offsets[h] as usize..offsets[h + 1] as usize],
                &expected[..],
                "cell {h}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = Dataset::new(2);
        assert!(run_cell_major(&empty, 1.0, false).is_empty());
        assert!(run_cell_major(&empty, 1.0, true).is_empty());
        let one = lattice(2, 1, 1.0);
        assert!(run_cell_major(&one, 1.0, true).is_empty());
    }

    #[test]
    fn overflow_is_detected_not_ub() {
        let data = uniform(2, 300, 66);
        let grid = GridIndex::build(&data, 20.0).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let (plan, _) = CellMajorPlan::build(&dev, &dg, false, LaunchConfig::default()).unwrap();
        let results = AppendBuffer::<Pair>::new(dev.pool(), 10).unwrap();
        let kernel = CellMajorSelfJoinKernel {
            grid: &dg,
            eps_sq: 20.0 * 20.0,
            plan: &plan,
            results: &results,
            slot_offset: 0,
            slot_count: 300,
            ownership: None,
        };
        launch(&dev, LaunchConfig::default(), 300, &kernel);
        assert!(results.overflowed());
        assert_eq!(results.len(), 10);
    }
}
