//! The GPU self-join kernels (paper Algorithm 1 and its UNICOMP variant).
//!
//! `GPUSELFJOINGLOBAL` assigns one thread per query point. Each thread:
//!
//! 1. loads its point into registers,
//! 2. computes the adjacent-cell index ranges in every dimension,
//! 3. clips them against the mask arrays `M_j`,
//! 4. enumerates the surviving cells, binary-searching `B` for each
//!    linearized id,
//! 5. for every existing cell, walks its `A` range and evaluates the
//!    Euclidean distance, and
//! 6. atomically appends `(query, neighbour)` key/value pairs to the
//!    result buffer.
//!
//! The UNICOMP variant restricts step 4 to the parity-selected half of the
//! neighbour cells (see [`crate::unicomp`]), handles same-cell pairs with
//! an id-ordering rule, and appends **both** directed pairs on success.
//!
//! Every global-memory access (point loads, mask probes, `B` binary-search
//! probes, `G`/`A` reads, result stores) is routed through the thread
//! context so the profiled mode drives the L1 cache simulator with the
//! kernel's true access stream.

use crate::device_grid::DeviceGrid;
use crate::grid::cell_coords;
use crate::linearize::{linearize, MAX_DIM};
use crate::result::{Ownership, Pair};
use crate::unicomp::{adjacent_ranges, for_each_full, for_each_unicomp, DimRange};
use sim_gpu::append::AppendBuffer;
use sim_gpu::occupancy::KernelResources;
use sim_gpu::{DeviceBuffer, Kernel, ThreadCtx, Tracer};

/// Register-footprint model of the "compiled" kernels.
///
/// Calibrated so the occupancy calculator reproduces the paper's Table II:
/// 32 regs (2-D base) → 100%, 40 (2-D UNICOMP) → 75%, 44/48 (5-/6-D base)
/// → 62.5%, 60/64 (5-/6-D UNICOMP) → 50%, at 256-thread blocks. The base
/// cost grows with dimensionality (coordinate registers, loop state);
/// UNICOMP adds parity bookkeeping and the second result register set,
/// saturating at +16.
pub fn kernel_registers(dim: usize, unicomp: bool) -> usize {
    let base = 24 + 4 * dim;
    if unicomp {
        base + (4 * dim).min(16)
    } else {
        base
    }
}

/// Binary search over a traced device buffer: returns the first index in
/// `[lo, hi)` whose element does not satisfy `pred` (i.e.
/// `partition_point`), tracing every probe.
#[inline]
fn traced_partition_point<E, T, P>(
    ctx: &mut ThreadCtx<'_, T>,
    buf: &DeviceBuffer<E>,
    mut lo: usize,
    mut hi: usize,
    mut pred: P,
) -> usize
where
    E: Copy,
    T: Tracer,
    P: FnMut(E) -> bool,
{
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = ctx.read(buf, mid);
        if pred(v) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Clips the adjacent range `[lo, hi]` of dimension `j` against `M_j`
/// using traced binary searches. Returns `None` when the mask eliminates
/// the whole range.
#[inline]
pub(crate) fn traced_mask_range<T: Tracer>(
    ctx: &mut ThreadCtx<'_, T>,
    grid: &DeviceGrid,
    j: usize,
    lo: u32,
    hi: u32,
) -> Option<DimRange> {
    let (mlo, mhi) = grid.mask_bounds(j);
    let start = traced_partition_point(ctx, &grid.m_values, mlo, mhi, |c| c < lo);
    if start == mhi {
        return None;
    }
    let first = ctx.read(&grid.m_values, start);
    if first > hi {
        return None;
    }
    let end = traced_partition_point(ctx, &grid.m_values, start, mhi, |c| c <= hi);
    let last = ctx.read(&grid.m_values, end - 1);
    Some((first, last))
}

/// Binary-searches `B` for a linear cell id (traced). Returns the cell's
/// position in `B`/`G` if present.
#[inline]
pub(crate) fn traced_find_cell<T: Tracer>(
    ctx: &mut ThreadCtx<'_, T>,
    grid: &DeviceGrid,
    linear_id: u64,
) -> Option<usize> {
    let n = grid.b.len();
    let pos = traced_partition_point(ctx, &grid.b, 0, n, |c| c < linear_id);
    if pos < n && ctx.read(&grid.b, pos) == linear_id {
        Some(pos)
    } else {
        None
    }
}

/// Loads a point into "registers" (a stack array) with one wide access.
#[inline]
fn load_point<T: Tracer>(
    ctx: &mut ThreadCtx<'_, T>,
    grid: &DeviceGrid,
    pid: usize,
) -> [f64; MAX_DIM] {
    let mut out = [0.0; MAX_DIM];
    let src = ctx.read_range(&grid.coords, pid * grid.dim, grid.dim);
    out[..grid.dim].copy_from_slice(src);
    out
}

/// Squared Euclidean distance between a register-resident point and a
/// device-resident candidate (one wide load).
#[inline]
fn traced_dist_sq<T: Tracer>(
    ctx: &mut ThreadCtx<'_, T>,
    grid: &DeviceGrid,
    p: &[f64],
    cand: usize,
) -> f64 {
    let q = ctx.read_range(&grid.coords, cand * grid.dim, grid.dim);
    let mut acc = 0.0;
    for j in 0..grid.dim {
        let d = p[j] - q[j];
        acc += d * d;
    }
    acc
}

/// Evaluates all points of the cell at position `h` in `B`/`G` against the
/// register point, invoking `emit` for every candidate within ε
/// (self-pairs excluded by the caller's filter).
#[inline]
#[allow(clippy::too_many_arguments)]
fn scan_cell<T: Tracer, F: FnMut(&mut ThreadCtx<'_, T>, u32)>(
    ctx: &mut ThreadCtx<'_, T>,
    grid: &DeviceGrid,
    h: usize,
    p: &[f64],
    eps_sq: f64,
    filter_min_exclusive: Option<u32>,
    skip_id: Option<u32>,
    emit: &mut F,
) {
    let range = ctx.read(&grid.g, h);
    for ai in range.begin..range.end {
        let cand = ctx.read(&grid.a, ai as usize);
        if let Some(min) = filter_min_exclusive {
            if cand <= min {
                continue;
            }
        }
        if skip_id == Some(cand) {
            continue;
        }
        if traced_dist_sq(ctx, grid, p, cand as usize) <= eps_sq {
            emit(ctx, cand);
        }
    }
}

/// Pushes a result pair with access tracing (atomic cursor bump + store).
#[inline]
fn push_pair<T: Tracer>(
    ctx: &mut ThreadCtx<'_, T>,
    results: &AppendBuffer<Pair>,
    key: u32,
    value: u32,
) {
    ctx.trace_atomic(results.cursor_addr(), 8);
    if let Some(addr) = results.push(Pair::new(key, value)) {
        ctx.trace_store(addr, std::mem::size_of::<Pair>());
    }
}

/// The `GPUSELFJOINGLOBAL` kernel (Algorithm 1), optionally with UNICOMP.
///
/// One logical thread per query point in
/// `query_offset .. query_offset + query_count` — the batching executor
/// launches it once per batch over a sub-range of the point ids.
pub struct SelfJoinKernel<'a> {
    /// Device-resident grid and data.
    pub grid: &'a DeviceGrid,
    /// Squared distance threshold ε′². Usually the grid's own ε²; a
    /// *smaller* value when a resident index built at a larger ε serves
    /// this query (session reuse) — the grid's adjacent-cell shell covers
    /// any radius up to its cell width, so only the threshold changes.
    pub eps_sq: f64,
    /// Result pair sink.
    pub results: &'a AppendBuffer<Pair>,
    /// First query slot handled by this launch.
    pub query_offset: usize,
    /// Number of query points in this launch.
    pub query_count: usize,
    /// Whether to apply the UNICOMP work-avoidance pattern.
    pub unicomp: bool,
    /// Query-ordering optimization: when set, thread `t` processes point
    /// `A[query_offset + t]` instead of point id `query_offset + t`, so
    /// consecutive threads (and hence warps) handle points of the *same
    /// grid cell*. Same-cell queries visit the same neighbour cells and
    /// perform similar work, which raises L1 temporal locality and lowers
    /// warp divergence on skewed data. Results are identical either way
    /// (the query set is a permutation).
    pub cell_order: bool,
    /// Emit-time ownership window: only pairs keyed by a local id in
    /// `[lo, hi)` are appended — one register comparison ahead of the
    /// result reservation. Without UNICOMP a non-owned query thread
    /// returns immediately (every pair it could emit is ghost-keyed);
    /// with UNICOMP ghost threads still run — the parity rule may make
    /// them the sole producer of an owned-keyed reverse pair — and the
    /// window is tested per direction.
    pub ownership: Option<Ownership>,
}

impl Kernel for SelfJoinKernel<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            registers_per_thread: kernel_registers(self.grid.dim, self.unicomp),
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        if ctx.global_id >= self.query_count {
            return;
        }
        let q = if self.cell_order {
            ctx.read(&self.grid.a, self.query_offset + ctx.global_id) as usize
        } else {
            self.query_offset + ctx.global_id
        };
        let qid = q as u32;
        let owns_query = self.ownership.is_none_or(|o| o.keeps(qid));
        if !self.unicomp && !owns_query {
            // Every pair this thread could emit would be keyed by its own
            // (non-owned) query id: skip the whole traversal.
            return;
        }
        let grid = self.grid;
        let dim = grid.dim;
        let eps_sq = self.eps_sq;

        // Load the query point and compute its cell (registers).
        let p = load_point(ctx, grid, q);
        let mut cell = [0u32; MAX_DIM];
        cell_coords(
            &p[..dim],
            &grid.gmin[..dim],
            grid.epsilon,
            &grid.cells_per_dim[..dim],
            &mut cell[..dim],
        );

        // Adjacent ranges, clipped against the masks M_j.
        let mut adj = [(0u32, 0u32); MAX_DIM];
        adjacent_ranges(&cell[..dim], &grid.cells_per_dim[..dim], &mut adj[..dim]);
        let mut filtered = [(0u32, 0u32); MAX_DIM];
        for j in 0..dim {
            match traced_mask_range(ctx, grid, j, adj[j].0, adj[j].1) {
                Some(r) => filtered[j] = r,
                // The query's own cell is non-empty, so every dimension's
                // mask contains at least its coordinate.
                None => unreachable!("mask cannot eliminate the query's own coordinate"),
            }
        }

        if !self.unicomp {
            // Full traversal: visit every surviving adjacent cell
            // (including our own) and report one directed pair per hit.
            for_each_full(dim, &filtered[..dim], |coords| {
                let lin = linearize(coords, &grid.cells_per_dim[..dim]);
                if let Some(h) = traced_find_cell(ctx, grid, lin) {
                    scan_cell(
                        ctx,
                        grid,
                        h,
                        &p[..dim],
                        eps_sq,
                        None,
                        Some(qid),
                        &mut |ctx, cand| {
                            push_pair(ctx, self.results, qid, cand);
                        },
                    );
                }
            });
        } else {
            // UNICOMP: own cell via the id-ordering rule …
            let ownership = self.ownership;
            let owns = |id: u32| ownership.is_none_or(|o| o.keeps(id));
            let own_lin = linearize(&cell[..dim], &grid.cells_per_dim[..dim]);
            let own =
                traced_find_cell(ctx, grid, own_lin).expect("query point's cell must exist in B");
            scan_cell(
                ctx,
                grid,
                own,
                &p[..dim],
                eps_sq,
                Some(qid),
                None,
                &mut |ctx, cand| {
                    if owns_query {
                        push_pair(ctx, self.results, qid, cand);
                    }
                    if owns(cand) {
                        push_pair(ctx, self.results, cand, qid);
                    }
                },
            );
            // … and the parity-selected half of the neighbour cells,
            // reporting both directions for every hit.
            for_each_unicomp(dim, &cell[..dim], &filtered[..dim], |coords| {
                let lin = linearize(coords, &grid.cells_per_dim[..dim]);
                if let Some(h) = traced_find_cell(ctx, grid, lin) {
                    scan_cell(
                        ctx,
                        grid,
                        h,
                        &p[..dim],
                        eps_sq,
                        None,
                        None,
                        &mut |ctx, cand| {
                            if owns_query {
                                push_pair(ctx, self.results, qid, cand);
                            }
                            if owns(cand) {
                                push_pair(ctx, self.results, cand, qid);
                            }
                        },
                    );
                }
            });
        }
    }
}

/// Result-size estimation kernel (batching support, §V-A).
///
/// Runs the same traversal as the join kernel for a *sample* of query
/// points, but only counts neighbours. One thread per sample; each thread
/// appends its count to `counts`.
pub struct CountKernel<'a> {
    /// Device-resident grid and data.
    pub grid: &'a DeviceGrid,
    /// Squared distance threshold ε′² (see [`SelfJoinKernel::eps_sq`]).
    pub eps_sq: f64,
    /// Sampled query point ids.
    pub sample_ids: &'a DeviceBuffer<u32>,
    /// Per-sample neighbour counts (append order is irrelevant; only the
    /// sum is used).
    pub counts: &'a AppendBuffer<u32>,
}

impl Kernel for CountKernel<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            registers_per_thread: kernel_registers(self.grid.dim, false),
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        if ctx.global_id >= self.sample_ids.len() {
            return;
        }
        let qid = ctx.read(self.sample_ids, ctx.global_id);
        let q = qid as usize;
        let grid = self.grid;
        let dim = grid.dim;
        let eps_sq = self.eps_sq;

        let p = load_point(ctx, grid, q);
        let mut cell = [0u32; MAX_DIM];
        cell_coords(
            &p[..dim],
            &grid.gmin[..dim],
            grid.epsilon,
            &grid.cells_per_dim[..dim],
            &mut cell[..dim],
        );
        let mut adj = [(0u32, 0u32); MAX_DIM];
        adjacent_ranges(&cell[..dim], &grid.cells_per_dim[..dim], &mut adj[..dim]);
        let mut filtered = [(0u32, 0u32); MAX_DIM];
        for j in 0..dim {
            match traced_mask_range(ctx, grid, j, adj[j].0, adj[j].1) {
                Some(r) => filtered[j] = r,
                None => unreachable!("mask cannot eliminate the query's own coordinate"),
            }
        }
        let mut count = 0u32;
        for_each_full(dim, &filtered[..dim], |coords| {
            let lin = linearize(coords, &grid.cells_per_dim[..dim]);
            if let Some(h) = traced_find_cell(ctx, grid, lin) {
                scan_cell(
                    ctx,
                    grid,
                    h,
                    &p[..dim],
                    eps_sq,
                    None,
                    Some(qid),
                    &mut |_, _| {
                        count += 1;
                    },
                );
            }
        });
        self.counts.push(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;
    use crate::result::NeighborTable;
    use sim_gpu::{launch, Device, DeviceSpec, LaunchConfig};
    use sj_datasets::synthetic::{clustered, uniform};
    use sj_datasets::{euclidean_sq, Dataset};

    fn brute_pairs(data: &Dataset, eps: f64) -> Vec<Pair> {
        let eps_sq = eps * eps;
        let mut out = Vec::new();
        for i in 0..data.len() {
            for j in 0..data.len() {
                if i != j && euclidean_sq(data.point(i), data.point(j)) <= eps_sq {
                    out.push(Pair::new(i as u32, j as u32));
                }
            }
        }
        out
    }

    fn run_kernel(data: &Dataset, eps: f64, unicomp: bool) -> Vec<Pair> {
        let grid = GridIndex::build(data, eps).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, data, &grid).unwrap();
        let mut results =
            AppendBuffer::<Pair>::new(dev.pool(), data.len() * data.len() + 16).unwrap();
        let kernel = SelfJoinKernel {
            grid: &dg,
            eps_sq: eps * eps,
            results: &results,
            query_offset: 0,
            query_count: data.len(),
            unicomp,
            cell_order: false,
            ownership: None,
        };
        launch(&dev, LaunchConfig::default(), data.len(), &kernel);
        assert!(!results.overflowed());
        results.drain_to_host()
    }

    fn assert_matches_brute(data: &Dataset, eps: f64, unicomp: bool) {
        let expected = NeighborTable::from_pairs(data.len(), &brute_pairs(data, eps));
        let got = NeighborTable::from_pairs(data.len(), &run_kernel(data, eps, unicomp));
        assert_eq!(got, expected, "unicomp={unicomp}, eps={eps}");
    }

    #[test]
    fn kernel_matches_brute_force_2d() {
        let data = uniform(2, 400, 11);
        assert_matches_brute(&data, 5.0, false);
        assert_matches_brute(&data, 5.0, true);
    }

    #[test]
    fn kernel_matches_brute_force_3d() {
        let data = uniform(3, 300, 12);
        assert_matches_brute(&data, 12.0, false);
        assert_matches_brute(&data, 12.0, true);
    }

    #[test]
    fn kernel_matches_brute_force_6d() {
        let data = uniform(6, 200, 13);
        assert_matches_brute(&data, 35.0, false);
        assert_matches_brute(&data, 35.0, true);
    }

    #[test]
    fn kernel_matches_on_clustered_data() {
        let data = clustered(3, 400, 5, 1.0, 0.1, 14);
        assert_matches_brute(&data, 2.0, false);
        assert_matches_brute(&data, 2.0, true);
    }

    #[test]
    fn tiny_epsilon_yields_no_pairs() {
        let data = uniform(2, 200, 15);
        assert!(run_kernel(&data, 1e-3, false).is_empty());
        assert!(run_kernel(&data, 1e-3, true).is_empty());
    }

    #[test]
    fn degenerate_epsilon_overflows_cell_space() {
        // ε so small the virtual grid exceeds u64 linear ids must be
        // rejected at build time, not wrap silently.
        let data = uniform(2, 50, 15);
        assert!(matches!(
            GridIndex::build(&data, 1e-9),
            Err(crate::error::GridBuildError::CellSpaceOverflow { .. })
        ));
    }

    #[test]
    fn duplicate_points_handled() {
        // Coincident points are within any ε of each other but must not
        // produce self-pairs.
        let mut data = Dataset::new(2);
        for _ in 0..5 {
            data.push(&[1.0, 1.0]);
        }
        for unicomp in [false, true] {
            let pairs = run_kernel(&data, 0.5, unicomp);
            let t = NeighborTable::from_pairs(5, &pairs);
            assert!(t.is_irreflexive());
            assert_eq!(t.total_pairs(), 20, "unicomp={unicomp}"); // 5×4 directed
        }
    }

    #[test]
    fn batched_query_ranges_partition_results() {
        let data = uniform(2, 500, 16);
        let eps = 4.0;
        let grid = GridIndex::build(&data, eps).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let mut all = Vec::new();
        for (off, cnt) in [(0usize, 200usize), (200, 200), (400, 100)] {
            let mut results = AppendBuffer::<Pair>::new(dev.pool(), 500 * 500).unwrap();
            let kernel = SelfJoinKernel {
                grid: &dg,
                eps_sq: eps * eps,
                results: &results,
                query_offset: off,
                query_count: cnt,
                unicomp: false,
                cell_order: false,
                ownership: None,
            };
            launch(&dev, LaunchConfig::default(), cnt, &kernel);
            all.extend(results.drain_to_host());
        }
        let expected = NeighborTable::from_pairs(500, &brute_pairs(&data, eps));
        assert_eq!(NeighborTable::from_pairs(500, &all), expected);
    }

    #[test]
    fn count_kernel_estimates_exactly_on_full_sample() {
        let data = uniform(2, 300, 17);
        let eps = 6.0;
        let grid = GridIndex::build(&data, eps).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let ids: Vec<u32> = (0..300u32).collect();
        let sample = dev.alloc_from_host(&ids).unwrap();
        let mut counts = AppendBuffer::<u32>::new(dev.pool(), 300).unwrap();
        let kernel = CountKernel {
            grid: &dg,
            eps_sq: eps * eps,
            sample_ids: &sample,
            counts: &counts,
        };
        launch(&dev, LaunchConfig::default(), 300, &kernel);
        let total: u64 = counts.drain_to_host().iter().map(|&c| c as u64).sum();
        assert_eq!(total as usize, brute_pairs(&data, eps).len());
    }

    #[test]
    fn register_model_matches_table_two() {
        assert_eq!(kernel_registers(2, false), 32);
        assert_eq!(kernel_registers(2, true), 40);
        assert_eq!(kernel_registers(5, false), 44);
        assert_eq!(kernel_registers(6, false), 48);
        assert_eq!(kernel_registers(5, true), 60);
        assert_eq!(kernel_registers(6, true), 64);
    }

    #[test]
    fn overflow_is_detected_not_ub() {
        let data = uniform(2, 300, 18);
        let grid = GridIndex::build(&data, 20.0).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let results = AppendBuffer::<Pair>::new(dev.pool(), 10).unwrap();
        let kernel = SelfJoinKernel {
            grid: &dg,
            eps_sq: 20.0 * 20.0,
            results: &results,
            query_offset: 0,
            query_count: 300,
            unicomp: false,
            cell_order: false,
            ownership: None,
        };
        launch(&dev, LaunchConfig::default(), 300, &kernel);
        assert!(results.overflowed());
        assert_eq!(results.len(), 10);
    }
}
