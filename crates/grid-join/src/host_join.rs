//! Host-side grid joins: a sequential reference and a rayon-parallel
//! variant.
//!
//! These are *independent* implementations of the ε-grid self-join that
//! never touch the device model. They serve two purposes: cross-validating
//! the GPU kernels (two implementations agreeing on random inputs is the
//! repo's strongest correctness signal) and providing the "multi-core CPU"
//! comparison point used by some ablation benches.
//!
//! Both entry points are thin [`crate::plan::JoinPlan`] builders over the
//! shared executor ([`crate::plan::execute`] with a host backend), and all
//! three scan paths — sequential, parallel and the single-point
//! [`query_neighbors`] — funnel through one adjacent-cell scan,
//! [`query_neighbors_within`]. The `_within` form takes an explicit query
//! radius ε′ ≤ ε_built so a resident session's host fallback can serve
//! in-band queries without rebuilding the grid.

use crate::grid::GridIndex;
use crate::linearize::{linearize, MAX_DIM};
use crate::plan::{execute, Backend, JoinPlan};
use crate::result::{NeighborTable, Pair};
use crate::unicomp::{adjacent_ranges, for_each_full};
use rayon::prelude::*;
use sj_datasets::{euclidean_sq, Dataset};

/// Sequential host self-join over the grid index. Returns the directed,
/// self-excluded neighbour table.
pub fn host_self_join(data: &Dataset, grid: &GridIndex) -> NeighborTable {
    let out = execute(
        &JoinPlan::on_grid(data, grid),
        Backend::Host { parallel: false },
    )
    .expect("host execution of a prebuilt grid cannot fail");
    NeighborTable::from_pairs(data.len(), &out.pairs)
}

/// Parallel host self-join (rayon over query chunks).
pub fn host_self_join_parallel(data: &Dataset, grid: &GridIndex) -> NeighborTable {
    let out = execute(
        &JoinPlan::on_grid(data, grid),
        Backend::Host { parallel: true },
    )
    .expect("host execution of a prebuilt grid cannot fail");
    NeighborTable::from_pairs(data.len(), &out.pairs)
}

/// Parallel directed-pair scan at an explicit query radius for queries in
/// `[offset, offset + count)` — the plan executor's `Host { parallel:
/// true }` backend (an ownership window restricts the range to the owned
/// prefix).
pub(crate) fn host_pairs_parallel(
    data: &Dataset,
    grid: &GridIndex,
    query_epsilon: f64,
    offset: usize,
    count: usize,
) -> Vec<Pair> {
    let n = count;
    // ~8 chunks per thread for load balance. `div_ceil` keeps the chunk
    // size ≥ 1 for any `n` (the old `n / threads*8` truncated to 0 for
    // small inputs and leaned on an arbitrary 1024 floor that serialized
    // them); the cap bounds per-chunk scratch growth on huge inputs.
    let threads = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(threads * 8).clamp(1, 1 << 16);
    let num_chunks = n.div_ceil(chunk.max(1)).max(1);
    (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(move |ci| {
            let lo = offset + ci * chunk;
            let hi = (lo + chunk).min(offset + n);
            // One scratch Vec per chunk, reused across its queries,
            // instead of a fresh allocation per query.
            let mut out = Vec::new();
            for q in lo..hi {
                query_neighbors_within(data, grid, q, query_epsilon, |cand| {
                    out.push(Pair::new(q as u32, cand));
                });
            }
            out.into_iter()
        })
        .collect()
}

/// Directed pairs for queries in `[offset, offset + count)` at the grid's
/// own ε.
pub fn host_pairs_for_range(
    data: &Dataset,
    grid: &GridIndex,
    offset: usize,
    count: usize,
) -> Vec<Pair> {
    host_pairs_for_range_within(data, grid, grid.epsilon(), offset, count)
}

/// [`host_pairs_for_range`] at an explicit query radius `query_epsilon`
/// (≤ the grid's cell width; see [`query_neighbors_within`]).
pub fn host_pairs_for_range_within(
    data: &Dataset,
    grid: &GridIndex,
    query_epsilon: f64,
    offset: usize,
    count: usize,
) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for q in offset..offset + count {
        query_neighbors_within(data, grid, q, query_epsilon, |cand| {
            pairs.push(Pair::new(q as u32, cand));
        });
    }
    pairs
}

/// Runs one ε-range query through the grid at the grid's own ε, invoking
/// `emit` for every neighbour of point `q` (self excluded).
pub fn query_neighbors<F: FnMut(u32)>(data: &Dataset, grid: &GridIndex, q: usize, emit: F) {
    query_neighbors_within(data, grid, q, grid.epsilon(), emit)
}

/// The one adjacent-cell neighbour scan every host path uses: runs a
/// range query for point `q` at radius `query_epsilon`, invoking `emit`
/// for every neighbour (self excluded).
///
/// `query_epsilon` must not exceed the grid's cell width — the one-cell
/// adjacent shell covers any radius up to ε_built, which is what lets a
/// resident index serve smaller-ε queries without a rebuild.
///
/// # Panics
///
/// Panics if `query_epsilon` exceeds the grid's cell width (the scan
/// would silently miss neighbours; a release-mode under-count is worse
/// than a panic).
pub fn query_neighbors_within<F: FnMut(u32)>(
    data: &Dataset,
    grid: &GridIndex,
    q: usize,
    query_epsilon: f64,
    mut emit: F,
) {
    assert!(
        query_epsilon <= grid.epsilon(),
        "query epsilon {query_epsilon} exceeds the grid cell width {}",
        grid.epsilon()
    );
    let dim = grid.dim();
    let eps_sq = query_epsilon * query_epsilon;
    let p = data.point(q);
    let mut cell = [0u32; MAX_DIM];
    grid.cell_of(p, &mut cell[..dim]);
    let mut adj = [(0u32, 0u32); MAX_DIM];
    adjacent_ranges(&cell[..dim], grid.cells_per_dim(), &mut adj[..dim]);
    let mut filtered = [(0u32, 0u32); MAX_DIM];
    for j in 0..dim {
        match grid.mask_range(j, adj[j].0, adj[j].1) {
            Some(r) => filtered[j] = r,
            None => return, // cannot happen for indexed points
        }
    }
    for_each_full(dim, &filtered[..dim], |coords| {
        let lin = linearize(coords, grid.cells_per_dim());
        if let Some(h) = grid.find_cell(lin) {
            for &cand in grid.cell_points(h) {
                if cand as usize != q && euclidean_sq(p, data.point(cand as usize)) <= eps_sq {
                    emit(cand);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::{clustered, lattice, uniform};

    fn brute(data: &Dataset, eps: f64) -> NeighborTable {
        let eps_sq = eps * eps;
        let mut pairs = Vec::new();
        for i in 0..data.len() {
            for j in 0..data.len() {
                if i != j && euclidean_sq(data.point(i), data.point(j)) <= eps_sq {
                    pairs.push(Pair::new(i as u32, j as u32));
                }
            }
        }
        NeighborTable::from_pairs(data.len(), &pairs)
    }

    #[test]
    fn sequential_matches_brute_2d() {
        let data = uniform(2, 400, 21);
        let grid = GridIndex::build(&data, 4.0).unwrap();
        assert_eq!(host_self_join(&data, &grid), brute(&data, 4.0));
    }

    #[test]
    fn sequential_matches_brute_5d() {
        let data = uniform(5, 250, 22);
        let grid = GridIndex::build(&data, 25.0).unwrap();
        assert_eq!(host_self_join(&data, &grid), brute(&data, 25.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = clustered(3, 600, 6, 1.5, 0.1, 23);
        let grid = GridIndex::build(&data, 2.0).unwrap();
        assert_eq!(
            host_self_join_parallel(&data, &grid),
            host_self_join(&data, &grid)
        );
    }

    #[test]
    fn parallel_handles_tiny_inputs() {
        // Chunk sizing must not degenerate when n ≪ threads × 8.
        for n in [0usize, 1, 3, 17] {
            let data = uniform(2, n.max(1), 26);
            let data = if n == 0 { Dataset::new(2) } else { data };
            let grid = GridIndex::build(&data, 5.0).unwrap();
            assert_eq!(
                host_self_join_parallel(&data, &grid),
                host_self_join(&data, &grid),
                "n={n}"
            );
        }
    }

    #[test]
    fn shrunk_query_epsilon_matches_fresh_grid() {
        // The reuse property the session layer relies on, at host level:
        // scanning a coarse grid with ε′ < ε_built equals a fresh build at
        // ε′ exactly.
        let data = uniform(2, 500, 27);
        let built = 5.0;
        let grid = GridIndex::build(&data, built).unwrap();
        for frac in [0.3, 0.5, 0.8, 1.0] {
            let eps_q = built * frac;
            let pairs = host_pairs_for_range_within(&data, &grid, eps_q, 0, data.len());
            let got = NeighborTable::from_pairs(data.len(), &pairs);
            assert_eq!(got, brute(&data, eps_q), "frac={frac}");
        }
    }

    #[test]
    fn lattice_neighbor_counts() {
        // ε = spacing: each interior lattice point has exactly 4 axis
        // neighbours in 2-D (diagonal distance √2 > 1).
        let data = lattice(2, 6, 1.0);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        let t = host_self_join(&data, &grid);
        let mut counts: Vec<usize> = (0..36).map(|i| t.neighbors(i).len()).collect();
        counts.sort_unstable();
        // 4 corners with 2, 16 edge points with 3, 16 interior with 4.
        assert_eq!(&counts[..4], &[2, 2, 2, 2]);
        assert_eq!(counts.iter().filter(|&&c| c == 3).count(), 16);
        assert_eq!(counts.iter().filter(|&&c| c == 4).count(), 16);
    }

    #[test]
    fn range_partition_reassembles() {
        let data = uniform(2, 300, 24);
        let grid = GridIndex::build(&data, 5.0).unwrap();
        let mut all = host_pairs_for_range(&data, &grid, 0, 150);
        all.extend(host_pairs_for_range(&data, &grid, 150, 150));
        assert_eq!(
            NeighborTable::from_pairs(300, &all),
            host_self_join(&data, &grid)
        );
    }

    #[test]
    fn table_invariants_hold() {
        let data = uniform(4, 300, 25);
        let grid = GridIndex::build(&data, 15.0).unwrap();
        let t = host_self_join(&data, &grid);
        assert!(t.is_symmetric());
        assert!(t.is_irreflexive());
    }
}
