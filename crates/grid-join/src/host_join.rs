//! Host-side grid joins: a sequential reference and a rayon-parallel
//! variant.
//!
//! These are *independent* implementations of the ε-grid self-join that
//! never touch the device model. They serve two purposes: cross-validating
//! the GPU kernels (two implementations agreeing on random inputs is the
//! repo's strongest correctness signal) and providing the "multi-core CPU"
//! comparison point used by some ablation benches.

use crate::grid::GridIndex;
use crate::linearize::{linearize, MAX_DIM};
use crate::result::{NeighborTable, Pair};
use crate::unicomp::{adjacent_ranges, for_each_full};
use rayon::prelude::*;
use sj_datasets::{euclidean_sq, Dataset};

/// Sequential host self-join over the grid index. Returns the directed,
/// self-excluded neighbour table.
pub fn host_self_join(data: &Dataset, grid: &GridIndex) -> NeighborTable {
    let pairs = host_pairs_for_range(data, grid, 0, data.len());
    NeighborTable::from_pairs(data.len(), &pairs)
}

/// Parallel host self-join (rayon over query chunks).
pub fn host_self_join_parallel(data: &Dataset, grid: &GridIndex) -> NeighborTable {
    let n = data.len();
    // ~8 chunks per thread for load balance. `div_ceil` keeps the chunk
    // size ≥ 1 for any `n` (the old `n / threads*8` truncated to 0 for
    // small inputs and leaned on an arbitrary 1024 floor that serialized
    // them); the cap bounds per-chunk scratch growth on huge inputs.
    let threads = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(threads * 8).clamp(1, 1 << 16);
    let num_chunks = n.div_ceil(chunk.max(1)).max(1);
    let pairs: Vec<Pair> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(n);
            // One scratch Vec per chunk, reused across its queries,
            // instead of a fresh allocation per query.
            let mut out = Vec::new();
            for q in lo..hi {
                query_neighbors(data, grid, q, |cand| {
                    out.push(Pair::new(q as u32, cand));
                });
            }
            out.into_iter()
        })
        .collect();
    NeighborTable::from_pairs(n, &pairs)
}

/// Directed pairs for queries in `[offset, offset + count)`.
pub fn host_pairs_for_range(
    data: &Dataset,
    grid: &GridIndex,
    offset: usize,
    count: usize,
) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for q in offset..offset + count {
        query_neighbors(data, grid, q, |cand| {
            pairs.push(Pair::new(q as u32, cand));
        });
    }
    pairs
}

/// Runs one ε-range query through the grid, invoking `emit` for every
/// neighbour of point `q` (self excluded).
pub fn query_neighbors<F: FnMut(u32)>(data: &Dataset, grid: &GridIndex, q: usize, mut emit: F) {
    let dim = grid.dim();
    let eps_sq = grid.epsilon() * grid.epsilon();
    let p = data.point(q);
    let mut cell = [0u32; MAX_DIM];
    grid.cell_of(p, &mut cell[..dim]);
    let mut adj = [(0u32, 0u32); MAX_DIM];
    adjacent_ranges(&cell[..dim], grid.cells_per_dim(), &mut adj[..dim]);
    let mut filtered = [(0u32, 0u32); MAX_DIM];
    for j in 0..dim {
        match grid.mask_range(j, adj[j].0, adj[j].1) {
            Some(r) => filtered[j] = r,
            None => return, // cannot happen for indexed points
        }
    }
    for_each_full(dim, &filtered[..dim], |coords| {
        let lin = linearize(coords, grid.cells_per_dim());
        if let Some(h) = grid.find_cell(lin) {
            for &cand in grid.cell_points(h) {
                if cand as usize != q
                    && euclidean_sq(p, data.point(cand as usize)) <= eps_sq
                {
                    emit(cand);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::{clustered, lattice, uniform};

    fn brute(data: &Dataset, eps: f64) -> NeighborTable {
        let eps_sq = eps * eps;
        let mut pairs = Vec::new();
        for i in 0..data.len() {
            for j in 0..data.len() {
                if i != j && euclidean_sq(data.point(i), data.point(j)) <= eps_sq {
                    pairs.push(Pair::new(i as u32, j as u32));
                }
            }
        }
        NeighborTable::from_pairs(data.len(), &pairs)
    }

    #[test]
    fn sequential_matches_brute_2d() {
        let data = uniform(2, 400, 21);
        let grid = GridIndex::build(&data, 4.0).unwrap();
        assert_eq!(host_self_join(&data, &grid), brute(&data, 4.0));
    }

    #[test]
    fn sequential_matches_brute_5d() {
        let data = uniform(5, 250, 22);
        let grid = GridIndex::build(&data, 25.0).unwrap();
        assert_eq!(host_self_join(&data, &grid), brute(&data, 25.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = clustered(3, 600, 6, 1.5, 0.1, 23);
        let grid = GridIndex::build(&data, 2.0).unwrap();
        assert_eq!(
            host_self_join_parallel(&data, &grid),
            host_self_join(&data, &grid)
        );
    }

    #[test]
    fn parallel_handles_tiny_inputs() {
        // Chunk sizing must not degenerate when n ≪ threads × 8.
        for n in [0usize, 1, 3, 17] {
            let data = uniform(2, n.max(1), 26);
            let data = if n == 0 { Dataset::new(2) } else { data };
            let grid = GridIndex::build(&data, 5.0).unwrap();
            assert_eq!(
                host_self_join_parallel(&data, &grid),
                host_self_join(&data, &grid),
                "n={n}"
            );
        }
    }

    #[test]
    fn lattice_neighbor_counts() {
        // ε = spacing: each interior lattice point has exactly 4 axis
        // neighbours in 2-D (diagonal distance √2 > 1).
        let data = lattice(2, 6, 1.0);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        let t = host_self_join(&data, &grid);
        let mut counts: Vec<usize> = (0..36).map(|i| t.neighbors(i).len()).collect();
        counts.sort_unstable();
        // 4 corners with 2, 16 edge points with 3, 16 interior with 4.
        assert_eq!(&counts[..4], &[2, 2, 2, 2]);
        assert_eq!(counts.iter().filter(|&&c| c == 3).count(), 16);
        assert_eq!(counts.iter().filter(|&&c| c == 4).count(), 16);
    }

    #[test]
    fn range_partition_reassembles() {
        let data = uniform(2, 300, 24);
        let grid = GridIndex::build(&data, 5.0).unwrap();
        let mut all = host_pairs_for_range(&data, &grid, 0, 150);
        all.extend(host_pairs_for_range(&data, &grid, 150, 150));
        assert_eq!(
            NeighborTable::from_pairs(300, &all),
            host_self_join(&data, &grid)
        );
    }

    #[test]
    fn table_invariants_hold() {
        let data = uniform(4, 300, 25);
        let grid = GridIndex::build(&data, 15.0).unwrap();
        let t = host_self_join(&data, &grid);
        assert!(t.is_symmetric());
        assert!(t.is_irreflexive());
    }
}
