//! k-nearest-neighbour search on the ε-grid index — the paper's stated
//! future work ("applying this work to other spatial searches, such as
//! kNN", §VII).
//!
//! The self-join's bounded adjacent-cell search generalizes to kNN by
//! expanding the search shell ring by ring: ring `r` visits the cells
//! whose Chebyshev distance to the query cell is exactly `r`. After
//! scanning ring `r`, every unvisited point is at Euclidean distance
//! `> r·ε` from the query cell's boundary, so once `k` candidates are
//! found *and* the k-th best distance is `≤ r·ε`, the search is complete.
//! The same mask arrays `M_j` prune empty stripes of each ring.
//!
//! A [`KnnKernel`] runs one query per simulated-GPU thread; a host
//! implementation ([`host_knn`]) provides the validation oracle.

use crate::device_grid::DeviceGrid;
use crate::grid::{cell_coords, GridIndex};
use crate::linearize::{linearize, MAX_DIM};
use sim_gpu::append::AppendBuffer;
use sim_gpu::occupancy::KernelResources;
use sim_gpu::{launch, Device, Kernel, LaunchConfig, ThreadCtx, Tracer};
use sj_datasets::{euclidean_sq, Dataset};

/// One kNN result record: `(query, neighbour, squared distance)`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KnnHit {
    /// Query point id.
    pub query: u32,
    /// Neighbour point id.
    pub neighbor: u32,
    /// Squared Euclidean distance.
    pub dist_sq: f64,
}

/// Bounded max-heap of the best k candidates (arrays, not allocations —
/// this runs inside kernel threads).
struct BestK {
    k: usize,
    len: usize,
    // (dist_sq, id) max-heap by dist_sq, array-backed.
    heap: Vec<(f64, u32)>,
}

impl BestK {
    fn new(k: usize) -> Self {
        Self {
            k,
            len: 0,
            heap: vec![(f64::INFINITY, u32::MAX); k],
        }
    }

    #[inline]
    fn worst(&self) -> f64 {
        if self.len < self.k {
            f64::INFINITY
        } else {
            self.heap[0].0
        }
    }

    #[inline]
    fn push(&mut self, dist_sq: f64, id: u32) {
        if self.len < self.k {
            // Insert and sift up.
            let mut i = self.len;
            self.heap[i] = (dist_sq, id);
            self.len += 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if self.heap[parent].0 < self.heap[i].0 {
                    self.heap.swap(parent, i);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if dist_sq < self.heap[0].0 {
            // Replace the root and sift down.
            self.heap[0] = (dist_sq, id);
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut largest = i;
                if l < self.len && self.heap[l].0 > self.heap[largest].0 {
                    largest = l;
                }
                if r < self.len && self.heap[r].0 > self.heap[largest].0 {
                    largest = r;
                }
                if largest == i {
                    break;
                }
                self.heap.swap(i, largest);
                i = largest;
            }
        }
    }

    fn into_sorted(mut self) -> Vec<(f64, u32)> {
        self.heap.truncate(self.len);
        self.heap
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        self.heap
    }
}

/// Host-side kNN for one query over the grid (self excluded). Returns up
/// to `k` `(dist_sq, id)` pairs sorted by distance — the oracle the GPU
/// kernel is tested against, and a useful CPU API in its own right.
pub fn host_knn(data: &Dataset, grid: &GridIndex, q: usize, k: usize) -> Vec<(f64, u32)> {
    let dim = grid.dim();
    let eps = grid.epsilon();
    let p = data.point(q);
    let mut cell = [0u32; MAX_DIM];
    grid.cell_of(p, &mut cell[..dim]);
    let mut best = BestK::new(k);

    let max_ring = grid
        .cells_per_dim()
        .iter()
        .map(|&c| c as u32)
        .max()
        .unwrap_or(0);
    for ring in 0..=max_ring as i64 {
        // Completion test: every unvisited point is farther than
        // (ring − 1)·ε (points in rings ≥ ring are at least that far from
        // the query, which sits inside its own cell).
        if best.len == k {
            let safe = (ring - 1).max(0) as f64 * eps;
            if best.worst() <= safe * safe {
                break;
            }
        }
        let mut any_cell = false;
        for_each_ring_cell(dim, &cell[..dim], grid.cells_per_dim(), ring, |coords| {
            let lin = linearize(coords, grid.cells_per_dim());
            if let Some(h) = grid.find_cell(lin) {
                any_cell = true;
                for &cand in grid.cell_points(h) {
                    if cand as usize != q {
                        best.push(euclidean_sq(p, data.point(cand as usize)), cand);
                    }
                }
            }
        });
        let _ = any_cell;
    }
    best.into_sorted()
}

/// Visits every cell at Chebyshev distance exactly `ring` from `center`,
/// clamped to the grid.
fn for_each_ring_cell<F: FnMut(&[u32])>(
    dim: usize,
    center: &[u32],
    cells_per_dim: &[u64],
    ring: i64,
    mut visit: F,
) {
    let mut coords = [0u32; MAX_DIM];
    ring_rec(
        dim,
        center,
        cells_per_dim,
        ring,
        0,
        false,
        &mut coords,
        &mut visit,
    );
}

#[allow(clippy::too_many_arguments)]
fn ring_rec<F: FnMut(&[u32])>(
    dim: usize,
    center: &[u32],
    cells_per_dim: &[u64],
    ring: i64,
    j: usize,
    on_shell: bool,
    coords: &mut [u32; MAX_DIM],
    visit: &mut F,
) {
    if j == dim {
        if on_shell || ring == 0 {
            visit(&coords[..dim]);
        }
        return;
    }
    let c = center[j] as i64;
    let lo = (c - ring).max(0);
    let hi = (c + ring).min(cells_per_dim[j] as i64 - 1);
    for v in lo..=hi {
        coords[j] = v as u32;
        let at_edge = (v - c).abs() == ring;
        // If no later dimension can put us on the shell, this one must.
        ring_rec(
            dim,
            center,
            cells_per_dim,
            ring,
            j + 1,
            on_shell || at_edge,
            coords,
            visit,
        );
    }
}

/// The GPU kNN kernel: one thread per query point; each thread expands
/// rings until its k-th best distance is covered, then appends its k hits.
pub struct KnnKernel<'a> {
    /// Device-resident grid and data.
    pub grid: &'a DeviceGrid,
    /// Neighbours per query.
    pub k: usize,
    /// Result sink (`k` hits per query, any order).
    pub results: &'a AppendBuffer<KnnHit>,
}

impl Kernel for KnnKernel<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            // The ring state and heap cursor cost a few registers beyond
            // the self-join kernel.
            registers_per_thread: 32 + 4 * self.grid.dim,
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        let grid = self.grid;
        let q = ctx.global_id;
        if q >= grid.num_points {
            return;
        }
        let dim = grid.dim;
        let eps = grid.epsilon;
        let mut p = [0.0; MAX_DIM];
        p[..dim].copy_from_slice(ctx.read_range(&grid.coords, q * dim, dim));
        let mut cell = [0u32; MAX_DIM];
        cell_coords(
            &p[..dim],
            &grid.gmin[..dim],
            eps,
            &grid.cells_per_dim[..dim],
            &mut cell[..dim],
        );
        let mut best = BestK::new(self.k);
        let max_ring = grid.cells_per_dim[..dim]
            .iter()
            .map(|&c| c as u32)
            .max()
            .unwrap_or(0);
        for ring in 0..=max_ring as i64 {
            if best.len == self.k {
                let safe = (ring - 1).max(0) as f64 * eps;
                if best.worst() <= safe * safe {
                    break;
                }
            }
            for_each_ring_cell(
                dim,
                &cell[..dim],
                &grid.cells_per_dim[..dim],
                ring,
                |coords| {
                    let lin = linearize(coords, &grid.cells_per_dim[..dim]);
                    // Binary-search B (untraced here would hide work; trace it).
                    let n = grid.b.len();
                    let (mut lo, mut hi) = (0usize, n);
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        if ctx.read(&grid.b, mid) < lin {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    if lo < n && ctx.read(&grid.b, lo) == lin {
                        let range = ctx.read(&grid.g, lo);
                        for ai in range.begin..range.end {
                            let cand = ctx.read(&grid.a, ai as usize);
                            if cand as usize == q {
                                continue;
                            }
                            let cp = ctx.read_range(&grid.coords, cand as usize * dim, dim);
                            let mut acc = 0.0;
                            for d in 0..dim {
                                let diff = p[d] - cp[d];
                                acc += diff * diff;
                            }
                            best.push(acc, cand);
                        }
                    }
                },
            );
        }
        for (dist_sq, id) in best.into_sorted() {
            ctx.trace_atomic(self.results.cursor_addr(), 8);
            if let Some(addr) = self.results.push(KnnHit {
                query: q as u32,
                neighbor: id,
                dist_sq,
            }) {
                ctx.trace_store(addr, std::mem::size_of::<KnnHit>());
            }
        }
    }
}

/// Runs kNN for every point on the simulated device. Cell width is the
/// provided `epsilon` (a tuning knob: smaller cells mean more rings but
/// fewer scans per ring). Returns hits grouped per query, each sorted by
/// distance.
///
/// Builds and uploads a fresh index per call; a resident
/// [`crate::SelfJoinSession`] instead routes kNN through [`gpu_knn_on`]
/// against its cached snapshot.
pub fn gpu_knn(
    device: &Device,
    data: &Dataset,
    epsilon: f64,
    k: usize,
) -> Result<Vec<Vec<KnnHit>>, crate::error::SelfJoinError> {
    let grid = GridIndex::build(data, epsilon)?;
    let dg = DeviceGrid::upload(device, data, &grid)?;
    gpu_knn_on(device, &dg, k)
}

/// [`gpu_knn`] against an already-resident device snapshot: the ring
/// search runs at the snapshot's cell width, so any grid over the dataset
/// serves (cell width only trades rings against per-ring scan size —
/// results are exact either way).
pub fn gpu_knn_on(
    device: &Device,
    dg: &DeviceGrid,
    k: usize,
) -> Result<Vec<Vec<KnnHit>>, crate::error::SelfJoinError> {
    let n = dg.num_points;
    let mut results = AppendBuffer::<KnnHit>::new(device.pool(), n * k)?;
    let kernel = KnnKernel {
        grid: dg,
        k,
        results: &results,
    };
    launch(device, LaunchConfig::default(), n, &kernel);
    debug_assert!(!results.overflowed());
    let mut grouped: Vec<Vec<KnnHit>> = vec![Vec::new(); n];
    for hit in results.drain_to_host() {
        grouped[hit.query as usize].push(hit);
    }
    for g in &mut grouped {
        g.sort_unstable_by(|a, b| {
            a.dist_sq
                .partial_cmp(&b.dist_sq)
                .expect("finite")
                .then(a.neighbor.cmp(&b.neighbor))
        });
    }
    Ok(grouped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_gpu::DeviceSpec;
    use sj_datasets::synthetic::{clustered, lattice, uniform};

    fn brute_knn(data: &Dataset, q: usize, k: usize) -> Vec<(f64, u32)> {
        let mut all: Vec<(f64, u32)> = (0..data.len())
            .filter(|&j| j != q)
            .map(|j| (euclidean_sq(data.point(q), data.point(j)), j as u32))
            .collect();
        all.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        all.truncate(k);
        all
    }

    /// Distances must match the oracle exactly; ids may differ on ties.
    fn assert_distances_match(got: &[(f64, u32)], want: &[(f64, u32)], label: &str) {
        assert_eq!(got.len(), want.len(), "{label}: wrong k");
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.0 - w.0).abs() < 1e-12,
                "{label}: distance mismatch {g:?} vs {w:?}"
            );
        }
    }

    #[test]
    fn host_knn_matches_brute_force() {
        let data = uniform(2, 800, 61);
        let grid = GridIndex::build(&data, 3.0).unwrap();
        for q in [0usize, 17, 399, 799] {
            for k in [1usize, 5, 20] {
                let got = host_knn(&data, &grid, q, k);
                let want = brute_knn(&data, q, k);
                assert_distances_match(&got, &want, &format!("q={q},k={k}"));
            }
        }
    }

    #[test]
    fn host_knn_3d_clustered() {
        let data = clustered(3, 600, 4, 1.5, 0.1, 62);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        for q in [3usize, 100, 500] {
            let got = host_knn(&data, &grid, q, 8);
            assert_distances_match(&got, &brute_knn(&data, q, 8), &format!("q={q}"));
        }
    }

    #[test]
    fn gpu_knn_matches_host() {
        let data = uniform(2, 500, 63);
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let grouped = gpu_knn(&device, &data, 5.0, 6).unwrap();
        let grid = GridIndex::build(&data, 5.0).unwrap();
        for (q, hits) in grouped.iter().enumerate() {
            let host: Vec<(f64, u32)> = host_knn(&data, &grid, q, 6);
            assert_eq!(hits.len(), host.len(), "q={q}");
            for (g, h) in hits.iter().zip(&host) {
                assert!((g.dist_sq - h.0).abs() < 1e-12, "q={q}");
            }
        }
    }

    #[test]
    fn k_larger_than_dataset() {
        let data = uniform(2, 10, 64);
        let grid = GridIndex::build(&data, 50.0).unwrap();
        let got = host_knn(&data, &grid, 0, 50);
        assert_eq!(got.len(), 9, "can only return |D|-1 neighbours");
    }

    #[test]
    fn lattice_nearest_are_axis_neighbors() {
        let data = lattice(2, 5, 1.0);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        // Interior point: 4 axis neighbours at distance 1, then diagonals √2.
        let center = 12; // (2, 2)
        let got = host_knn(&data, &grid, center, 8);
        for (d, _) in &got[..4] {
            assert!((d - 1.0).abs() < 1e-12);
        }
        for (d, _) in &got[4..8] {
            assert!((d - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_enumeration_counts() {
        // Ring r in 2-D (unclamped) has (2r+1)² − (2r−1)² = 8r cells.
        let cells = [100u64, 100];
        for ring in 1..4i64 {
            let mut n = 0;
            for_each_ring_cell(2, &[50, 50], &cells, ring, |_| n += 1);
            assert_eq!(n, 8 * ring, "ring {ring}");
        }
        let mut n = 0;
        for_each_ring_cell(2, &[50, 50], &cells, 0, |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn bestk_heap_is_correct() {
        let mut b = BestK::new(3);
        for (d, id) in [(5.0, 1u32), (1.0, 2), (3.0, 3), (0.5, 4), (4.0, 5)] {
            b.push(d, id);
        }
        let sorted = b.into_sorted();
        assert_eq!(
            sorted,
            vec![(0.5, 4), (1.0, 2), (3.0, 3)],
            "keeps the 3 smallest"
        );
    }
}
