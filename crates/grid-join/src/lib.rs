//! **GPU-SJ**: the GPU-accelerated distance-similarity self-join of
//! Gowanlock & Karsin (2018), reproduced in Rust on a software SIMT
//! device model.
//!
//! Given a dataset `D` of n-dimensional points and a radius ε, the
//! self-join finds every ordered pair `(p, q)`, `p ≠ q`, with Euclidean
//! distance `dist(p, q) ≤ ε`. The algorithm combines:
//!
//! * a GPU-friendly **ε-grid index** storing only non-empty cells in
//!   `O(|D|)` space ([`grid`]),
//! * the one-thread-per-point **`GPUSELFJOINGLOBAL` kernel** with bounded,
//!   mask-filtered adjacent-cell searches ([`kernels`]),
//! * the **UNICOMP** parity-based work-avoidance pattern that halves cell
//!   visits and distance computations ([`unicomp`]),
//! * the **cell-major hot path** — reordered point layout, per-cell
//!   neighbor hoisting, batched result reservation ([`cell_major`]; the
//!   default execution path),
//! * a **result-set batching** pipeline that bounds device memory use and
//!   overlaps transfers with compute ([`batching`]), and
//! * a **brute-force** GPU baseline for the evaluation ([`brute_force`]).
//!
//! Start with [`GpuSelfJoin`]:
//!
//! ```
//! use grid_join::GpuSelfJoin;
//! use sj_datasets::synthetic::uniform;
//!
//! let data = uniform(3, 1_000, 42);
//! let out = GpuSelfJoin::default_device().run(&data, 6.0).unwrap();
//! assert!(out.table.is_symmetric());
//! ```

pub mod batching;
pub mod brute_force;
pub mod cell_major;
pub mod device_grid;
pub mod error;
pub mod grid;
pub mod host_join;
pub mod kernels;
pub mod knn;
pub mod linearize;
pub mod plan;
pub mod result;
pub mod selfjoin;
pub mod session;
pub mod unicomp;

pub use batching::{BatchReport, BatchingConfig, ExecOptions};
pub use brute_force::{gpu_brute_force, BruteForceResult};
pub use cell_major::{CellMajorPlan, CellMajorSelfJoinKernel, HotPath};
pub use device_grid::DeviceGrid;
pub use error::{GridBuildError, SelfJoinError};
pub use grid::{CellRange, GridIndex};
pub use host_join::{host_self_join, host_self_join_parallel, query_neighbors_within};
pub use knn::{gpu_knn, gpu_knn_on, host_knn, KnnHit};
pub use plan::{Backend, EstimateStage, IndexStage, JoinPlan, JoinReport, PlanOutput, PostStage};
pub use result::{remap_pairs, retain_owned_pairs, NeighborTable, Ownership, Pair};
pub use selfjoin::{GpuSelfJoin, ScopedJoinOutput, SelfJoinConfig, SelfJoinOutput};
pub use session::{
    ProjectedCost, SelfJoinSession, SessionConfig, SessionKnnOutput, SessionQueryOutput,
    SessionStats,
};
