//! GPU brute-force nested-loop join (paper §VI-B).
//!
//! The paper's sanity baseline: one thread per point, each comparing its
//! point against the entire dataset — `O(|D|²)` work, independent of ε.
//! The paper runs a single kernel invocation and excludes result
//! transfers (a lower bound on the brute-force approach), so this kernel
//! only *counts* pairs within ε rather than materializing them.

use crate::linearize::MAX_DIM;
use sim_gpu::occupancy::KernelResources;
use sim_gpu::{launch, Device, DeviceBuffer, Kernel, LaunchConfig, LaunchStats, ThreadCtx, Tracer};
use sj_datasets::Dataset;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The brute-force kernel: thread `i` compares point `i` to all points.
pub struct BruteForceKernel<'a> {
    /// Flat row-major coordinates.
    pub coords: &'a DeviceBuffer<f64>,
    /// Dimensionality.
    pub dim: usize,
    /// Squared search radius.
    pub eps_sq: f64,
    /// Global pair counter (directed, self excluded).
    pub hits: &'a AtomicU64,
}

impl Kernel for BruteForceKernel<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            // The nested-loop kernel is tiny: point registers plus a loop
            // counter; no index state.
            registers_per_thread: 18 + 2 * self.dim,
            shared_mem_per_block: 0,
        }
    }

    fn thread<T: Tracer>(&self, ctx: &mut ThreadCtx<'_, T>) {
        let n = self.coords.len() / self.dim;
        let i = ctx.global_id;
        if i >= n {
            return;
        }
        let mut p = [0.0; MAX_DIM];
        p[..self.dim].copy_from_slice(ctx.read_range(self.coords, i * self.dim, self.dim));
        let mut local_hits = 0u64;
        for j in 0..n {
            if j == i {
                continue;
            }
            let q = ctx.read_range(self.coords, j * self.dim, self.dim);
            let mut acc = 0.0;
            for d in 0..self.dim {
                let diff = p[d] - q[d];
                acc += diff * diff;
            }
            if acc <= self.eps_sq {
                local_hits += 1;
            }
        }
        // One atomic per thread (as a real kernel would aggregate per-thread
        // tallies), not one per hit.
        self.hits.fetch_add(local_hits, Ordering::Relaxed);
    }
}

/// Outcome of a brute-force run.
#[derive(Clone, Debug)]
pub struct BruteForceResult {
    /// Directed pair count within ε (self excluded).
    pub pairs: u64,
    /// Host-measured kernel wall time.
    pub wall: Duration,
    /// Modeled device-kernel time.
    pub modeled_wall: Duration,
    /// Launch details.
    pub stats: LaunchStats,
}

/// Uploads the data and runs the brute-force kernel once.
pub fn gpu_brute_force(
    device: &Device,
    data: &Dataset,
    epsilon: f64,
) -> Result<BruteForceResult, sim_gpu::OutOfMemory> {
    let coords = device.alloc_from_host(data.coords())?;
    let hits = AtomicU64::new(0);
    let kernel = BruteForceKernel {
        coords: &coords,
        dim: data.dim(),
        eps_sq: epsilon * epsilon,
        hits: &hits,
    };
    let stats = launch(device, LaunchConfig::default(), data.len(), &kernel);
    Ok(BruteForceResult {
        pairs: hits.into_inner(),
        wall: stats.wall,
        modeled_wall: stats.modeled_wall,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_gpu::DeviceSpec;
    use sj_datasets::euclidean_sq;
    use sj_datasets::synthetic::{lattice, uniform};

    fn brute_count(data: &Dataset, eps: f64) -> u64 {
        let eps_sq = eps * eps;
        let mut c = 0;
        for i in 0..data.len() {
            for j in 0..data.len() {
                if i != j && euclidean_sq(data.point(i), data.point(j)) <= eps_sq {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn counts_match_host_reference() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = uniform(3, 500, 31);
        let r = gpu_brute_force(&dev, &data, 10.0).unwrap();
        assert_eq!(r.pairs, brute_count(&data, 10.0));
    }

    #[test]
    fn lattice_axis_neighbors() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = lattice(2, 5, 1.0);
        let r = gpu_brute_force(&dev, &data, 1.0).unwrap();
        // 2 × 40 undirected adjacent pairs.
        assert_eq!(r.pairs, 80);
    }

    #[test]
    fn epsilon_independent_work() {
        // Brute force compares everything regardless of ε; with ε = 0 the
        // count collapses but the kernel still runs |D|² comparisons.
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = uniform(2, 300, 32);
        let r = gpu_brute_force(&dev, &data, 1e-12).unwrap();
        assert_eq!(r.pairs, 0);
        assert_eq!(r.stats.threads, 300);
    }

    #[test]
    fn memory_released_after_run() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = uniform(2, 100, 33);
        let _ = gpu_brute_force(&dev, &data, 1.0).unwrap();
        assert_eq!(dev.used_bytes(), 0);
    }
}
