//! High-level GPU self-join API (the paper's GPU-SJ).
//!
//! This is the entry point downstream users call:
//!
//! ```
//! use grid_join::GpuSelfJoin;
//! use sj_datasets::synthetic::uniform;
//!
//! let data = uniform(2, 2_000, 7);
//! let join = GpuSelfJoin::default_device();
//! let out = join.run(&data, 2.0).unwrap();
//! println!(
//!     "{} pairs in {} batches, avg {:.1} neighbors/point",
//!     out.table.total_pairs(),
//!     out.report.batching.batches,
//!     out.table.avg_neighbors()
//! );
//! # assert!(out.table.is_symmetric());
//! ```
//!
//! The pipeline is: build the ε-grid on the host → upload → estimate the
//! result size → batched kernel execution (UNICOMP on by default, as in
//! the paper's best configuration) → sort pairs → neighbour table.

use crate::batching::{BatchingConfig, ExecOptions};
use crate::cell_major::HotPath;
use crate::error::SelfJoinError;
use crate::grid::GridIndex;
use crate::plan::{execute, Backend, EstimateStage, IndexStage, JoinPlan, PostStage};
use crate::result::{NeighborTable, Pair};
use sim_gpu::{Device, DeviceSpec, LaunchConfig};
use sj_datasets::Dataset;

pub use crate::plan::JoinReport;

/// Configuration of a GPU self-join run.
#[derive(Clone, Copy, Debug)]
pub struct SelfJoinConfig {
    /// Apply the UNICOMP work-avoidance optimization (§V-B). Default on.
    pub unicomp: bool,
    /// Per-thread path only: process queries in grid-cell order (an
    /// extension beyond the paper: consecutive threads handle same-cell
    /// points, improving L1 locality and warp regularity on skewed data;
    /// results are unchanged). The cell-major path is inherently
    /// cell-ordered.
    pub cell_order_queries: bool,
    /// Which join hot path runs (see [`crate::cell_major`]). Default
    /// [`HotPath::CellMajor`]: reordered point layout, per-cell neighbor
    /// hoisting and batched result reservation — pair-for-pair identical
    /// to [`HotPath::PerThread`], measurably faster.
    pub hot_path: HotPath,
    /// Kernel launch geometry (default 256 threads/block as in §VI-B).
    pub launch: LaunchConfig,
    /// Batching-scheme tunables (§V-A).
    pub batching: BatchingConfig,
}

impl SelfJoinConfig {
    /// The kernel-level execution options this configuration describes —
    /// the one place the mapping lives; every plan builder (GPU operator,
    /// shard subplans, sessions) routes through it so the entry points
    /// cannot drift.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            unicomp: self.unicomp,
            cell_order: self.cell_order_queries,
            hot_path: self.hot_path,
            ..ExecOptions::default()
        }
    }
}

impl Default for SelfJoinConfig {
    fn default() -> Self {
        Self {
            unicomp: true,
            cell_order_queries: false,
            hot_path: HotPath::CellMajor,
            launch: LaunchConfig::default(),
            batching: BatchingConfig::default(),
        }
    }
}

/// Output of a self-join: the neighbour table plus the execution report.
#[derive(Clone, Debug)]
pub struct SelfJoinOutput {
    /// Directed, self-excluded neighbour lists.
    pub table: NeighborTable,
    /// Timings and counters.
    pub report: JoinReport,
}

/// Output of a shard-scoped self-join (see [`GpuSelfJoin::run_scoped`]).
///
/// Pairs carry *shard-local* point ids; every key is an owned point
/// (`key < owned`). The caller remaps local ids to global ones (see
/// [`crate::result::remap_pairs`]) before merging shards.
#[derive(Clone, Debug)]
pub struct ScopedJoinOutput {
    /// Owned-keyed result pairs in shard-local ids.
    pub pairs: Vec<Pair>,
    /// Number of owned points (the scope passed in).
    pub owned: usize,
    /// Ghost-keyed pairs discarded by the ownership filter — the shards
    /// owning those ghosts produce them instead.
    pub dropped_ghost_pairs: u64,
    /// Timings and counters of the underlying device pipeline.
    pub report: JoinReport,
}

/// The GPU self-join operator (paper: GPU-SJ).
#[derive(Clone, Debug)]
pub struct GpuSelfJoin {
    device: Device,
    config: SelfJoinConfig,
}

impl GpuSelfJoin {
    /// Creates the operator on a device with default configuration
    /// (UNICOMP enabled, 256-thread blocks, ≥3 batches).
    pub fn new(device: Device) -> Self {
        Self {
            device,
            config: SelfJoinConfig::default(),
        }
    }

    /// Creates the operator on a simulated TITAN X with defaults.
    pub fn default_device() -> Self {
        Self::new(Device::new(DeviceSpec::titan_x_pascal()))
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: SelfJoinConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables or disables UNICOMP.
    pub fn unicomp(mut self, on: bool) -> Self {
        self.config.unicomp = on;
        self
    }

    /// Selects the join hot path (default [`HotPath::CellMajor`]).
    pub fn hot_path(mut self, path: HotPath) -> Self {
        self.config.hot_path = path;
        self
    }

    /// The device handle.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &SelfJoinConfig {
        &self.config
    }

    /// The [`JoinPlan`] this operator's configuration describes for
    /// `data` with the given index stage — `run*` entry points are thin
    /// wrappers that refine this plan and hand it to the shared executor.
    pub fn plan<'a>(&self, data: &'a Dataset, index: IndexStage<'a>) -> JoinPlan<'a> {
        JoinPlan {
            data,
            index,
            estimate: EstimateStage::Sample,
            exec: self.config.exec_options(),
            launch: self.config.launch,
            batching: self.config.batching,
            post: PostStage::default(),
        }
    }

    /// Runs the self-join: all ordered pairs `(p, q)`, `p ≠ q`, with
    /// `dist(p, q) ≤ epsilon`.
    pub fn run(&self, data: &Dataset, epsilon: f64) -> Result<SelfJoinOutput, SelfJoinError> {
        let plan = self.plan(data, IndexStage::Build { epsilon });
        let out = execute(&plan, Backend::Device(&self.device))?;
        Ok(SelfJoinOutput {
            table: NeighborTable::from_pairs(data.len(), &out.pairs),
            report: out.report,
        })
    }

    /// Runs the self-join against a prebuilt index (ε comes from the grid).
    ///
    /// The caller guarantees `grid` was built from `data`; the sharded
    /// engine uses this to reuse the index constructed during cost
    /// estimation. `report.grid_build` is zero — the build happened
    /// outside this call.
    pub fn run_on_grid(
        &self,
        data: &Dataset,
        grid: &GridIndex,
    ) -> Result<SelfJoinOutput, SelfJoinError> {
        let plan = self.plan(data, IndexStage::Prebuilt(grid));
        let out = execute(&plan, Backend::Device(&self.device))?;
        Ok(SelfJoinOutput {
            table: NeighborTable::from_pairs(data.len(), &out.pairs),
            report: out.report,
        })
    }

    /// Runs a shard-scoped self-join: `data` holds the shard's `owned`
    /// points first, followed by its ε-halo ghosts. The full point set is
    /// joined (ghost queries must run — UNICOMP may assign a cross-boundary
    /// cell interaction to the ghost side), then ghost-keyed pairs are
    /// dropped so every directed pair is reported by exactly the shard
    /// that owns its key.
    ///
    /// # Panics
    ///
    /// Panics if `owned > data.len()`.
    pub fn run_scoped(
        &self,
        data: &Dataset,
        epsilon: f64,
        owned: usize,
    ) -> Result<ScopedJoinOutput, SelfJoinError> {
        let grid = GridIndex::build(data, epsilon)?;
        self.run_scoped_on_grid(data, &grid, owned)
    }

    /// [`Self::run_scoped`] against a prebuilt index (see
    /// [`Self::run_on_grid`] for the grid precondition).
    ///
    /// # Panics
    ///
    /// Panics if `owned > data.len()`.
    pub fn run_scoped_on_grid(
        &self,
        data: &Dataset,
        grid: &GridIndex,
        owned: usize,
    ) -> Result<ScopedJoinOutput, SelfJoinError> {
        assert!(
            owned <= data.len(),
            "owned prefix {owned} exceeds dataset size {}",
            data.len()
        );
        let plan = self.plan(data, IndexStage::Prebuilt(grid)).scoped(owned);
        let out = execute(&plan, Backend::Device(&self.device))?;
        Ok(ScopedJoinOutput {
            pairs: out.pairs,
            owned,
            dropped_ghost_pairs: out.dropped_ghost_pairs,
            report: out.report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_join::host_self_join;
    use sj_datasets::synthetic::{clustered, uniform};
    use std::time::Duration;

    #[test]
    fn end_to_end_matches_host_join() {
        let data = uniform(3, 2000, 51);
        let eps = 7.0;
        let join = GpuSelfJoin::default_device();
        let out = join.run(&data, eps).unwrap();
        let grid = GridIndex::build(&data, eps).unwrap();
        assert_eq!(out.table, host_self_join(&data, &grid));
        assert!(out.report.batching.batches >= 3);
        assert!(out.report.non_empty_cells > 0);
        assert!(out.report.occupancy.occupancy > 0.0);
    }

    #[test]
    fn hot_paths_agree_end_to_end() {
        let data = clustered(3, 1500, 5, 1.2, 0.1, 60);
        let eps = 1.6;
        for unicomp in [false, true] {
            let cm = GpuSelfJoin::default_device()
                .unicomp(unicomp)
                .hot_path(HotPath::CellMajor)
                .run(&data, eps)
                .unwrap();
            let pt = GpuSelfJoin::default_device()
                .unicomp(unicomp)
                .hot_path(HotPath::PerThread)
                .run(&data, eps)
                .unwrap();
            assert_eq!(cm.table, pt.table, "unicomp={unicomp}");
            assert!(cm.report.batching.modeled_hoist_time > Duration::ZERO);
            assert_eq!(pt.report.batching.modeled_hoist_time, Duration::ZERO);
        }
    }

    #[test]
    fn unicomp_and_full_agree() {
        let data = clustered(2, 1500, 4, 1.0, 0.1, 52);
        let with = GpuSelfJoin::default_device()
            .unicomp(true)
            .run(&data, 1.5)
            .unwrap();
        let without = GpuSelfJoin::default_device()
            .unicomp(false)
            .run(&data, 1.5)
            .unwrap();
        assert_eq!(with.table, without.table);
    }

    #[test]
    fn epsilon_monotonicity() {
        let data = uniform(2, 1000, 53);
        let join = GpuSelfJoin::default_device();
        let small = join.run(&data, 1.0).unwrap().table.total_pairs();
        let large = join.run(&data, 3.0).unwrap().table.total_pairs();
        assert!(large > small);
    }

    #[test]
    fn invalid_epsilon_surfaces_error() {
        let data = uniform(2, 100, 54);
        let err = GpuSelfJoin::default_device().run(&data, -1.0).unwrap_err();
        assert!(matches!(err, SelfJoinError::Grid(_)));
    }

    #[test]
    fn occupancy_reflects_unicomp_register_pressure() {
        let data = uniform(5, 1200, 55);
        let base = GpuSelfJoin::default_device()
            .unicomp(false)
            .run(&data, 25.0)
            .unwrap();
        let uni = GpuSelfJoin::default_device()
            .unicomp(true)
            .run(&data, 25.0)
            .unwrap();
        assert_eq!(base.report.occupancy.occupancy, 0.625);
        assert_eq!(uni.report.occupancy.occupancy, 0.5);
    }

    #[test]
    fn run_on_grid_matches_run() {
        let data = uniform(2, 1200, 56);
        let eps = 2.5;
        let join = GpuSelfJoin::default_device();
        let grid = GridIndex::build(&data, eps).unwrap();
        let prepared = join.run_on_grid(&data, &grid).unwrap();
        let fresh = join.run(&data, eps).unwrap();
        assert_eq!(prepared.table, fresh.table);
        assert_eq!(prepared.report.grid_build, Duration::ZERO);
    }

    #[test]
    fn scoped_run_filters_ghost_keys() {
        // Owned prefix of 600 points plus 600 "ghosts" (the same point
        // population): every surviving key must be owned, and the owned
        // neighbour lists must match an unscoped join over the full set.
        let data = uniform(2, 1200, 57);
        let eps = 3.0;
        let join = GpuSelfJoin::default_device();
        let owned = 600;
        let scoped = join.run_scoped(&data, eps, owned).unwrap();
        assert!(scoped.pairs.iter().all(|p| (p.key as usize) < owned));
        let full = join.run(&data, eps).unwrap();
        let expected_kept: usize = (0..owned).map(|i| full.table.neighbors(i).len()).sum();
        assert_eq!(scoped.pairs.len(), expected_kept);
        assert_eq!(
            scoped.dropped_ghost_pairs as usize,
            full.table.total_pairs() - expected_kept
        );
    }

    #[test]
    fn scoped_run_with_full_ownership_drops_nothing() {
        let data = uniform(3, 800, 58);
        let join = GpuSelfJoin::default_device();
        let scoped = join.run_scoped(&data, 6.0, data.len()).unwrap();
        assert_eq!(scoped.dropped_ghost_pairs, 0);
        let full = join.run(&data, 6.0).unwrap();
        assert_eq!(scoped.pairs.len(), full.table.total_pairs());
    }

    #[test]
    #[should_panic(expected = "owned prefix")]
    fn scoped_run_rejects_bad_owned_count() {
        let data = uniform(2, 100, 59);
        let _ = GpuSelfJoin::default_device().run_scoped(&data, 1.0, 101);
    }

    #[test]
    fn doc_example_runs() {
        let data = uniform(2, 500, 7);
        let out = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert!(out.table.is_symmetric());
        assert!(out.table.is_irreflexive());
    }
}
