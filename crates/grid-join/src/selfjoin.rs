//! High-level GPU self-join API (the paper's GPU-SJ).
//!
//! This is the entry point downstream users call:
//!
//! ```
//! use grid_join::GpuSelfJoin;
//! use sj_datasets::synthetic::uniform;
//!
//! let data = uniform(2, 2_000, 7);
//! let join = GpuSelfJoin::default_device();
//! let out = join.run(&data, 2.0).unwrap();
//! println!(
//!     "{} pairs in {} batches, avg {:.1} neighbors/point",
//!     out.table.total_pairs(),
//!     out.report.batching.batches,
//!     out.table.avg_neighbors()
//! );
//! # assert!(out.table.is_symmetric());
//! ```
//!
//! The pipeline is: build the ε-grid on the host → upload → estimate the
//! result size → batched kernel execution (UNICOMP on by default, as in
//! the paper's best configuration) → sort pairs → neighbour table.

use crate::batching::{run_batched, BatchReport, BatchingConfig};
use crate::device_grid::DeviceGrid;
use crate::error::SelfJoinError;
use crate::grid::GridIndex;
use crate::kernels::kernel_registers;
use crate::result::NeighborTable;
use sim_gpu::occupancy::KernelResources;
use sim_gpu::{occupancy, Device, DeviceSpec, LaunchConfig, OccupancyResult};
use sj_datasets::Dataset;
use std::time::{Duration, Instant};

/// Configuration of a GPU self-join run.
#[derive(Clone, Copy, Debug)]
pub struct SelfJoinConfig {
    /// Apply the UNICOMP work-avoidance optimization (§V-B). Default on.
    pub unicomp: bool,
    /// Process queries in grid-cell order (an extension beyond the paper:
    /// consecutive threads handle same-cell points, improving L1 locality
    /// and warp regularity on skewed data; results are unchanged).
    pub cell_order_queries: bool,
    /// Kernel launch geometry (default 256 threads/block as in §VI-B).
    pub launch: LaunchConfig,
    /// Batching-scheme tunables (§V-A).
    pub batching: BatchingConfig,
}

impl Default for SelfJoinConfig {
    fn default() -> Self {
        Self {
            unicomp: true,
            cell_order_queries: false,
            launch: LaunchConfig::default(),
            batching: BatchingConfig::default(),
        }
    }
}

/// Timing/shape report of one self-join run.
#[derive(Clone, Debug)]
pub struct JoinReport {
    /// Host-side grid construction time.
    pub grid_build: Duration,
    /// Wall time of the device pipeline (estimate + kernels + drains).
    pub device_pipeline: Duration,
    /// End-to-end wall time (grid build + upload + pipeline + table build).
    pub total: Duration,
    /// Modeled response time on the simulated device: host grid build +
    /// modeled estimation kernel + the pipelined (3-stream) timeline of
    /// uploads, modeled kernels and result downloads. This is the number
    /// the evaluation harness reports for GPU-SJ (see `DeviceSpec::
    /// throughput_vs_host_core` for the model constant).
    pub modeled_total: Duration,
    /// Non-empty cell count `|B|`.
    pub non_empty_cells: usize,
    /// Host-side index footprint in bytes.
    pub index_bytes: usize,
    /// Theoretical occupancy of the join kernel used.
    pub occupancy: OccupancyResult,
    /// Batching execution details.
    pub batching: BatchReport,
}

/// Output of a self-join: the neighbour table plus the execution report.
#[derive(Clone, Debug)]
pub struct SelfJoinOutput {
    /// Directed, self-excluded neighbour lists.
    pub table: NeighborTable,
    /// Timings and counters.
    pub report: JoinReport,
}

/// The GPU self-join operator (paper: GPU-SJ).
#[derive(Clone, Debug)]
pub struct GpuSelfJoin {
    device: Device,
    config: SelfJoinConfig,
}

impl GpuSelfJoin {
    /// Creates the operator on a device with default configuration
    /// (UNICOMP enabled, 256-thread blocks, ≥3 batches).
    pub fn new(device: Device) -> Self {
        Self {
            device,
            config: SelfJoinConfig::default(),
        }
    }

    /// Creates the operator on a simulated TITAN X with defaults.
    pub fn default_device() -> Self {
        Self::new(Device::new(DeviceSpec::titan_x_pascal()))
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: SelfJoinConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables or disables UNICOMP.
    pub fn unicomp(mut self, on: bool) -> Self {
        self.config.unicomp = on;
        self
    }

    /// The device handle.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &SelfJoinConfig {
        &self.config
    }

    /// Runs the self-join: all ordered pairs `(p, q)`, `p ≠ q`, with
    /// `dist(p, q) ≤ epsilon`.
    pub fn run(&self, data: &Dataset, epsilon: f64) -> Result<SelfJoinOutput, SelfJoinError> {
        let t0 = Instant::now();
        let grid = GridIndex::build(data, epsilon)?;
        let grid_build = t0.elapsed();

        let dg = DeviceGrid::upload(&self.device, data, &grid)?;

        let t1 = Instant::now();
        let (pairs, batching) = run_batched(
            &self.device,
            &dg,
            self.config.launch,
            self.config.unicomp,
            self.config.cell_order_queries,
            &self.config.batching,
        )?;
        let device_pipeline = t1.elapsed();

        let table = NeighborTable::from_pairs(data.len(), &pairs);
        let occupancy = occupancy(
            self.device.spec(),
            KernelResources {
                registers_per_thread: kernel_registers(grid.dim().max(1), self.config.unicomp),
                shared_mem_per_block: 0,
            },
            self.config.launch.block_threads,
        );
        let modeled_total = grid_build + batching.modeled_estimate_time + batching.timeline.total;
        Ok(SelfJoinOutput {
            table,
            report: JoinReport {
                grid_build,
                device_pipeline,
                total: t0.elapsed(),
                modeled_total,
                non_empty_cells: grid.non_empty_cells(),
                index_bytes: grid.size_bytes(),
                occupancy,
                batching,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_join::host_self_join;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn end_to_end_matches_host_join() {
        let data = uniform(3, 2000, 51);
        let eps = 7.0;
        let join = GpuSelfJoin::default_device();
        let out = join.run(&data, eps).unwrap();
        let grid = GridIndex::build(&data, eps).unwrap();
        assert_eq!(out.table, host_self_join(&data, &grid));
        assert!(out.report.batching.batches >= 3);
        assert!(out.report.non_empty_cells > 0);
        assert!(out.report.occupancy.occupancy > 0.0);
    }

    #[test]
    fn unicomp_and_full_agree() {
        let data = clustered(2, 1500, 4, 1.0, 0.1, 52);
        let with = GpuSelfJoin::default_device().unicomp(true).run(&data, 1.5).unwrap();
        let without = GpuSelfJoin::default_device().unicomp(false).run(&data, 1.5).unwrap();
        assert_eq!(with.table, without.table);
    }

    #[test]
    fn epsilon_monotonicity() {
        let data = uniform(2, 1000, 53);
        let join = GpuSelfJoin::default_device();
        let small = join.run(&data, 1.0).unwrap().table.total_pairs();
        let large = join.run(&data, 3.0).unwrap().table.total_pairs();
        assert!(large > small);
    }

    #[test]
    fn invalid_epsilon_surfaces_error() {
        let data = uniform(2, 100, 54);
        let err = GpuSelfJoin::default_device().run(&data, -1.0).unwrap_err();
        assert!(matches!(err, SelfJoinError::Grid(_)));
    }

    #[test]
    fn occupancy_reflects_unicomp_register_pressure() {
        let data = uniform(5, 1200, 55);
        let base = GpuSelfJoin::default_device().unicomp(false).run(&data, 25.0).unwrap();
        let uni = GpuSelfJoin::default_device().unicomp(true).run(&data, 25.0).unwrap();
        assert_eq!(base.report.occupancy.occupancy, 0.625);
        assert_eq!(uni.report.occupancy.occupancy, 0.5);
    }

    #[test]
    fn doc_example_runs() {
        let data = uniform(2, 500, 7);
        let out = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert!(out.table.is_symmetric());
        assert!(out.table.is_irreflexive());
    }
}
