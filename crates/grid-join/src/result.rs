//! Result-set representation.
//!
//! The paper's kernels emit `(key, value)` pairs — key = query point id,
//! value = the point found within ε — into a device buffer, then sort by
//! key and transfer to the host (Algorithm 1). [`Pair`] is that record;
//! [`NeighborTable`] is the host-side CSR-style adjacency built from the
//! sorted pairs, which is what downstream consumers (e.g. DBSCAN) use.
//!
//! Semantics: pairs are *directed* and **exclude self-pairs** — every
//! unordered neighbour pair `{p, q}` with `dist(p, q) ≤ ε`, `p ≠ q`
//! appears as both `(p, q)` and `(q, p)`. All five algorithms in this
//! workspace produce identical tables, which the integration tests assert.

/// One self-join result record (matches the paper's key/value pair).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    /// Query point id.
    pub key: u32,
    /// Neighbor point id.
    pub value: u32,
}

impl Pair {
    /// Convenience constructor.
    #[inline]
    pub fn new(key: u32, value: u32) -> Self {
        Self { key, value }
    }
}

/// CSR-style neighbor lists for every point of the dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborTable {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl NeighborTable {
    /// Builds the table from result pairs for a dataset of `num_points`
    /// points. Pairs need not be sorted; each adjacency list ends up
    /// sorted ascending (deterministic regardless of producer schedule).
    ///
    /// # Panics
    ///
    /// Panics if any pair references a point id `>= num_points`.
    pub fn from_pairs(num_points: usize, pairs: &[Pair]) -> Self {
        let mut counts = vec![0usize; num_points + 1];
        for p in pairs {
            assert!(
                (p.key as usize) < num_points && (p.value as usize) < num_points,
                "pair ({}, {}) out of range {num_points}",
                p.key,
                p.value
            );
            counts[p.key as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; pairs.len()];
        for p in pairs {
            let k = p.key as usize;
            neighbors[cursor[k]] = p.value;
            cursor[k] += 1;
        }
        for w in offsets.windows(2) {
            neighbors[w[0]..w[1]].sort_unstable();
        }
        Self { offsets, neighbors }
    }

    /// Builds the table like [`Self::from_pairs`] while also removing
    /// duplicate pairs, returning the duplicate count. Keys are dense
    /// `u32` ids in `0..num_points`, so the grouping is a counting sort —
    /// `O(n + num_points)` plus the per-neighbor-list `sort_unstable`
    /// kept for determinism — instead of the `O(n log n)` full
    /// `sort_unstable` + `dedup` a caller would otherwise run first (the
    /// sharded engine's merge of multi-million-pair results).
    ///
    /// # Panics
    ///
    /// Panics if any pair references a point id `>= num_points`.
    pub fn from_pairs_dedup(num_points: usize, pairs: &[Pair]) -> (Self, u64) {
        let mut counts = vec![0usize; num_points + 1];
        for p in pairs {
            assert!(
                (p.key as usize) < num_points && (p.value as usize) < num_points,
                "pair ({}, {}) out of range {num_points}",
                p.key,
                p.value
            );
            counts[p.key as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut cursor = counts.clone();
        let mut neighbors = vec![0u32; pairs.len()];
        for p in pairs {
            let k = p.key as usize;
            neighbors[cursor[k]] = p.value;
            cursor[k] += 1;
        }
        // Sort + dedup each list in place, compacting the value array and
        // rebuilding the offsets as we go.
        let mut offsets = vec![0usize; num_points + 1];
        let mut write = 0usize;
        for k in 0..num_points {
            let (lo, hi) = (counts[k], counts[k + 1]);
            neighbors[lo..hi].sort_unstable();
            let mut prev: Option<u32> = None;
            for i in lo..hi {
                let v = neighbors[i];
                if prev != Some(v) {
                    neighbors[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            offsets[k + 1] = write;
        }
        let duplicates = (pairs.len() - write) as u64;
        neighbors.truncate(write);
        (Self { offsets, neighbors }, duplicates)
    }

    /// Number of points the table covers.
    pub fn num_points(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted neighbor list of point `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total number of directed pairs.
    pub fn total_pairs(&self) -> usize {
        self.neighbors.len()
    }

    /// Average neighbors per point (the paper's selectivity measure).
    pub fn avg_neighbors(&self) -> f64 {
        if self.num_points() == 0 {
            0.0
        } else {
            self.total_pairs() as f64 / self.num_points() as f64
        }
    }

    /// Checks the reflexivity invariant: `q ∈ N(p) ⇔ p ∈ N(q)`.
    pub fn is_symmetric(&self) -> bool {
        for p in 0..self.num_points() {
            for &q in self.neighbors(p) {
                if self
                    .neighbors(q as usize)
                    .binary_search(&(p as u32))
                    .is_err()
                {
                    return false;
                }
            }
        }
        true
    }

    /// Checks that no point lists itself.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.num_points()).all(|p| self.neighbors(p).binary_search(&(p as u32)).is_err())
    }
}

/// Emit-time ownership window of a shard-scoped join: the contiguous
/// local-id range `[lo, hi)` of points this execution *owns*. Kernels
/// carrying an ownership window test each candidate pair's key with one
/// comparison **before** reserving result-buffer space, so ghost-keyed
/// pairs are never materialized — the fused alternative to the post-pass
/// [`retain_owned_pairs`] filter.
///
/// Shard-local datasets are laid out owned-points-first, so shard plans
/// use the prefix window `[0, owned)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ownership {
    /// First owned local id (inclusive).
    pub lo: u32,
    /// One past the last owned local id (exclusive).
    pub hi: u32,
}

impl Ownership {
    /// The owned-points-first prefix window `[0, owned)` of a shard.
    pub fn prefix(owned: usize) -> Self {
        Self {
            lo: 0,
            hi: owned as u32,
        }
    }

    /// Whether a pair keyed by `key` belongs to this execution.
    #[inline]
    pub fn keeps(&self, key: u32) -> bool {
        self.lo <= key && key < self.hi
    }

    /// Number of local ids in the window.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// Sorts pairs by (key, value) — the host-side equivalent of the paper's
/// post-kernel `thrust::sort`, used when a caller wants the raw pair list
/// in canonical order rather than a [`NeighborTable`].
pub fn sort_pairs(pairs: &mut [Pair]) {
    pairs.sort_unstable();
}

/// Halo-aware ownership filter for shard-scoped joins: keeps only pairs
/// whose *key* is an owned point (local id `< owned`) and drops the rest
/// (ghost-keyed pairs, which the shard that owns the ghost will produce).
/// Returns the number of dropped pairs.
///
/// Shard-local datasets are laid out owned-points-first, so ownership of a
/// pair is a single comparison on the key. Values may reference ghosts —
/// that is the point of the halo: an owned query must see its neighbours
/// across the shard boundary.
pub fn retain_owned_pairs(pairs: &mut Vec<Pair>, owned: u32) -> u64 {
    let before = pairs.len();
    pairs.retain(|p| p.key < owned);
    (before - pairs.len()) as u64
}

/// Rewrites shard-local point ids to global ids through `global_ids`
/// (index = local id, value = global id).
///
/// # Panics
///
/// Panics if any pair references a local id outside `global_ids`.
pub fn remap_pairs(pairs: &mut [Pair], global_ids: &[u32]) {
    for p in pairs {
        p.key = global_ids[p.key as usize];
        p.value = global_ids[p.value as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pairs() -> Vec<Pair> {
        vec![
            Pair::new(2, 0),
            Pair::new(0, 2),
            Pair::new(0, 1),
            Pair::new(1, 0),
        ]
    }

    #[test]
    fn table_from_unsorted_pairs() {
        let t = NeighborTable::from_pairs(3, &sample_pairs());
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.total_pairs(), 4);
        assert!((t.avg_neighbors() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_table_removes_duplicates_and_matches_sorted_merge() {
        let mut pairs = sample_pairs();
        pairs.push(Pair::new(0, 2)); // duplicate
        pairs.push(Pair::new(2, 0)); // duplicate
        pairs.push(Pair::new(0, 2)); // triplicate
        let (t, dups) = NeighborTable::from_pairs_dedup(3, &pairs);
        assert_eq!(dups, 3);
        assert_eq!(t, NeighborTable::from_pairs(3, &sample_pairs()));
        // Reference construction: full sort + dedup, then from_pairs.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(t, NeighborTable::from_pairs(3, &sorted));
        // No duplicates → zero removed, identical to from_pairs.
        let (clean, zero) = NeighborTable::from_pairs_dedup(3, &sample_pairs());
        assert_eq!(zero, 0);
        assert_eq!(clean, NeighborTable::from_pairs(3, &sample_pairs()));
        let (empty, d) = NeighborTable::from_pairs_dedup(4, &[]);
        assert_eq!((empty.num_points(), d), (4, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dedup_table_rejects_out_of_range() {
        let _ = NeighborTable::from_pairs_dedup(2, &[Pair::new(0, 5)]);
    }

    #[test]
    fn symmetry_check() {
        let t = NeighborTable::from_pairs(3, &sample_pairs());
        assert!(t.is_symmetric());
        let broken = NeighborTable::from_pairs(3, &[Pair::new(0, 1)]);
        assert!(!broken.is_symmetric());
    }

    #[test]
    fn irreflexivity_check() {
        let t = NeighborTable::from_pairs(3, &sample_pairs());
        assert!(t.is_irreflexive());
        let selfish = NeighborTable::from_pairs(2, &[Pair::new(1, 1)]);
        assert!(!selfish.is_irreflexive());
    }

    #[test]
    fn empty_table() {
        let t = NeighborTable::from_pairs(0, &[]);
        assert_eq!(t.num_points(), 0);
        assert_eq!(t.avg_neighbors(), 0.0);
        assert!(t.is_symmetric());
        let t5 = NeighborTable::from_pairs(5, &[]);
        assert_eq!(t5.neighbors(3), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_rejected() {
        let _ = NeighborTable::from_pairs(2, &[Pair::new(0, 5)]);
    }

    #[test]
    fn ownership_filter_keeps_owned_keys_only() {
        let mut pairs = vec![
            Pair::new(0, 3), // owned key, ghost value: kept
            Pair::new(1, 0), // owned-owned: kept
            Pair::new(3, 0), // ghost key: dropped
            Pair::new(4, 3), // ghost-ghost: dropped
        ];
        let dropped = retain_owned_pairs(&mut pairs, 2);
        assert_eq!(dropped, 2);
        assert_eq!(pairs, vec![Pair::new(0, 3), Pair::new(1, 0)]);
        let mut none: Vec<Pair> = Vec::new();
        assert_eq!(retain_owned_pairs(&mut none, 5), 0);
    }

    #[test]
    fn ownership_window_semantics() {
        let own = Ownership::prefix(3);
        assert!(own.keeps(0) && own.keeps(2));
        assert!(!own.keeps(3));
        assert_eq!(own.len(), 3);
        let mid = Ownership { lo: 2, hi: 5 };
        assert!(!mid.keeps(1) && mid.keeps(2) && mid.keeps(4) && !mid.keeps(5));
        assert!(Ownership::prefix(0).is_empty());
        // The emit-time window keeps exactly what the post-pass filter
        // keeps for a prefix window.
        let mut pairs = vec![Pair::new(0, 3), Pair::new(3, 0), Pair::new(2, 4)];
        let keep = Ownership::prefix(3);
        let by_window: Vec<Pair> = pairs
            .iter()
            .copied()
            .filter(|p| keep.keeps(p.key))
            .collect();
        retain_owned_pairs(&mut pairs, 3);
        assert_eq!(pairs, by_window);
    }

    #[test]
    fn remap_translates_both_sides() {
        let ids = [10u32, 20, 30];
        let mut pairs = vec![Pair::new(0, 2), Pair::new(2, 1)];
        remap_pairs(&mut pairs, &ids);
        assert_eq!(pairs, vec![Pair::new(10, 30), Pair::new(30, 20)]);
    }

    #[test]
    #[should_panic]
    fn remap_rejects_out_of_range_local_ids() {
        let mut pairs = vec![Pair::new(0, 9)];
        remap_pairs(&mut pairs, &[1, 2]);
    }

    #[test]
    fn deterministic_under_permutation() {
        let mut p1 = sample_pairs();
        let p2 = {
            let mut v = p1.clone();
            v.reverse();
            v
        };
        let t1 = NeighborTable::from_pairs(3, &p1);
        let t2 = NeighborTable::from_pairs(3, &p2);
        assert_eq!(t1, t2);
        sort_pairs(&mut p1);
        assert!(p1.windows(2).all(|w| w[0] <= w[1]));
    }
}
