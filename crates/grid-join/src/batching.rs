//! Result-set batching (paper §V-A).
//!
//! Low-dimensional self-joins can produce result sets far larger than the
//! GPU's global memory. The paper's scheme — adopted from Gowanlock et
//! al. 2017 \[29\] — estimates the total result size, splits the query
//! points into at least three batches, and pipelines kernel execution with
//! bidirectional transfers across CUDA streams so transfer time hides
//! behind compute. This module implements all three parts against the
//! simulated device:
//!
//! 1. **Estimation** — the [`crate::kernels::CountKernel`]
//!    counts neighbours for a deterministic sample of query points; the
//!    scaled sum (with a safety factor) predicts the total.
//! 2. **Planning** — the batch count is
//!    `max(3, ceil(estimate / buffer_capacity))` where the buffer capacity
//!    is bounded by a configurable fraction of *free* device memory.
//! 3. **Execution** — one reusable device result buffer; per batch: launch
//!    the join kernel over a contiguous query range, detect overflow (the
//!    estimate is probabilistic, not a guarantee), retry with a doubled
//!    buffer when it happens, then drain to the host. Per-batch costs feed
//!    the [`StreamTimeline`] overlap model.

use crate::cell_major::{CellMajorPlan, CellMajorSelfJoinKernel, HotPath, PlanBuildStats};
use crate::device_grid::DeviceGrid;
use crate::error::SelfJoinError;
use crate::kernels::{CountKernel, SelfJoinKernel};
use crate::result::{Ownership, Pair};
use sim_gpu::append::AppendBuffer;
use sim_gpu::{launch, BatchCost, Device, LaunchConfig, StreamTimeline, TimelineReport};
use std::time::Duration;

/// Execution options of one batched join (which kernel variant runs, how
/// queries are ordered, and how the run relates to resident device state).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Apply the UNICOMP work-avoidance pattern.
    pub unicomp: bool,
    /// Per-thread path only: process queries in `A`-order (the cell-major
    /// path is always cell-ordered by construction).
    pub cell_order: bool,
    /// Which hot path executes the join kernels.
    pub hot_path: HotPath,
    /// Distance threshold ε′ for this execution when it differs from the
    /// grid's cell width (resident-index reuse; callers guarantee
    /// ε′ ≤ ε_built — the plan executor validates). `None` uses the
    /// grid's ε.
    pub query_epsilon: Option<f64>,
    /// The snapshot (and any hoisted plan passed in) was resident on the
    /// device before this call: the modeled timeline omits the leading
    /// upload batch — the session that owns the residency accounts for the
    /// one-time upload instead.
    pub resident: bool,
    /// Emit-time ownership window (shard-fused joins): kernels drop pairs
    /// whose key falls outside `[lo, hi)` with one comparison *before* the
    /// result-buffer reservation, instead of materializing ghost pairs for
    /// a post-pass filter. `None` emits everything.
    pub ownership: Option<Ownership>,
}

/// Tunables of the batching scheme.
#[derive(Clone, Copy, Debug)]
pub struct BatchingConfig {
    /// Minimum number of batches; the paper fixes this at 3 so transfers
    /// always have neighbouring kernels to hide behind.
    pub min_batches: usize,
    /// Fraction of points sampled by the estimation kernel.
    pub sample_fraction: f64,
    /// Sample-size floor.
    pub min_sample: usize,
    /// Multiplier applied to the estimate before sizing buffers.
    pub safety_factor: f64,
    /// Fraction of *free* device memory the result buffer may occupy.
    pub result_mem_fraction: f64,
    /// Simulated CUDA streams for the overlap model.
    pub streams: usize,
    /// Externally supplied result-size estimate (directed pairs, already
    /// including any safety factor). When set, the estimation kernel is
    /// skipped — the sharded engine estimates every shard up front for its
    /// cost-based scheduler and passes the prediction through here so the
    /// work isn't done twice.
    pub precomputed_estimate: Option<u64>,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        Self {
            min_batches: 3,
            sample_fraction: 0.01,
            min_sample: 1024,
            safety_factor: 1.25,
            result_mem_fraction: 0.5,
            streams: 3,
            precomputed_estimate: None,
        }
    }
}

/// Execution report of a batched join.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Number of batches executed.
    pub batches: usize,
    /// Estimated total directed pairs (post safety factor).
    pub estimated_pairs: u64,
    /// Actual directed pairs produced.
    pub actual_pairs: u64,
    /// Batches that overflowed their buffer and were retried.
    pub overflow_retries: usize,
    /// Sum of host-measured kernel wall times (estimation kernel excluded).
    pub kernel_time: Duration,
    /// Sum of modeled device-kernel times (see
    /// [`sim_gpu::LaunchStats::modeled_wall`]).
    pub modeled_kernel_time: Duration,
    /// Wall time of the estimation kernel (host-measured).
    pub estimate_time: Duration,
    /// Modeled device time of the estimation kernel.
    pub modeled_estimate_time: Duration,
    /// Host wall time of the cell-major hoisting precompute (zero on the
    /// per-thread path).
    pub hoist_time: Duration,
    /// Modeled device time of the hoisting kernels (zero on the
    /// per-thread path); also scheduled into [`Self::timeline`].
    pub modeled_hoist_time: Duration,
    /// Modeled pipelined timeline (kernel + transfers on `streams`).
    pub timeline: TimelineReport,
    /// Result-buffer capacity in pairs.
    pub buffer_capacity: usize,
}

impl BatchReport {
    /// An all-zero report for executions that never touch the device (the
    /// plan executor's host backend); only the produced pair count is
    /// meaningful.
    pub fn host(actual_pairs: u64) -> Self {
        let zero_timeline = TimelineReport {
            total: Duration::ZERO,
            serial_total: Duration::ZERO,
            compute_busy: Duration::ZERO,
            h2d_busy: Duration::ZERO,
            d2h_busy: Duration::ZERO,
        };
        Self {
            batches: 0,
            estimated_pairs: actual_pairs,
            actual_pairs,
            overflow_retries: 0,
            kernel_time: Duration::ZERO,
            modeled_kernel_time: Duration::ZERO,
            estimate_time: Duration::ZERO,
            modeled_estimate_time: Duration::ZERO,
            hoist_time: Duration::ZERO,
            modeled_hoist_time: Duration::ZERO,
            timeline: zero_timeline,
            buffer_capacity: 0,
        }
    }
}

/// Estimates the total number of directed result pairs by sampling.
///
/// `query_epsilon` overrides the distance threshold (resident-index reuse
/// with ε′ ≤ ε_built); `None` estimates at the grid's own ε.
///
/// Returns `(estimate_after_safety, sample_size, host_wall, modeled_wall)`.
pub fn estimate_result_size(
    device: &Device,
    grid: &DeviceGrid,
    cfg: &BatchingConfig,
    query_epsilon: Option<f64>,
) -> Result<(u64, usize, Duration, Duration), SelfJoinError> {
    let n = grid.num_points;
    if n == 0 {
        return Ok((0, 0, Duration::ZERO, Duration::ZERO));
    }
    let mut span = sj_obs::Span::enter("gpu.estimate");
    let eps = query_epsilon.unwrap_or(grid.epsilon);
    let sample = ((n as f64 * cfg.sample_fraction) as usize)
        .max(cfg.min_sample)
        .min(n);
    // Deterministic stratified sample: every ceil(n/sample)-th point. A is
    // grouped by cell, but ids are assigned in input order, so striding ids
    // samples space roughly uniformly for any input order.
    let stride = n.div_ceil(sample);
    let ids: Vec<u32> = (0..n).step_by(stride).map(|i| i as u32).collect();
    let sample_ids = device.alloc_from_host(&ids)?;
    let counts = AppendBuffer::<u32>::new(device.pool(), ids.len())?;
    let kernel = CountKernel {
        grid,
        eps_sq: eps * eps,
        sample_ids: &sample_ids,
        counts: &counts,
    };
    let stats = launch(device, LaunchConfig::default(), ids.len(), &kernel);
    let mut counts = counts;
    let total: u64 = counts.drain_to_host().iter().map(|&c| c as u64).sum();
    let avg = total as f64 / ids.len() as f64;
    let estimate = (avg * n as f64 * cfg.safety_factor).ceil() as u64;
    span.label("sample", ids.len());
    span.label("estimate", estimate);
    Ok((estimate, ids.len(), stats.wall, stats.modeled_wall))
}

/// Runs the batched self-join and returns all directed pairs plus the
/// execution report.
pub fn run_batched(
    device: &Device,
    grid: &DeviceGrid,
    launch_cfg: LaunchConfig,
    opts: ExecOptions,
    cfg: &BatchingConfig,
) -> Result<(Vec<Pair>, BatchReport), SelfJoinError> {
    run_batched_on(device, grid, launch_cfg, opts, cfg, None)
}

/// [`run_batched`] against optionally pre-hoisted device state: a resident
/// session passes the [`CellMajorPlan`] it cached with the snapshot so the
/// hoisting pass runs once per index build, not once per query. The
/// prebuilt plan must target `grid` and match `opts.unicomp`; its build
/// cost is charged by whoever built it, so the report's hoist fields stay
/// zero here.
pub fn run_batched_on(
    device: &Device,
    grid: &DeviceGrid,
    launch_cfg: LaunchConfig,
    opts: ExecOptions,
    cfg: &BatchingConfig,
    prebuilt: Option<&CellMajorPlan>,
) -> Result<(Vec<Pair>, BatchReport), SelfJoinError> {
    // One fault-injection checkpoint covers the whole kernel-launch
    // sequence: a launch fault (or a crashed device) fails the join here,
    // before any batch allocates, so retries re-enter with clean state.
    device.fault_check(sim_gpu::FaultOp::Launch)?;
    let n = grid.num_points;
    let eps = opts.query_epsilon.unwrap_or(grid.epsilon);
    if eps > grid.epsilon {
        // The one-cell adjacent shell only covers radii up to the cell
        // width; a silent under-count would be far worse than an error.
        return Err(SelfJoinError::EpsilonExceedsIndex {
            query: eps,
            built: grid.epsilon,
        });
    }
    let eps_sq = eps * eps;
    let (estimated, _sample, estimate_time, modeled_estimate_time) = match cfg.precomputed_estimate
    {
        Some(est) => (est, 0, Duration::ZERO, Duration::ZERO),
        None => estimate_result_size(device, grid, cfg, opts.query_epsilon)?,
    };

    // Cell-major path: hoist the per-cell neighbor searches once, before
    // any batch runs (and before the free-memory budget is measured, so
    // the plan's buffers are accounted for) — unless the caller already
    // holds a resident hoisted plan for this grid.
    let (built_plan, plan_stats) = match (opts.hot_path, prebuilt) {
        (HotPath::CellMajor, Some(p)) => {
            assert_eq!(
                p.unicomp, opts.unicomp,
                "prebuilt cell-major plan does not match the UNICOMP setting"
            );
            (None, PlanBuildStats::default())
        }
        (HotPath::CellMajor, None) => {
            let mut hspan = sj_obs::Span::enter("gpu.hoist");
            let (plan, stats) = CellMajorPlan::build(device, grid, opts.unicomp, launch_cfg)?;
            hspan.label("h2d_bytes", stats.h2d_bytes);
            hspan.label("d2h_bytes", stats.d2h_bytes);
            (Some(plan), stats)
        }
        (HotPath::PerThread, _) => (None, Default::default()),
    };
    let plan = match opts.hot_path {
        HotPath::CellMajor => built_plan.as_ref().or(prebuilt),
        HotPath::PerThread => None,
    };

    // Buffer capacity: bounded by the free-memory budget, floored so tiny
    // datasets still get a useful buffer.
    let pair_size = std::mem::size_of::<Pair>();
    let budget_pairs =
        ((device.free_bytes() as f64 * cfg.result_mem_fraction) as usize / pair_size).max(4096);
    let batches = cfg
        .min_batches
        .max((estimated as usize).div_ceil(budget_pairs))
        .min(n.max(1));
    // Expected pairs per batch, with headroom for skew between batches.
    let per_batch_estimate = (estimated as usize).div_ceil(batches);
    let mut capacity = (per_batch_estimate * 2).clamp(4096, budget_pairs);

    let mut results = AppendBuffer::<Pair>::new(device.pool(), capacity)?;
    let mut all_pairs: Vec<Pair> = Vec::with_capacity(estimated as usize);
    let mut kernel_time = Duration::ZERO;
    let mut modeled_kernel_time = Duration::ZERO;
    let mut overflow_retries = 0usize;
    let mut costs: Vec<BatchCost> = Vec::with_capacity(batches + 1);

    // The grid + data upload precedes the pipeline; model it as a leading
    // H2D-only batch — unless the snapshot was already resident, in which
    // case its one-time upload was charged when residency was established.
    if !opts.resident {
        costs.push(BatchCost {
            h2d_bytes: grid.h2d_bytes(),
            kernel: Duration::ZERO,
            d2h_bytes: 0,
        });
    }
    // The hoisting pass (when it ran in this call) comes next: its
    // kernels, drains and CSR upload are real pipeline work, never free.
    // A prebuilt resident plan contributes nothing here for the same
    // reason the upload doesn't.
    if built_plan.is_some() {
        costs.push(BatchCost {
            h2d_bytes: plan_stats.h2d_bytes,
            kernel: plan_stats.modeled,
            d2h_bytes: plan_stats.d2h_bytes,
        });
    }

    let per_batch_queries = n.div_ceil(batches.max(1)).max(1);
    let mut offset = 0usize;
    let mut batch_idx = 0usize;
    while offset < n {
        let count = per_batch_queries.min(n - offset);
        let mut bspan = sj_obs::Span::enter("gpu.batch");
        bspan.label("batch", batch_idx);
        bspan.label("queries", count);
        loop {
            let stats = match plan {
                Some(plan) => {
                    let kernel = CellMajorSelfJoinKernel {
                        grid,
                        eps_sq,
                        plan,
                        results: &results,
                        slot_offset: offset,
                        slot_count: count,
                        ownership: opts.ownership,
                    };
                    launch(device, launch_cfg, count, &kernel)
                }
                None => {
                    let kernel = SelfJoinKernel {
                        grid,
                        eps_sq,
                        results: &results,
                        query_offset: offset,
                        query_count: count,
                        unicomp: opts.unicomp,
                        cell_order: opts.cell_order,
                        ownership: opts.ownership,
                    };
                    launch(device, launch_cfg, count, &kernel)
                }
            };
            if results.overflowed() {
                // The estimate undershot: grow the buffer and retry this
                // batch (a real implementation re-splits; doubling is the
                // simplest convergent policy).
                overflow_retries += 1;
                capacity *= 2;
                drop(results);
                results = AppendBuffer::<Pair>::new(device.pool(), capacity)?;
                continue;
            }
            kernel_time += stats.wall;
            modeled_kernel_time += stats.modeled_wall;
            let produced = results.len();
            let mut dspan = sj_obs::Span::enter("gpu.download");
            if dspan.id() != 0 {
                let bytes = produced * pair_size;
                dspan.label("bytes", bytes);
                dspan.set_modeled_dur(device.spec().transfer_model().time(bytes).as_secs_f64());
            }
            all_pairs.extend_from_slice(results.as_slice());
            results.clear();
            drop(dspan);
            // The overlap timeline schedules *device* work, so it is fed
            // modeled kernel durations.
            costs.push(BatchCost {
                h2d_bytes: 0,
                kernel: stats.modeled_wall,
                d2h_bytes: produced * pair_size,
            });
            break;
        }
        if overflow_retries > 0 {
            bspan.label("retries_so_far", overflow_retries);
        }
        drop(bspan);
        offset += count;
        batch_idx += 1;
    }

    let timeline =
        StreamTimeline::new(device.spec().transfer_model(), cfg.streams).schedule(&costs);
    let report = BatchReport {
        batches,
        estimated_pairs: estimated,
        actual_pairs: all_pairs.len() as u64,
        overflow_retries,
        kernel_time,
        modeled_kernel_time,
        estimate_time,
        modeled_estimate_time,
        hoist_time: plan_stats.wall,
        modeled_hoist_time: plan_stats.modeled,
        timeline,
        buffer_capacity: capacity,
    };
    Ok((all_pairs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridIndex;
    use crate::host_join::host_self_join;
    use crate::result::NeighborTable;
    use sim_gpu::DeviceSpec;
    use sj_datasets::synthetic::{clustered, uniform};

    fn setup(
        dim: usize,
        n: usize,
        eps: f64,
        seed: u64,
        device: &Device,
    ) -> (sj_datasets::Dataset, GridIndex, DeviceGrid) {
        let data = uniform(dim, n, seed);
        let grid = GridIndex::build(&data, eps).unwrap();
        let dg = DeviceGrid::upload(device, &data, &grid).unwrap();
        (data, grid, dg)
    }

    #[test]
    fn estimate_close_to_truth_on_uniform_data() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let (data, grid, dg) = setup(2, 5000, 3.0, 41, &dev);
        let cfg = BatchingConfig::default();
        let (est, sample, _, _) = estimate_result_size(&dev, &dg, &cfg, None).unwrap();
        let truth = host_self_join(&data, &grid).total_pairs() as f64;
        assert!(sample >= 900, "sample {sample}");
        // Estimate carries a 1.25 safety factor; require truth ≤ est ≤ 2×truth.
        assert!(est as f64 >= truth * 0.9, "est {est} truth {truth}");
        assert!(est as f64 <= truth * 2.0, "est {est} truth {truth}");
    }

    fn exec(unicomp: bool, hot_path: HotPath) -> ExecOptions {
        ExecOptions {
            unicomp,
            cell_order: false,
            hot_path,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn batched_join_matches_host_reference() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let (data, grid, dg) = setup(2, 3000, 2.5, 42, &dev);
        for hot_path in [HotPath::PerThread, HotPath::CellMajor] {
            for unicomp in [false, true] {
                let (pairs, report) = run_batched(
                    &dev,
                    &dg,
                    LaunchConfig::default(),
                    exec(unicomp, hot_path),
                    &BatchingConfig::default(),
                )
                .unwrap();
                assert!(report.batches >= 3, "paper mandates ≥3 batches");
                let got = NeighborTable::from_pairs(data.len(), &pairs);
                assert_eq!(
                    got,
                    host_self_join(&data, &grid),
                    "unicomp={unicomp}, {hot_path:?}"
                );
                assert_eq!(report.actual_pairs as usize, got.total_pairs());
                match hot_path {
                    HotPath::CellMajor => assert!(report.modeled_hoist_time > Duration::ZERO),
                    HotPath::PerThread => assert_eq!(report.modeled_hoist_time, Duration::ZERO),
                }
            }
        }
    }

    #[test]
    fn tiny_buffer_forces_many_batches_and_still_correct() {
        // Deny the result buffer almost all memory so the planner must use
        // many batches (and possibly retries) — correctness must hold.
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let (data, grid, dg) = setup(2, 2000, 4.0, 43, &dev);
        let cfg = BatchingConfig {
            result_mem_fraction: 1e-7, // ≈ floor of 4096 pairs
            ..BatchingConfig::default()
        };
        for hot_path in [HotPath::PerThread, HotPath::CellMajor] {
            let (pairs, report) = run_batched(
                &dev,
                &dg,
                LaunchConfig::default(),
                exec(false, hot_path),
                &cfg,
            )
            .unwrap();
            assert!(
                report.batches > 3,
                "expected many batches, got {}",
                report.batches
            );
            let got = NeighborTable::from_pairs(data.len(), &pairs);
            assert_eq!(got, host_self_join(&data, &grid), "{hot_path:?}");
        }
    }

    #[test]
    fn overflow_retry_recovers() {
        // A clustered dataset breaks the uniform-sample assumption enough
        // to occasionally overflow; force it with a hostile safety factor.
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = clustered(2, 3000, 3, 0.8, 0.05, 44);
        let grid = GridIndex::build(&data, 1.5).unwrap();
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        let cfg = BatchingConfig {
            safety_factor: 0.05, // deliberate massive underestimate
            ..BatchingConfig::default()
        };
        for hot_path in [HotPath::PerThread, HotPath::CellMajor] {
            let (pairs, report) = run_batched(
                &dev,
                &dg,
                LaunchConfig::default(),
                exec(false, hot_path),
                &cfg,
            )
            .unwrap();
            assert!(
                report.overflow_retries > 0,
                "test should have provoked a retry ({hot_path:?})"
            );
            let got = NeighborTable::from_pairs(data.len(), &pairs);
            assert_eq!(got, host_self_join(&data, &grid), "{hot_path:?}");
        }
    }

    #[test]
    fn precomputed_estimate_skips_estimation_kernel() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let (data, grid, dg) = setup(2, 2500, 2.5, 47, &dev);
        let truth = host_self_join(&data, &grid).total_pairs() as u64;
        let cfg = BatchingConfig {
            precomputed_estimate: Some(truth),
            ..BatchingConfig::default()
        };
        let (pairs, report) = run_batched(
            &dev,
            &dg,
            LaunchConfig::default(),
            exec(true, HotPath::CellMajor),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.estimated_pairs, truth);
        assert_eq!(report.estimate_time, Duration::ZERO);
        assert_eq!(report.modeled_estimate_time, Duration::ZERO);
        let got = NeighborTable::from_pairs(data.len(), &pairs);
        assert_eq!(got, host_self_join(&data, &grid));
    }

    #[test]
    fn empty_dataset_runs() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = sj_datasets::Dataset::new(2);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        for hot_path in [HotPath::PerThread, HotPath::CellMajor] {
            let (pairs, report) = run_batched(
                &dev,
                &dg,
                LaunchConfig::default(),
                exec(false, hot_path),
                &BatchingConfig::default(),
            )
            .unwrap();
            assert!(pairs.is_empty());
            assert_eq!(report.actual_pairs, 0);
        }
    }

    #[test]
    fn timeline_reports_overlap() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let (_, _, dg) = setup(2, 4000, 3.0, 45, &dev);
        let (_, report) = run_batched(
            &dev,
            &dg,
            LaunchConfig::default(),
            exec(false, HotPath::CellMajor),
            &BatchingConfig::default(),
        )
        .unwrap();
        // Pipelined total can never exceed the serialized total.
        assert!(report.timeline.total <= report.timeline.serial_total);
    }

    #[test]
    fn memory_released_after_join() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        {
            let (_, _, dg) = setup(2, 1000, 2.0, 46, &dev);
            let _ = run_batched(
                &dev,
                &dg,
                LaunchConfig::default(),
                exec(true, HotPath::CellMajor),
                &BatchingConfig::default(),
            )
            .unwrap();
            drop(dg);
        }
        assert_eq!(dev.used_bytes(), 0);
    }
}
