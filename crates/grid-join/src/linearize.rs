//! Cell-coordinate linearization.
//!
//! Grid cells are identified by n-dimensional integer coordinates; the
//! index stores them as a single linearized id (paper §IV-C: "each
//! non-empty grid cell … is stored as a linearized cell id"). Dimension 0
//! varies fastest. All arithmetic is checked at grid-build time so an
//! ε/extent combination whose *virtual* cell space exceeds `u64` is
//! rejected up front instead of silently wrapping.

/// Maximum dimensionality supported by the kernels (the paper evaluates
/// 2–6; we leave headroom for experimentation).
pub const MAX_DIM: usize = 8;

/// Converts n-D cell coordinates to a linear id.
///
/// `cells_per_dim[j]` is the cell count `|g_j|` in dimension `j`.
///
/// # Panics
///
/// Debug-asserts coordinate bounds; the multiplication cannot overflow if
/// the grid was validated with [`total_cells`] at build time.
#[inline]
pub fn linearize(coords: &[u32], cells_per_dim: &[u64]) -> u64 {
    debug_assert_eq!(coords.len(), cells_per_dim.len());
    let mut id = 0u64;
    let mut stride = 1u64;
    for (&c, &n) in coords.iter().zip(cells_per_dim) {
        debug_assert!((c as u64) < n, "cell coordinate {c} out of range {n}");
        id += c as u64 * stride;
        stride *= n;
    }
    id
}

/// Inverse of [`linearize`].
#[inline]
pub fn delinearize(mut id: u64, cells_per_dim: &[u64], out: &mut [u32]) {
    debug_assert_eq!(out.len(), cells_per_dim.len());
    for (o, &n) in out.iter_mut().zip(cells_per_dim) {
        *o = (id % n) as u32;
        id /= n;
    }
    debug_assert_eq!(id, 0, "linear id out of range");
}

/// Total virtual cell count, or `None` if it exceeds `u64::MAX`.
///
/// The index never materializes this many cells (only non-empty ones are
/// stored, §IV-B), but linear ids must stay representable.
pub fn total_cells(cells_per_dim: &[u64]) -> Option<u64> {
    let mut acc = 1u64;
    for &n in cells_per_dim {
        if n == 0 {
            return Some(0);
        }
        acc = acc.checked_mul(n)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linearize_2d_matches_row_major() {
        let cells = [7u64, 5];
        assert_eq!(linearize(&[0, 0], &cells), 0);
        assert_eq!(linearize(&[1, 0], &cells), 1);
        assert_eq!(linearize(&[0, 1], &cells), 7);
        assert_eq!(linearize(&[6, 4], &cells), 34);
    }

    #[test]
    fn paper_figure_two_example() {
        // Figure 2(b): a 7×7 grid where cell (x=2, y=4) has linear id 30
        // under lexicographic (row of y) numbering: id = x + y*7.
        let cells = [7u64, 7];
        assert_eq!(linearize(&[2, 4], &cells), 30);
        assert_eq!(linearize(&[1, 3], &cells), 22);
        assert_eq!(linearize(&[1, 5], &cells), 36);
    }

    #[test]
    fn roundtrip_6d() {
        let cells = [3u64, 4, 5, 6, 7, 8];
        let coords = [2u32, 3, 4, 5, 6, 7];
        let id = linearize(&coords, &cells);
        let mut back = [0u32; 6];
        delinearize(id, &cells, &mut back);
        assert_eq!(back, coords);
    }

    #[test]
    fn total_cells_checked() {
        assert_eq!(total_cells(&[10, 10, 10]), Some(1000));
        assert_eq!(total_cells(&[]), Some(1));
        assert_eq!(total_cells(&[0, 5]), Some(0));
        assert_eq!(total_cells(&[u64::MAX, 2]), None);
        assert_eq!(total_cells(&[1 << 32, 1 << 32]), None);
        assert_eq!(total_cells(&[1 << 32, 1 << 31]), Some(1 << 63));
    }

    proptest! {
        #[test]
        fn roundtrip_random(dims in proptest::collection::vec(1u64..50, 1..=6)) {
            let coords: Vec<u32> = dims.iter().map(|&n| (n - 1) as u32).collect();
            let id = linearize(&coords, &dims);
            let mut back = vec![0u32; dims.len()];
            delinearize(id, &dims, &mut back);
            prop_assert_eq!(back, coords);
        }

        #[test]
        fn linearize_is_injective(
            dims in proptest::collection::vec(2u64..12, 2..=4),
            seed in 0u64..1000,
        ) {
            // Two distinct random coordinate tuples map to distinct ids.
            let a: Vec<u32> = dims.iter().enumerate()
                .map(|(i, &n)| (((seed >> (i * 4)) & 0xf) % n) as u32).collect();
            let b: Vec<u32> = dims.iter().enumerate()
                .map(|(i, &n)| ((((seed >> (i * 4)) & 0xf) + 1) % n) as u32).collect();
            if a != b {
                prop_assert_ne!(linearize(&a, &dims), linearize(&b, &dims));
            }
        }
    }
}
