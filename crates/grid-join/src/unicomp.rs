//! Neighbor-cell enumeration: full 3ⁿ traversal and the UNICOMP
//! work-avoidance pattern (paper §V-B, Algorithm 2).
//!
//! Euclidean distance is reflexive, so evaluating every unordered pair of
//! neighbouring cells once — and reporting both directed result pairs —
//! halves both cell searches and distance calculations. UNICOMP picks, for
//! every ordered pair of adjacent distinct cells `(C_a, C_b)`, exactly one
//! direction, using coordinate parity:
//!
//! > Let `j` be the **highest** dimension in which `C_a` and `C_b` differ.
//! > `C_a` evaluates `C_b` iff `C_a`'s coordinate in dimension `j` is odd.
//!
//! Adjacent cells differ by exactly 1 in each differing coordinate, so the
//! two cells' coordinates in dimension `j` have opposite parity — exactly
//! one direction fires. This is the n-dimensional generalization of the
//! paper's Algorithm 2 (its x/y/z loops are the `j = 0, 1, 2` cases).
//! Points inside the *same* cell are handled separately by an id-ordering
//! rule (`pid > qid`), which the kernels implement.

use crate::linearize::MAX_DIM;

/// Per-dimension inclusive cell-coordinate range to traverse.
pub type DimRange = (u32, u32);

/// Computes the unmasked adjacent range `[c−1, c+1]` in each dimension,
/// clamped to the grid bounds (paper Algorithm 1, `getAdjCells`).
#[inline]
pub fn adjacent_ranges(cell: &[u32], cells_per_dim: &[u64], out: &mut [DimRange]) {
    for j in 0..cell.len() {
        let lo = cell[j].saturating_sub(1);
        let hi = (cell[j] + 1).min((cells_per_dim[j] - 1) as u32);
        out[j] = (lo, hi);
    }
}

/// Visits every cell in the cartesian product of `ranges` — the full
/// (non-UNICOMP) adjacency traversal, own cell included. The visitor
/// receives the cell's coordinates.
#[inline]
pub fn for_each_full<F: FnMut(&[u32])>(dim: usize, ranges: &[DimRange], mut visit: F) {
    debug_assert!(dim <= MAX_DIM);
    let mut coords = [0u32; MAX_DIM];
    odometer(dim, ranges, &mut coords, 0, &mut visit);
}

fn odometer<F: FnMut(&[u32])>(
    dim: usize,
    ranges: &[DimRange],
    coords: &mut [u32; MAX_DIM],
    j: usize,
    visit: &mut F,
) {
    if j == dim {
        visit(&coords[..dim]);
        return;
    }
    let (lo, hi) = ranges[j];
    for c in lo..=hi {
        coords[j] = c;
        odometer(dim, ranges, coords, j + 1, visit);
    }
}

/// Visits the UNICOMP subset of *neighbour* cells for a query cell
/// (own cell excluded — same-cell pairs use the id-ordering rule).
///
/// For each dimension `j` with an odd coordinate, visits all cells whose
/// dimensions `< j` span the full filtered range, whose dimension `j`
/// differs from the query cell, and whose dimensions `> j` equal the query
/// cell's. The union over `j` covers exactly one direction of every
/// adjacent unordered cell pair (see module docs; property-tested below).
#[inline]
pub fn for_each_unicomp<F: FnMut(&[u32])>(
    dim: usize,
    cell: &[u32],
    ranges: &[DimRange],
    mut visit: F,
) {
    debug_assert!(dim <= MAX_DIM);
    let mut coords = [0u32; MAX_DIM];
    for j in 0..dim {
        if cell[j].is_multiple_of(2) {
            continue;
        }
        // Dimensions above j are pinned to the query cell.
        coords[..dim].copy_from_slice(&cell[..dim]);
        unicomp_level(dim, cell, ranges, &mut coords, 0, j, &mut visit);
    }
}

fn unicomp_level<F: FnMut(&[u32])>(
    dim: usize,
    cell: &[u32],
    ranges: &[DimRange],
    coords: &mut [u32; MAX_DIM],
    k: usize,
    j: usize,
    visit: &mut F,
) {
    if k > j {
        visit(&coords[..dim]);
        return;
    }
    let (lo, hi) = ranges[k];
    for c in lo..=hi {
        if k == j && c == cell[j] {
            continue; // dimension j must differ
        }
        coords[k] = c;
        unicomp_level(dim, cell, ranges, coords, k + 1, j, visit);
    }
    if k == j {
        // restore for completeness (coords beyond j stay pinned)
        coords[k] = cell[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn collect_full(dim: usize, cell: &[u32], cells: &[u64]) -> HashSet<Vec<u32>> {
        let mut ranges = [(0u32, 0u32); MAX_DIM];
        adjacent_ranges(cell, cells, &mut ranges[..dim]);
        let mut out = HashSet::new();
        for_each_full(dim, &ranges[..dim], |c| {
            out.insert(c.to_vec());
        });
        out
    }

    fn collect_unicomp(dim: usize, cell: &[u32], cells: &[u64]) -> HashSet<Vec<u32>> {
        let mut ranges = [(0u32, 0u32); MAX_DIM];
        adjacent_ranges(cell, cells, &mut ranges[..dim]);
        let mut out = HashSet::new();
        for_each_unicomp(dim, cell, &ranges[..dim], |c| {
            let fresh = out.insert(c.to_vec());
            assert!(fresh, "unicomp visited {c:?} twice from {cell:?}");
        });
        out
    }

    #[test]
    fn full_traversal_interior_cell_counts() {
        let cells = [10u64, 10, 10];
        let visited = collect_full(3, &[5, 5, 5], &cells);
        assert_eq!(visited.len(), 27);
        assert!(visited.contains(&vec![5, 5, 5]));
        assert!(visited.contains(&vec![4, 6, 5]));
    }

    #[test]
    fn full_traversal_corner_cell_clamped() {
        let cells = [10u64, 10];
        let visited = collect_full(2, &[0, 0], &cells);
        assert_eq!(visited.len(), 4); // 2×2 at the corner
        let visited = collect_full(2, &[9, 9], &cells);
        assert_eq!(visited.len(), 4);
    }

    #[test]
    fn unicomp_even_cell_visits_nothing() {
        let cells = [10u64, 10, 10];
        let visited = collect_unicomp(3, &[4, 6, 2], &cells);
        assert!(visited.is_empty());
    }

    #[test]
    fn unicomp_all_odd_interior_visits_everything() {
        // An all-odd interior cell evaluates all 26 neighbours (2 + 6 + 18,
        // Figure 3); an all-even cell evaluates none. The ~2× saving is the
        // *average* across cells: each unordered cell pair is evaluated
        // from exactly one side.
        let cells = [10u64, 10, 10];
        let visited = collect_unicomp(3, &[5, 5, 5], &cells);
        assert_eq!(visited.len(), 26);
        assert!(!visited.contains(&vec![5, 5, 5]), "own cell excluded");
    }

    #[test]
    fn unicomp_average_work_is_half() {
        // Over all interior cells of a parity-balanced grid, the average
        // number of visited neighbour cells is half of the full 26.
        let cells = [8u64, 8, 8];
        let mut total = 0usize;
        let mut count = 0usize;
        for x in 1..7u32 {
            for y in 1..7u32 {
                for z in 1..7u32 {
                    total += collect_unicomp(3, &[x, y, z], &cells).len();
                    count += 1;
                }
            }
        }
        let avg = total as f64 / count as f64;
        assert!((avg - 13.0).abs() < 0.8, "average unicomp visits {avg}");
    }

    #[test]
    fn unicomp_matches_paper_algorithm_two_shape() {
        // Figure 3: x odd → 2 cells (x±1, same y,z); y odd → 6 cells
        // (x ∈ range, y ≠, z same); z odd → 18 cells.
        let cells = [10u64, 10, 10];
        let mut ranges = [(0u32, 0u32); MAX_DIM];
        adjacent_ranges(&[5, 5, 5], &cells, &mut ranges[..3]);

        // Count per originating dimension by masking parity.
        let count_dim = |cell: [u32; 3]| {
            let mut per_dim = [0usize; 3];
            #[allow(clippy::needless_range_loop)]
            for j in 0..3 {
                let mut c2 = cell;
                // Zero out parity of other dims (make them even).
                for (k, v) in c2.iter_mut().enumerate() {
                    if k != j && *v % 2 == 1 {
                        *v -= 1;
                    }
                }
                let mut r = [(0u32, 0u32); MAX_DIM];
                adjacent_ranges(&c2, &cells, &mut r[..3]);
                for_each_unicomp(3, &c2, &r[..3], |_| per_dim[j] += 1);
            }
            per_dim
        };
        assert_eq!(count_dim([5, 5, 5]), [2, 6, 18]);
    }

    /// The load-bearing invariant (paper §V-B): over any set of adjacent
    /// cells, UNICOMP covers every unordered pair of distinct cells in
    /// exactly one direction.
    fn check_partition(dim: usize, cells_per_dim: &[u64]) {
        // Enumerate all cells of the small grid.
        let mut all = vec![vec![]];
        for &n in cells_per_dim {
            let mut next = Vec::new();
            for prefix in &all {
                for c in 0..n as u32 {
                    let mut p = prefix.clone();
                    p.push(c);
                    next.push(p);
                }
            }
            all = next;
        }
        for a in &all {
            for b in &all {
                if a == b {
                    continue;
                }
                let adjacent = a
                    .iter()
                    .zip(b)
                    .all(|(&x, &y)| (x as i64 - y as i64).abs() <= 1);
                if !adjacent {
                    continue;
                }
                let a_visits_b = collect_unicomp(dim, a, cells_per_dim).contains(b);
                let b_visits_a = collect_unicomp(dim, b, cells_per_dim).contains(a);
                assert!(
                    a_visits_b ^ b_visits_a,
                    "pair {a:?} / {b:?}: a→b={a_visits_b}, b→a={b_visits_a}"
                );
            }
        }
    }

    #[test]
    fn partition_2d() {
        check_partition(2, &[5, 4]);
    }

    #[test]
    fn partition_3d() {
        check_partition(3, &[4, 3, 4]);
    }

    #[test]
    fn partition_4d() {
        check_partition(4, &[3, 3, 3, 3]);
    }

    #[test]
    fn unicomp_subset_of_full() {
        let cells = [6u64, 6, 6];
        for cell in [[1u32, 2, 3], [3, 3, 3], [0, 5, 1]] {
            let full = collect_full(3, &cell, &cells);
            let uni = collect_unicomp(3, &cell, &cells);
            assert!(uni.is_subset(&full), "cell {cell:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_partition_random_grids(
            dims in proptest::collection::vec(2u64..5, 1..=3),
        ) {
            check_partition(dims.len(), &dims);
        }

        #[test]
        fn prop_unicomp_never_revisits(
            cell in proptest::collection::vec(0u32..7, 2..=5),
        ) {
            let dims: Vec<u64> = cell.iter().map(|_| 8u64).collect();
            // collect_unicomp asserts no duplicates internally.
            let _ = collect_unicomp(cell.len(), &cell, &dims);
        }
    }
}
