//! The join-plan IR and its executor — one description of the paper's
//! pipeline for every join path.
//!
//! Every entry point in this workspace runs the same five conceptual
//! stages: obtain an ε-grid index, materialize a device snapshot, estimate
//! the result size, execute the batched kernels, and post-process the pair
//! stream. Before this module existed each entry point hardwired its own
//! copy of that pipeline; now they all *build* a [`JoinPlan`] and hand it
//! to [`execute`]:
//!
//! * [`crate::GpuSelfJoin`] — `Build`/`Prebuilt` index, device backend.
//! * [`crate::host_self_join`] / [`crate::host_self_join_parallel`] —
//!   `Prebuilt` index, host backend (no device stages).
//! * `sj-shard`'s `ShardedSelfJoin` — a plan *rewrite*: the partition pass
//!   turns one logical join into per-shard subplans (`Prebuilt` index,
//!   `Precomputed` estimate, an [`ExecOptions::ownership`] window so the
//!   kernels drop ghost-keyed pairs at emit time, remapped post stage),
//!   executed on the scheduled device and merged by concatenation — the
//!   ownership windows are disjoint, so no dedup pass is needed. The
//!   `PerThread` ablation path keeps the classic scoped post stage
//!   instead.
//! * [`crate::SelfJoinSession`] — `Resident` index: the session pins the
//!   dataset, caches the built [`GridIndex`] plus per-device
//!   [`DeviceGrid`] snapshots (and the hoisted [`CellMajorPlan`]), and
//!   issues plans whose query ε′ may *undershoot* the built cell width.
//!
//! ## Stage semantics
//!
//! **Index** ([`IndexStage`]): build fresh, borrow a prebuilt index, or
//! reuse a resident index + snapshot. A resident index built at ε_built
//! may serve any query radius ε′ ≤ ε_built — the one-cell adjacent shell
//! covers every radius up to the cell width, so only the distance
//! threshold changes ([`ExecOptions::query_epsilon`]). The executor
//! rejects ε′ > ε_built with [`SelfJoinError::EpsilonExceedsIndex`].
//!
//! **Estimate** ([`EstimateStage`]): run the sampling kernel, or inject a
//! prediction computed elsewhere (the shard engine estimates every shard
//! up front for its cost-based scheduler and passes the number through).
//!
//! **Execution** ([`Backend`]): a specific device, the host (sequential or
//! rayon-parallel — no device stages at all), or a [`DevicePool`], which
//! leases the least-loaded device for the duration of the run.
//!
//! **Post** ([`PostStage`]): optional ownership filter (shard-scoped joins
//! keep only owned-keyed pairs) and optional id remap (shard-local →
//! global ids) — in that order, matching the shard halo contract.

use crate::batching::{run_batched_on, BatchReport, BatchingConfig, ExecOptions};
use crate::cell_major::CellMajorPlan;
use crate::device_grid::DeviceGrid;
use crate::error::SelfJoinError;
use crate::grid::GridIndex;
use crate::host_join;
use crate::kernels::kernel_registers;
use crate::result::{remap_pairs, retain_owned_pairs, Ownership, Pair};
use sim_gpu::occupancy::KernelResources;
use sim_gpu::{occupancy, Device, DevicePool, LaunchConfig, OccupancyResult};
use sj_datasets::Dataset;
use std::time::{Duration, Instant};

/// How a plan obtains its ε-grid index.
#[derive(Clone, Copy, Debug)]
pub enum IndexStage<'a> {
    /// Build the index from the dataset at query time; its cost lands in
    /// [`JoinReport::grid_build`].
    Build {
        /// Cell width / search radius ε.
        epsilon: f64,
    },
    /// Borrow an index the caller already built (ε comes from the grid;
    /// `grid_build` is reported as zero — the build happened outside).
    Prebuilt(&'a GridIndex),
    /// Reuse an index *and* its device snapshot that are resident from an
    /// earlier query (session layer). The executor skips the upload and —
    /// when a hoisted plan is supplied — the cell-major hoisting pass;
    /// whoever established residency charged those one-time costs.
    ///
    /// Must execute on the device holding `snapshot` (sessions lease the
    /// device themselves and use [`Backend::Device`]).
    Resident {
        /// The resident host index (`snapshot` mirrors it).
        grid: &'a GridIndex,
        /// The device-resident snapshot of `grid`.
        snapshot: &'a DeviceGrid,
        /// The hoisted per-cell neighbor table cached with the snapshot
        /// (cell-major hot path; `None` forces a rebuild of the hoist).
        hoist: Option<&'a CellMajorPlan>,
    },
}

/// How a plan obtains its result-size estimate.
#[derive(Clone, Copy, Debug, Default)]
pub enum EstimateStage {
    /// Run the sampling count kernel (paper §V-A).
    #[default]
    Sample,
    /// Use a prediction computed elsewhere (directed pairs, safety factor
    /// included); the estimation kernel is skipped.
    Precomputed(u64),
}

/// Post-processing of the raw pair stream, applied in field order.
#[derive(Clone, Copy, Debug, Default)]
pub struct PostStage<'a> {
    /// Keep only pairs whose key is an owned point (`key < owned`),
    /// counting the dropped ghost-keyed pairs — the shard halo contract.
    pub scope_owned: Option<usize>,
    /// Rewrite both pair ids through this map (shard-local → global).
    pub remap: Option<&'a [u32]>,
}

/// One self-join described as data: which index, which estimate, which
/// kernels, which post-processing. Built by every public entry point and
/// run by [`execute`] — the single owner of the pipeline's control flow.
#[derive(Clone, Copy, Debug)]
pub struct JoinPlan<'a> {
    /// The dataset being joined (the index must describe exactly it).
    pub data: &'a Dataset,
    /// Index acquisition.
    pub index: IndexStage<'a>,
    /// Result-size estimation.
    pub estimate: EstimateStage,
    /// Kernel-level options (hot path, UNICOMP, query ε′). The executor
    /// owns [`ExecOptions::resident`] — it is derived from the index
    /// stage, not from what the builder set.
    pub exec: ExecOptions,
    /// Kernel launch geometry.
    pub launch: LaunchConfig,
    /// Batching-scheme tunables (§V-A).
    pub batching: BatchingConfig,
    /// Pair-stream post-processing.
    pub post: PostStage<'a>,
}

impl<'a> JoinPlan<'a> {
    /// A default-configured plan that builds its index at `epsilon`.
    pub fn build_index(data: &'a Dataset, epsilon: f64) -> Self {
        Self {
            data,
            index: IndexStage::Build { epsilon },
            estimate: EstimateStage::Sample,
            exec: ExecOptions::default(),
            launch: LaunchConfig::default(),
            batching: BatchingConfig::default(),
            post: PostStage::default(),
        }
    }

    /// A default-configured plan over a prebuilt index.
    pub fn on_grid(data: &'a Dataset, grid: &'a GridIndex) -> Self {
        Self {
            index: IndexStage::Prebuilt(grid),
            ..Self::build_index(data, grid.epsilon())
        }
    }

    /// Restricts the post stage to owned-keyed pairs (shard scoping).
    pub fn scoped(mut self, owned: usize) -> Self {
        self.post.scope_owned = Some(owned);
        self
    }

    /// Fuses an ownership window over the owned *prefix* `[0, owned)`
    /// into execution: the kernels drop non-owned-keyed pairs at emit
    /// time (one comparison before the `AppendBuffer` reservation), so
    /// the ghost pairs are never materialized and no post-pass filter is
    /// needed. The emit-filtered pair stream equals `scoped(owned)`'s
    /// pair-for-pair.
    pub fn owned_prefix(mut self, owned: usize) -> Self {
        self.exec.ownership = Some(Ownership::prefix(owned));
        self
    }

    /// Remaps result ids through `map` in the post stage.
    pub fn remapped(mut self, map: &'a [u32]) -> Self {
        self.post.remap = Some(map);
        self
    }

    /// Injects an externally computed result-size estimate.
    pub fn estimated(mut self, pairs: u64) -> Self {
        self.estimate = EstimateStage::Precomputed(pairs);
        self
    }

    /// Sets the query radius ε′ (resident-index reuse; ε′ ≤ ε_built).
    pub fn query_epsilon(mut self, epsilon: f64) -> Self {
        self.exec.query_epsilon = Some(epsilon);
        self
    }
}

/// Where a plan executes.
#[derive(Clone, Copy, Debug)]
pub enum Backend<'a> {
    /// A specific device.
    Device(&'a Device),
    /// The host CPU — no device stages run at all (no upload, estimate or
    /// batching; the report's device fields are zero).
    Host {
        /// Scan query chunks with rayon instead of sequentially.
        parallel: bool,
    },
    /// A device pool: the executor leases the least-loaded device for the
    /// duration of the run, so concurrent plans interleave across devices.
    Pool(&'a DevicePool),
}

/// Timing/shape report of one executed plan.
#[derive(Clone, Debug)]
pub struct JoinReport {
    /// Host-side grid construction time (zero for prebuilt/resident).
    pub grid_build: Duration,
    /// Wall time of the execution stage: the device pipeline (estimate +
    /// kernels + drains) or the host scan.
    pub device_pipeline: Duration,
    /// End-to-end wall time of the plan (index + execution + post).
    pub total: Duration,
    /// Modeled response time on the simulated device: host grid build +
    /// modeled estimation kernel + the pipelined (3-stream) timeline of
    /// uploads, modeled kernels and result downloads. This is the number
    /// the evaluation harness reports for GPU-SJ (see `DeviceSpec::
    /// throughput_vs_host_core` for the model constant). Host-backend
    /// plans report their real wall time here — the host *is* the device.
    pub modeled_total: Duration,
    /// Non-empty cell count `|B|`.
    pub non_empty_cells: usize,
    /// Host-side index footprint in bytes.
    pub index_bytes: usize,
    /// Theoretical occupancy of the join kernel used (all-zero with
    /// `limiter: "host"` for host-backend plans).
    pub occupancy: OccupancyResult,
    /// Batching execution details (all-zero for host-backend plans).
    pub batching: BatchReport,
}

/// Output of one executed plan: the raw (post-processed) pair stream plus
/// the report. Callers build whatever result shape they need from it —
/// [`crate::NeighborTable`] for the public joins, a merge stream for the
/// shard engine.
#[derive(Clone, Debug)]
pub struct PlanOutput {
    /// Directed result pairs after the post stage.
    pub pairs: Vec<Pair>,
    /// Ghost-keyed pairs dropped by the ownership filter (zero unless
    /// [`PostStage::scope_owned`] was set).
    pub dropped_ghost_pairs: u64,
    /// Timings and counters.
    pub report: JoinReport,
}

/// Runs a [`JoinPlan`] on a backend. The single owner of the pipeline's
/// control flow: index acquisition → (device) snapshot → estimate →
/// batched kernels → post stage.
///
/// # Panics
///
/// Panics if [`PostStage::scope_owned`] exceeds the dataset size (the
/// shard contract passes an owned *prefix*).
pub fn execute(plan: &JoinPlan<'_>, backend: Backend<'_>) -> Result<PlanOutput, SelfJoinError> {
    let t0 = Instant::now();
    let mut span = sj_obs::Span::enter("plan.execute");
    // Where this plan starts on the modeled clock (the worker seeded the
    // thread's cursor); the span is finalized with the *pipelined*
    // modeled total, snapping the cursor back from the serialized layout
    // the child device stages produce.
    let modeled_start = if span.id() != 0 {
        let c = sj_obs::trace::modeled_cursor();
        if c.is_nan() {
            0.0
        } else {
            c
        }
    } else {
        0.0
    };
    span.label("n", plan.data.len());

    // Index stage.
    let built;
    let (grid, grid_build): (&GridIndex, Duration) = match &plan.index {
        IndexStage::Build { epsilon } => {
            let tb = Instant::now();
            let mut ispan = sj_obs::Span::enter("plan.index");
            built = GridIndex::build(plan.data, *epsilon)?;
            ispan.label("cells", built.non_empty_cells());
            drop(ispan);
            (&built, tb.elapsed())
        }
        IndexStage::Prebuilt(grid) => (*grid, Duration::ZERO),
        IndexStage::Resident { grid, .. } => (*grid, Duration::ZERO),
    };
    debug_assert_eq!(grid.a().len(), plan.data.len(), "grid/data mismatch");

    // Ownership-window validation: the window addresses dataset ids.
    if let Some(o) = plan.exec.ownership {
        assert!(
            o.lo <= o.hi && o.hi as usize <= plan.data.len(),
            "ownership window [{}, {}) exceeds dataset size {}",
            o.lo,
            o.hi,
            plan.data.len()
        );
    }

    // ε′ validation: a reused index can only *shrink* the query radius.
    if let Some(eps) = plan.exec.query_epsilon {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(SelfJoinError::Grid(
                crate::error::GridBuildError::InvalidEpsilon(eps),
            ));
        }
        if eps > grid.epsilon() {
            return Err(SelfJoinError::EpsilonExceedsIndex {
                query: eps,
                built: grid.epsilon(),
            });
        }
    }

    // Execution stage.
    let (mut pairs, mut report) = match backend {
        Backend::Host { parallel } => run_host(plan, grid, grid_build, parallel),
        Backend::Device(device) => run_device(plan, device, grid, grid_build)?,
        Backend::Pool(pool) => {
            let lease = pool.lease();
            run_device(plan, lease.device(), grid, grid_build)?
        }
    };

    // Post stage: ownership filter, then remap (shard halo contract).
    let mut dropped_ghost_pairs = 0;
    let mut pspan = sj_obs::Span::enter("plan.post");
    if let Some(owned) = plan.post.scope_owned {
        assert!(
            owned <= plan.data.len(),
            "owned prefix {owned} exceeds dataset size {}",
            plan.data.len()
        );
        dropped_ghost_pairs = retain_owned_pairs(&mut pairs, owned as u32);
        pspan.label("dropped_ghosts", dropped_ghost_pairs);
    }
    if let Some(map) = plan.post.remap {
        remap_pairs(&mut pairs, map);
        pspan.label("remapped", 1u64);
    }
    drop(pspan);

    report.total = t0.elapsed();
    span.label("pairs", pairs.len());
    span.set_modeled(modeled_start, report.modeled_total.as_secs_f64());
    Ok(PlanOutput {
        pairs,
        dropped_ghost_pairs,
        report,
    })
}

/// Device pipeline: snapshot (upload or resident) → batched kernels →
/// report assembly.
fn run_device(
    plan: &JoinPlan<'_>,
    device: &Device,
    grid: &GridIndex,
    grid_build: Duration,
) -> Result<(Vec<Pair>, JoinReport), SelfJoinError> {
    let uploaded;
    let (dg, hoist, resident): (&DeviceGrid, Option<&CellMajorPlan>, bool) = match &plan.index {
        IndexStage::Resident {
            snapshot, hoist, ..
        } => (*snapshot, *hoist, true),
        _ => {
            let mut uspan = sj_obs::Span::enter("gpu.upload");
            device.fault_check(sim_gpu::FaultOp::Upload)?;
            uploaded = DeviceGrid::upload(device, plan.data, grid)?;
            if uspan.id() != 0 {
                let bytes = uploaded.h2d_bytes();
                uspan.label("bytes", bytes);
                uspan.set_modeled_dur(device.spec().transfer_model().time(bytes).as_secs_f64());
            }
            (&uploaded, None, false)
        }
    };

    let mut opts = plan.exec;
    opts.resident = resident;
    let mut batching = plan.batching;
    if let EstimateStage::Precomputed(pairs) = plan.estimate {
        batching.precomputed_estimate = Some(pairs);
    }

    let t1 = Instant::now();
    let (pairs, breport) = run_batched_on(device, dg, plan.launch, opts, &batching, hoist)?;
    let device_pipeline = t1.elapsed();

    let occupancy = occupancy(
        device.spec(),
        KernelResources {
            registers_per_thread: kernel_registers(grid.dim().max(1), opts.unicomp),
            shared_mem_per_block: 0,
        },
        plan.launch.block_threads,
    );
    // An open straggler window inflates the modeled device time — the
    // answer is exact, the device is just slow. Host-side grid build is
    // unaffected.
    let slowdown = device.slowdown();
    let device_modeled = breport.modeled_estimate_time + breport.timeline.total;
    let modeled_total = grid_build + device_modeled.mul_f64(slowdown);
    let report = JoinReport {
        grid_build,
        device_pipeline,
        total: Duration::ZERO, // finalized by `execute`
        modeled_total,
        non_empty_cells: grid.non_empty_cells(),
        index_bytes: grid.size_bytes(),
        occupancy,
        batching: breport,
    };
    Ok((pairs, report))
}

/// Host pipeline: the shared adjacent-cell scan, sequential or parallel.
fn run_host(
    plan: &JoinPlan<'_>,
    grid: &GridIndex,
    grid_build: Duration,
    parallel: bool,
) -> (Vec<Pair>, JoinReport) {
    let eps = plan.exec.query_epsilon.unwrap_or(grid.epsilon());
    // The host scan emits query-keyed pairs only, so an ownership window
    // restricts which queries are scanned — same emit-time semantics as
    // the device kernels, with the work skipped rather than filtered.
    let (off, cnt) = match plan.exec.ownership {
        Some(o) => (o.lo as usize, o.len()),
        None => (0, plan.data.len()),
    };
    let t1 = Instant::now();
    let pairs = if parallel {
        host_join::host_pairs_parallel(plan.data, grid, eps, off, cnt)
    } else {
        host_join::host_pairs_for_range_within(plan.data, grid, eps, off, cnt)
    };
    let scan = t1.elapsed();
    let report = JoinReport {
        grid_build,
        device_pipeline: scan,
        total: Duration::ZERO, // finalized by `execute`
        modeled_total: grid_build + scan,
        non_empty_cells: grid.non_empty_cells(),
        index_bytes: grid.size_bytes(),
        occupancy: OccupancyResult {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter: "host",
        },
        batching: BatchReport::host(pairs.len() as u64),
    };
    (pairs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::NeighborTable;
    use sim_gpu::DeviceSpec;
    use sj_datasets::synthetic::{clustered, uniform};

    fn table(data: &Dataset, out: &PlanOutput) -> NeighborTable {
        NeighborTable::from_pairs(data.len(), &out.pairs)
    }

    #[test]
    fn device_host_and_pool_backends_agree() {
        let data = uniform(3, 900, 91);
        let eps = 6.0;
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let pool = DevicePool::titan_x(2);
        let plan = JoinPlan::build_index(&data, eps);
        let dev = execute(&plan, Backend::Device(&device)).unwrap();
        let seq = execute(&plan, Backend::Host { parallel: false }).unwrap();
        let par = execute(&plan, Backend::Host { parallel: true }).unwrap();
        let pl = execute(&plan, Backend::Pool(&pool)).unwrap();
        assert_eq!(table(&data, &dev), table(&data, &seq));
        assert_eq!(table(&data, &dev), table(&data, &par));
        assert_eq!(table(&data, &dev), table(&data, &pl));
        assert!(dev.report.batching.batches >= 3);
        assert_eq!(seq.report.batching.batches, 0);
        assert_eq!(seq.report.occupancy.limiter, "host");
        assert!(dev.report.grid_build > Duration::ZERO);
        // The pool released its lease after the run.
        assert_eq!(pool.active_leases(), vec![0, 0]);
    }

    #[test]
    fn prebuilt_index_reports_zero_build() {
        let data = uniform(2, 600, 92);
        let grid = GridIndex::build(&data, 3.0).unwrap();
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let out = execute(&JoinPlan::on_grid(&data, &grid), Backend::Device(&device)).unwrap();
        assert_eq!(out.report.grid_build, Duration::ZERO);
        let fresh = execute(&JoinPlan::build_index(&data, 3.0), Backend::Device(&device)).unwrap();
        assert_eq!(table(&data, &out), table(&data, &fresh));
    }

    #[test]
    fn query_epsilon_shrinks_the_radius_on_every_backend() {
        let data = clustered(2, 800, 4, 1.0, 0.1, 93);
        let built = 2.0;
        let eps_q = 1.1;
        let grid = GridIndex::build(&data, built).unwrap();
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let reused = JoinPlan::on_grid(&data, &grid).query_epsilon(eps_q);
        let dev = execute(&reused, Backend::Device(&device)).unwrap();
        let host = execute(&reused, Backend::Host { parallel: true }).unwrap();
        let fresh = execute(
            &JoinPlan::build_index(&data, eps_q),
            Backend::Device(&device),
        )
        .unwrap();
        assert_eq!(table(&data, &dev), table(&data, &fresh));
        assert_eq!(table(&data, &host), table(&data, &fresh));
    }

    #[test]
    fn oversized_query_epsilon_is_rejected() {
        let data = uniform(2, 200, 94);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let plan = JoinPlan::on_grid(&data, &grid).query_epsilon(1.5);
        let err = execute(&plan, Backend::Device(&device)).unwrap_err();
        assert!(matches!(err, SelfJoinError::EpsilonExceedsIndex { .. }));
        let err = execute(&plan, Backend::Host { parallel: false }).unwrap_err();
        assert!(matches!(err, SelfJoinError::EpsilonExceedsIndex { .. }));
    }

    #[test]
    fn invalid_query_epsilon_is_rejected() {
        let data = uniform(2, 100, 95);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        let plan = JoinPlan::on_grid(&data, &grid).query_epsilon(-0.5);
        let err = execute(&plan, Backend::Host { parallel: false }).unwrap_err();
        assert!(matches!(err, SelfJoinError::Grid(_)));
    }

    #[test]
    fn scope_and_remap_post_stages_apply_in_order() {
        let data = uniform(2, 400, 96);
        let eps = 4.0;
        let owned = 250usize;
        // Identity-with-offset remap: local id i → 1000 + i.
        let map: Vec<u32> = (0..data.len() as u32).map(|i| 1000 + i).collect();
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let plan = JoinPlan::build_index(&data, eps)
            .scoped(owned)
            .remapped(&map);
        let out = execute(&plan, Backend::Device(&device)).unwrap();
        assert!(out
            .pairs
            .iter()
            .all(|p| (1000..1000 + owned as u32).contains(&p.key)));
        let full = execute(&JoinPlan::build_index(&data, eps), Backend::Device(&device)).unwrap();
        let expected_kept = full
            .pairs
            .iter()
            .filter(|p| (p.key as usize) < owned)
            .count();
        assert_eq!(out.pairs.len(), expected_kept);
        assert_eq!(
            out.dropped_ghost_pairs as usize,
            full.pairs.len() - expected_kept
        );
    }

    #[test]
    fn ownership_fused_equals_scoped_post_pass() {
        // The emit-time ownership filter must produce exactly the pairs
        // the post-pass `scoped` filter keeps — for both hot paths, with
        // and without UNICOMP, so the shard engine can swap one for the
        // other freely.
        use crate::cell_major::HotPath;
        let data = clustered(3, 500, 3, 1.0, 0.15, 98);
        let eps = 1.5;
        let owned = 320usize;
        let device = Device::new(DeviceSpec::titan_x_pascal());
        for hot_path in [HotPath::PerThread, HotPath::CellMajor] {
            for unicomp in [false, true] {
                let mut scoped = JoinPlan::build_index(&data, eps).scoped(owned);
                scoped.exec.hot_path = hot_path;
                scoped.exec.unicomp = unicomp;
                let mut fused = JoinPlan::build_index(&data, eps).owned_prefix(owned);
                fused.exec.hot_path = hot_path;
                fused.exec.unicomp = unicomp;
                let a = execute(&scoped, Backend::Device(&device)).unwrap();
                let b = execute(&fused, Backend::Device(&device)).unwrap();
                assert_eq!(
                    table(&data, &a),
                    table(&data, &b),
                    "hot_path={hot_path:?} unicomp={unicomp}"
                );
                // Fused plans never materialize a ghost-keyed pair.
                assert_eq!(b.dropped_ghost_pairs, 0);
                assert!(b.pairs.iter().all(|p| (p.key as usize) < owned));
            }
        }
    }

    #[test]
    fn ownership_fused_host_backend_scans_owned_prefix_only() {
        let data = uniform(2, 450, 99);
        let eps = 4.0;
        let owned = 300usize;
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let dev = execute(
            &JoinPlan::build_index(&data, eps).owned_prefix(owned),
            Backend::Device(&device),
        )
        .unwrap();
        for parallel in [false, true] {
            let host = execute(
                &JoinPlan::build_index(&data, eps).owned_prefix(owned),
                Backend::Host { parallel },
            )
            .unwrap();
            assert_eq!(
                table(&data, &host),
                table(&data, &dev),
                "parallel={parallel}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ownership window")]
    fn oversized_ownership_window_panics() {
        let data = uniform(2, 50, 100);
        let plan = JoinPlan::build_index(&data, 3.0).owned_prefix(51);
        let _ = execute(&plan, Backend::Host { parallel: false });
    }

    #[test]
    fn precomputed_estimate_skips_the_sampling_kernel() {
        let data = uniform(2, 1000, 97);
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let plan = JoinPlan::build_index(&data, 3.0).estimated(50_000);
        let out = execute(&plan, Backend::Device(&device)).unwrap();
        assert_eq!(out.report.batching.estimated_pairs, 50_000);
        assert_eq!(out.report.batching.estimate_time, Duration::ZERO);
    }

    #[test]
    fn empty_dataset_runs_on_all_backends() {
        let data = Dataset::new(3);
        let device = Device::new(DeviceSpec::titan_x_pascal());
        let plan = JoinPlan::build_index(&data, 1.0);
        for out in [
            execute(&plan, Backend::Device(&device)).unwrap(),
            execute(&plan, Backend::Host { parallel: false }).unwrap(),
            execute(&plan, Backend::Host { parallel: true }).unwrap(),
        ] {
            assert!(out.pairs.is_empty());
        }
    }
}
