//! The ε-grid index (paper §IV-B..D).
//!
//! Space is overlaid with a virtual grid of cells of side length ε,
//! covering `[min_j − ε, max_j + ε]` in every dimension `j`. Only
//! **non-empty** cells are materialized; the index is four arrays:
//!
//! * `B` — sorted linearized ids of the non-empty cells. Existence of a
//!   neighbour cell is decided by binary-searching `B` (paper Fig. 2a).
//! * `G` — for each entry of `B`, the range `[Amin, Amax)` of `A` holding
//!   the cell's points (`|G| = |B|`).
//! * `A` — point ids grouped by cell (`|A| = |D|`).
//! * `M_j` — per-dimension sorted list of cell coordinates that contain at
//!   least one non-empty cell; adjacent-cell ranges are clipped against it
//!   before any binary search of `B` (the paper's masking array).
//!
//! Total space is `O(|B| + |G| + |A|) = O(|D|)` regardless of how sparse
//! the virtual grid is — the property that makes the structure viable in
//! 6-D where materializing `∏|g_j|` cells would be intractable.

use crate::error::GridBuildError;
use crate::linearize::{linearize, total_cells, MAX_DIM};
use rayon::prelude::*;
use sj_datasets::Dataset;

/// Range of `A` belonging to one non-empty cell: `[begin, end)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellRange {
    /// First index into `A`.
    pub begin: u32,
    /// One past the last index into `A`.
    pub end: u32,
}

impl CellRange {
    /// Number of points in the cell.
    pub fn len(&self) -> usize {
        (self.end - self.begin) as usize
    }

    /// Whether the range is empty (never true for materialized cells).
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}

/// The host-side ε-grid index over a dataset.
///
/// # The reordered-snapshot invariant (cell-major layout)
///
/// Besides the paper's four arrays, the index materializes a **cell-major
/// coordinate snapshot**: `reordered_coords()` holds every point's
/// coordinates permuted into `A`-order, so that *slot* `s` (a position in
/// `A`) stores point `A[s]`'s coordinates at
/// `reordered_coords()[s * dim .. (s + 1) * dim]`. A cell's points are
/// therefore one contiguous `dim`-strided scan — no `data[A[s]]` gather —
/// and `A` doubles as the **id remap**: kernels that traverse slots emit
/// original point ids by reading `A[s]`. The snapshot is immutable after
/// `build` and always consistent with `A`/`G` (the cell-major kernels and
/// their exact-equality tests rely on this contract).
#[derive(Clone, Debug)]
pub struct GridIndex {
    dim: usize,
    epsilon: f64,
    /// `gmin_j`: grid origin per dimension (dataset min − ε).
    gmin: Vec<f64>,
    /// `|g_j|`: cell count per dimension.
    cells_per_dim: Vec<u64>,
    /// Sorted linear ids of non-empty cells.
    b: Vec<u64>,
    /// Point ranges per non-empty cell, aligned with `b`.
    g: Vec<CellRange>,
    /// Point ids grouped by cell.
    a: Vec<u32>,
    /// Per-dimension sorted non-empty cell coordinates (mask arrays).
    m: Vec<Vec<u32>>,
    /// Cell-major coordinate snapshot: point `a[s]`'s coordinates live at
    /// `reordered[s * dim .. (s + 1) * dim]` (see struct docs).
    reordered: Vec<f64>,
}

impl GridIndex {
    /// Builds the index for `data` at search radius `epsilon`.
    pub fn build(data: &Dataset, epsilon: f64) -> Result<Self, GridBuildError> {
        let dim = data.dim();
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(GridBuildError::InvalidEpsilon(epsilon));
        }
        if dim > MAX_DIM {
            return Err(GridBuildError::TooManyDimensions { dim, max: MAX_DIM });
        }
        if data.is_empty() {
            return Ok(Self {
                dim,
                epsilon,
                gmin: vec![0.0; dim],
                cells_per_dim: vec![1; dim],
                b: Vec::new(),
                g: Vec::new(),
                a: Vec::new(),
                m: vec![Vec::new(); dim],
                reordered: Vec::new(),
            });
        }
        if data.len() > u32::MAX as usize {
            return Err(GridBuildError::TooManyPoints(data.len()));
        }
        // Reject non-finite coordinates up front: NaN would poison the
        // min/max fold and the floor-based cell mapping silently.
        for (i, p) in data.iter().enumerate() {
            for (j, &x) in p.iter().enumerate() {
                if !x.is_finite() {
                    return Err(GridBuildError::NonFiniteCoordinate { point: i, dim: j });
                }
            }
        }
        let mins = data.min_per_dim().expect("non-empty");
        let maxs = data.max_per_dim().expect("non-empty");

        // Extend the range by ε on both sides so adjacent-cell lookups of
        // boundary points never leave the grid (paper §IV-B).
        let gmin: Vec<f64> = mins.iter().map(|&m| m - epsilon).collect();
        let mut cells_per_dim = Vec::with_capacity(dim);
        for j in 0..dim {
            let span = (maxs[j] + epsilon) - gmin[j];
            let cells = (span / epsilon).floor() as u64 + 1;
            cells_per_dim.push(cells);
        }
        if total_cells(&cells_per_dim).is_none() {
            return Err(GridBuildError::CellSpaceOverflow {
                cells_per_dim: cells_per_dim.clone(),
            });
        }

        // Assign each point its cell's linear id.
        let n = data.len();
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(n);
        let mut coords_buf = [0u32; MAX_DIM];
        for (i, p) in data.iter().enumerate() {
            let c = &mut coords_buf[..dim];
            cell_coords(p, &gmin, epsilon, &cells_per_dim, c);
            keyed.push((linearize(c, &cells_per_dim), i as u32));
        }
        // Grouping sort: the dominant build cost; parallel and stable
        // output (ids are unique, so unstable parallel sort is
        // deterministic here).
        keyed.par_sort_unstable();

        // Cell-major snapshot: coordinates permuted into A-order so each
        // cell's points are contiguous (see struct docs).
        let mut reordered = Vec::with_capacity(n * dim);
        for &(_, pid) in &keyed {
            reordered.extend_from_slice(data.point(pid as usize));
        }

        // Group into the B/G/A arrays.
        let mut b = Vec::new();
        let mut g: Vec<CellRange> = Vec::new();
        let mut a = Vec::with_capacity(n);
        for (idx, &(cell, pid)) in keyed.iter().enumerate() {
            if b.last() != Some(&cell) {
                if let Some(last) = g.last_mut() {
                    last.end = idx as u32;
                }
                b.push(cell);
                g.push(CellRange {
                    begin: idx as u32,
                    end: idx as u32,
                });
            }
            a.push(pid);
        }
        if let Some(last) = g.last_mut() {
            last.end = n as u32;
        }

        // Mask arrays: per-dimension sorted unique coordinates of
        // non-empty cells.
        let mut m: Vec<Vec<u32>> = vec![Vec::new(); dim];
        let mut cbuf = [0u32; MAX_DIM];
        for &cell in &b {
            crate::linearize::delinearize(cell, &cells_per_dim, &mut cbuf[..dim]);
            for j in 0..dim {
                m[j].push(cbuf[j]);
            }
        }
        for mj in &mut m {
            mj.sort_unstable();
            mj.dedup();
        }

        Ok(Self {
            dim,
            epsilon,
            gmin,
            cells_per_dim,
            b,
            g,
            a,
            m,
            reordered,
        })
    }

    /// Dimensionality of the indexed data.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The cell side length (= the search radius ε).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Grid origin per dimension.
    pub fn gmin(&self) -> &[f64] {
        &self.gmin
    }

    /// Cell count `|g_j|` per dimension.
    pub fn cells_per_dim(&self) -> &[u64] {
        &self.cells_per_dim
    }

    /// The sorted non-empty-cell id array `B`.
    pub fn b(&self) -> &[u64] {
        &self.b
    }

    /// The per-cell point ranges `G`.
    pub fn g(&self) -> &[CellRange] {
        &self.g
    }

    /// The grouped point-id array `A`.
    pub fn a(&self) -> &[u32] {
        &self.a
    }

    /// The mask array `M_j` for dimension `j`.
    pub fn m(&self, j: usize) -> &[u32] {
        &self.m[j]
    }

    /// The cell-major coordinate snapshot: slot `s` of `A` has its point's
    /// coordinates at `[s * dim, (s + 1) * dim)`. See the struct docs for
    /// the invariant and the id-remap contract (`A` maps slot → original
    /// id).
    pub fn reordered_coords(&self) -> &[f64] {
        &self.reordered
    }

    /// Number of non-empty cells `|G| = |B|`.
    pub fn non_empty_cells(&self) -> usize {
        self.b.len()
    }

    /// Index size in bytes (B + G + A + M plus the cell-major coordinate
    /// snapshot), the quantity the paper argues stays `O(|D|)` — the
    /// snapshot adds `8 · dim` bytes per point but no dependence on the
    /// virtual cell count.
    pub fn size_bytes(&self) -> usize {
        self.b.len() * 8
            + self.g.len() * 8
            + self.a.len() * 4
            + self.m.iter().map(|mj| mj.len() * 4).sum::<usize>()
            + self.reordered.len() * 8
    }

    /// Computes the cell coordinates of a point.
    pub fn cell_of(&self, p: &[f64], out: &mut [u32]) {
        cell_coords(p, &self.gmin, self.epsilon, &self.cells_per_dim, out);
    }

    /// Binary-searches `B` for a linear cell id; returns the index into
    /// `G` when the cell exists.
    #[inline]
    pub fn find_cell(&self, linear_id: u64) -> Option<usize> {
        self.b.binary_search(&linear_id).ok()
    }

    /// The points of the cell at position `h` in `B`/`G`.
    pub fn cell_points(&self, h: usize) -> &[u32] {
        let r = self.g[h];
        &self.a[r.begin as usize..r.end as usize]
    }

    /// Clips the adjacent-cell range `[lo, hi]` in dimension `j` against
    /// the mask `M_j` (the paper's `O_j ∩ M_j`). Returns `None` when no
    /// non-empty coordinate falls inside.
    #[inline]
    pub fn mask_range(&self, j: usize, lo: u32, hi: u32) -> Option<(u32, u32)> {
        mask_range(&self.m[j], lo, hi)
    }
}

/// Computes cell coordinates for a point given grid geometry. Coordinates
/// are clamped to the grid (the ±ε padding guarantees interior placement
/// for all indexed points; clamping only guards against float edge cases).
#[inline]
pub fn cell_coords(p: &[f64], gmin: &[f64], epsilon: f64, cells_per_dim: &[u64], out: &mut [u32]) {
    for j in 0..p.len() {
        let c = ((p[j] - gmin[j]) / epsilon).floor();
        let c = if c < 0.0 { 0 } else { c as u64 };
        out[j] = c.min(cells_per_dim[j] - 1) as u32;
    }
}

/// Standalone mask clip used by both host and kernel code paths.
#[inline]
pub fn mask_range(mask: &[u32], lo: u32, hi: u32) -> Option<(u32, u32)> {
    // Smallest masked coord ≥ lo.
    let start = mask.partition_point(|&c| c < lo);
    if start == mask.len() || mask[start] > hi {
        return None;
    }
    // Largest masked coord ≤ hi.
    let end = mask.partition_point(|&c| c <= hi);
    Some((mask[start], mask[end - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::{lattice, uniform};

    #[test]
    fn build_on_empty_dataset() {
        let g = GridIndex::build(&Dataset::new(3), 1.0).unwrap();
        assert_eq!(g.non_empty_cells(), 0);
        assert_eq!(g.a().len(), 0);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let d = uniform(2, 10, 0);
        assert!(matches!(
            GridIndex::build(&d, 0.0),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            GridIndex::build(&d, f64::NAN),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            GridIndex::build(&d, -1.0),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn every_point_appears_exactly_once_in_a() {
        let d = uniform(3, 2000, 5);
        let g = GridIndex::build(&d, 5.0).unwrap();
        let mut ids: Vec<u32> = g.a().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..2000u32).collect::<Vec<_>>());
    }

    #[test]
    fn g_ranges_partition_a() {
        let d = uniform(2, 1000, 6);
        let g = GridIndex::build(&d, 2.0).unwrap();
        let mut cursor = 0u32;
        for r in g.g() {
            assert_eq!(r.begin, cursor, "ranges must tile A contiguously");
            assert!(r.end > r.begin, "materialized cells are non-empty");
            cursor = r.end;
        }
        assert_eq!(cursor as usize, g.a().len());
    }

    #[test]
    fn b_is_sorted_and_unique() {
        let d = uniform(4, 3000, 7);
        let g = GridIndex::build(&d, 10.0).unwrap();
        assert!(g.b().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.b().len(), g.g().len());
    }

    #[test]
    fn points_fall_in_their_assigned_cell() {
        let d = uniform(3, 500, 8);
        let g = GridIndex::build(&d, 3.0).unwrap();
        let mut coords = [0u32; MAX_DIM];
        for (h, &cell_id) in g.b().iter().enumerate() {
            for &pid in g.cell_points(h) {
                g.cell_of(d.point(pid as usize), &mut coords[..3]);
                assert_eq!(
                    linearize(&coords[..3], g.cells_per_dim()),
                    cell_id,
                    "point {pid} stored in wrong cell"
                );
            }
        }
    }

    #[test]
    fn lattice_points_one_per_cell() {
        // Points spaced 2.0 apart with ε = 1.0 land in distinct cells.
        let d = lattice(2, 4, 2.0);
        let g = GridIndex::build(&d, 1.0).unwrap();
        assert_eq!(g.non_empty_cells(), 16);
        for r in g.g() {
            assert_eq!(r.len(), 1);
        }
    }

    #[test]
    fn dense_cluster_single_cell() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(&[5.0 + i as f64 * 0.01, 5.0]);
        }
        let g = GridIndex::build(&d, 1.0).unwrap();
        assert_eq!(g.non_empty_cells(), 1);
        assert_eq!(g.g()[0].len(), 10);
    }

    #[test]
    fn mask_arrays_cover_cell_coords() {
        let d = uniform(3, 400, 9);
        let g = GridIndex::build(&d, 8.0).unwrap();
        let mut cbuf = [0u32; MAX_DIM];
        for &cell in g.b() {
            crate::linearize::delinearize(cell, g.cells_per_dim(), &mut cbuf[..3]);
            for (j, &c) in cbuf[..3].iter().enumerate() {
                assert!(g.m(j).binary_search(&c).is_ok());
            }
        }
        for j in 0..3 {
            assert!(g.m(j).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn mask_range_clips() {
        let mask = vec![1u32, 2, 5, 9];
        assert_eq!(mask_range(&mask, 0, 3), Some((1, 2)));
        assert_eq!(mask_range(&mask, 3, 4), None);
        assert_eq!(mask_range(&mask, 2, 9), Some((2, 9)));
        assert_eq!(mask_range(&mask, 10, 20), None);
        assert_eq!(mask_range(&mask, 0, 0), None);
        assert_eq!(mask_range(&mask, 9, 9), Some((9, 9)));
        assert_eq!(mask_range(&[], 0, 10), None);
    }

    #[test]
    fn find_cell_hits_and_misses() {
        let d = lattice(2, 3, 2.0);
        let g = GridIndex::build(&d, 1.0).unwrap();
        for &cell in g.b() {
            assert!(g.find_cell(cell).is_some());
        }
        let max_id = *g.b().last().unwrap();
        assert!(g.find_cell(max_id + 1_000_000).is_none());
    }

    #[test]
    fn reordered_snapshot_matches_a_order() {
        // The invariant the cell-major kernels rely on: slot s of A holds
        // point a[s], and its coordinates are at reordered[s*dim..].
        for dim in [2usize, 3, 6] {
            let d = uniform(dim, 700, 77);
            let g = GridIndex::build(&d, 12.0 * dim as f64).unwrap();
            let r = g.reordered_coords();
            assert_eq!(r.len(), d.len() * dim);
            for (s, &pid) in g.a().iter().enumerate() {
                assert_eq!(
                    &r[s * dim..(s + 1) * dim],
                    d.point(pid as usize),
                    "slot {s} (dim {dim})"
                );
            }
        }
        let empty = GridIndex::build(&Dataset::new(3), 1.0).unwrap();
        assert!(empty.reordered_coords().is_empty());
    }

    #[test]
    fn size_is_linear_in_points() {
        // Index size must not blow up with dimension (only with |D|).
        let d2 = uniform(2, 4000, 1);
        let d6 = uniform(6, 4000, 1);
        let g2 = GridIndex::build(&d2, 1.0).unwrap();
        let g6 = GridIndex::build(&d6, 20.0).unwrap();
        // Both are O(|D|): within a small constant factor of each other.
        assert!(g6.size_bytes() < 4 * g2.size_bytes());
    }

    #[test]
    fn boundary_points_have_interior_cells() {
        // Points at the exact data min/max must not land in the outermost
        // (padding) cell layer.
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0]);
        d.push(&[10.0, 10.0]);
        let g = GridIndex::build(&d, 1.0).unwrap();
        let mut c = [0u32; MAX_DIM];
        g.cell_of(&[0.0, 0.0], &mut c[..2]);
        assert!(c[0] >= 1 && c[1] >= 1, "min point in padding layer: {c:?}");
        g.cell_of(&[10.0, 10.0], &mut c[..2]);
        assert!(
            (c[0] as u64) < g.cells_per_dim()[0] - 1,
            "max point in padding layer"
        );
    }

    #[test]
    fn non_finite_coordinates_rejected() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 2.0]);
        d.push(&[f64::NAN, 0.0]);
        assert!(matches!(
            GridIndex::build(&d, 1.0),
            Err(GridBuildError::NonFiniteCoordinate { point: 1, dim: 0 })
        ));
        let mut d = Dataset::new(2);
        d.push(&[1.0, f64::INFINITY]);
        assert!(matches!(
            GridIndex::build(&d, 1.0),
            Err(GridBuildError::NonFiniteCoordinate { point: 0, dim: 1 })
        ));
    }

    #[test]
    fn too_many_dimensions_rejected() {
        let d = uniform(MAX_DIM + 1, 10, 0);
        assert!(matches!(
            GridIndex::build(&d, 1.0),
            Err(GridBuildError::TooManyDimensions { .. })
        ));
    }
}
