//! Dataset-resident query sessions: build the index once, serve many
//! queries.
//!
//! The paper amortizes *transfers* across batches (§V-A); a serving
//! deployment must also amortize the *index*. Every [`crate::GpuSelfJoin`]
//! call rebuilds the ε-coupled grid and re-uploads the device snapshot —
//! fine for a one-shot figure, fatal for sustained query traffic where
//! the same dataset answers query after query. [`SelfJoinSession`] pins a
//! dataset and keeps three things resident across queries:
//!
//! 1. the built [`GridIndex`] (host),
//! 2. one [`DeviceGrid`] snapshot per pool device it has touched, and
//! 3. the hoisted [`CellMajorPlan`] cached alongside each snapshot (the
//!    per-cell neighbor CSR is ε′-independent, so one hoist serves every
//!    in-band query).
//!
//! ## The validity band
//!
//! A grid built at ε_built serves any query radius ε′ ≤ ε_built exactly:
//! the one-cell adjacent shell covers every radius up to the cell width,
//! and only the kernels' distance threshold changes
//! ([`ExecOptions::query_epsilon`]). Serving ε′ ≪ ε_built is *correct*
//! but wasteful — candidate cells grow as `(ε_built/ε′)ᵈ` relative to a
//! right-sized grid — so the session rebuilds once ε′ falls below
//! `reuse_floor · ε_built` (default 0.5). Queries above ε_built always
//! rebuild (the shell would miss neighbours). Together:
//!
//! ```text
//! reuse  ⇔  reuse_floor · ε_built ≤ ε′ ≤ ε_built
//! ```
//!
//! ## Concurrency
//!
//! Sessions are `Send + Sync`; queries take `&self`. Each query leases
//! the least-loaded pool device ([`DevicePool::lease`]) so concurrent
//! sessions — or concurrent queries on one session — spread across
//! devices. Result correctness is untouched by interleaving: every query
//! runs against an immutable `Arc`'d index generation, and a concurrent
//! rebuild simply installs a new generation while in-flight queries
//! finish on the old one (device memory is freed when the last query
//! drops its `Arc`).

use crate::batching::ExecOptions;
use crate::cell_major::{CellMajorPlan, HotPath};
use crate::device_grid::DeviceGrid;
use crate::error::SelfJoinError;
use crate::grid::GridIndex;
use crate::knn::{gpu_knn_on, KnnHit};
use crate::plan::{execute, Backend, EstimateStage, IndexStage, JoinPlan, JoinReport, PostStage};
use crate::result::NeighborTable;
use crate::selfjoin::SelfJoinConfig;
use parking_lot::Mutex;
use sim_gpu::{Device, DevicePool};
use sj_datasets::Dataset;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a resident session.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Per-query join configuration (hot path, UNICOMP, launch geometry,
    /// batching tunables).
    pub join: SelfJoinConfig,
    /// Lower edge of the validity band as a fraction of ε_built: a
    /// resident index is reused while
    /// `reuse_floor · ε_built ≤ ε′ ≤ ε_built`. Must lie in `(0, 1]`;
    /// `1.0` disables reuse for any ε′ ≠ ε_built.
    pub reuse_floor: f64,
    /// Headroom factor applied when (re)building: the index is built at
    /// `ε · build_headroom` (≥ 1), so an ε-sweep ascending toward the
    /// headroom ceiling keeps hitting the band instead of rebuilding
    /// every step. Default 1.0 (build exactly at the queried ε).
    pub build_headroom: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            join: SelfJoinConfig::default(),
            reuse_floor: 0.5,
            build_headroom: 1.0,
        }
    }
}

/// Cumulative counters of one session (all queries since creation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Self-join queries served.
    pub queries: u64,
    /// kNN queries served.
    pub knn_queries: u64,
    /// Queries that reused the resident index.
    pub index_reuses: u64,
    /// Queries whose result-size estimate came from the exact count of an
    /// earlier same-ε query (the sampling kernel was skipped).
    pub estimate_hits: u64,
    /// Index (re)builds — the first query plus every out-of-band ε.
    pub index_builds: u64,
    /// Device snapshot uploads (once per device per index generation).
    pub snapshot_uploads: u64,
}

/// One device's resident copy of the current index generation.
struct DeviceSnapshot {
    dg: DeviceGrid,
    /// Hoisted cell-major plan (when the session runs that hot path).
    hoist: Option<CellMajorPlan>,
    /// Modeled one-time cost of establishing this residency: snapshot
    /// upload + hoisting kernels + CSR transfer. Charged to the first
    /// query that touches the device, then amortized away.
    upload_modeled: Duration,
}

/// One index generation: the host grid plus per-device snapshots.
struct Resident {
    grid: Arc<GridIndex>,
    /// Device index → snapshot, populated lazily on first touch.
    snapshots: Mutex<HashMap<usize, Arc<DeviceSnapshot>>>,
    /// ε′ bits → exact directed pair count of an already-served query.
    /// Query streams repeat ε values; a hit replaces the sampling
    /// estimate kernel with the exact count from the previous answer
    /// (invalidated with the generation — a rebuild changes the grid, not
    /// the answer, but the cache rides the generation's lifetime anyway).
    estimates: Mutex<HashMap<u64, u64>>,
}

struct SessionState {
    resident: Option<Arc<Resident>>,
    stats: SessionStats,
}

/// Output of one session self-join query.
#[derive(Clone, Debug)]
pub struct SessionQueryOutput {
    /// Directed, self-excluded neighbour lists at the queried ε′.
    pub table: NeighborTable,
    /// Timings and counters. `grid_build` and `modeled_total` include the
    /// session-level index build / first-touch upload when this query
    /// paid them; on reuse both shrink to the pure query cost — the
    /// amortization the `query_throughput` bench measures.
    pub report: JoinReport,
    /// Whether the resident index served this query (false = rebuilt).
    pub reused_index: bool,
    /// Pool device that executed the query.
    pub device: usize,
}

/// Output of one session kNN query.
#[derive(Clone, Debug)]
pub struct SessionKnnOutput {
    /// Per-query hits, each sorted by distance (ties by id).
    pub hits: Vec<Vec<KnnHit>>,
    /// Whether the resident index served this query (false = rebuilt).
    pub reused_index: bool,
    /// Pool device that executed the query.
    pub device: usize,
}

/// A dataset-resident self-join/kNN session over a device pool.
///
/// See the [module docs](self) for the residency and validity-band
/// semantics. Dropping the session releases every resident snapshot
/// (device memory returns to the pool).
pub struct SelfJoinSession {
    data: Dataset,
    pool: DevicePool,
    config: SessionConfig,
    state: Mutex<SessionState>,
}

impl SelfJoinSession {
    /// Pins `data` to a session over `pool` with default configuration.
    pub fn new(data: Dataset, pool: DevicePool) -> Self {
        Self {
            data,
            pool,
            config: SessionConfig::default(),
            state: Mutex::new(SessionState {
                resident: None,
                stats: SessionStats::default(),
            }),
        }
    }

    /// A session over a single simulated TITAN X.
    pub fn single_device(data: Dataset) -> Self {
        Self::new(data, DevicePool::titan_x(1))
    }

    /// Overrides the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `reuse_floor` is outside `(0, 1]` or `build_headroom`
    /// is below 1.
    pub fn with_config(mut self, config: SessionConfig) -> Self {
        assert!(
            config.reuse_floor > 0.0 && config.reuse_floor <= 1.0,
            "reuse_floor must be in (0, 1], got {}",
            config.reuse_floor
        );
        assert!(
            config.build_headroom >= 1.0,
            "build_headroom must be >= 1, got {}",
            config.build_headroom
        );
        self.config = config;
        self
    }

    /// The pinned dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The device pool queries lease from.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SessionStats {
        self.state.lock().stats
    }

    /// The ε the resident index was built with, if one is resident.
    pub fn epsilon_built(&self) -> Option<f64> {
        self.state
            .lock()
            .resident
            .as_ref()
            .map(|r| r.grid.epsilon())
    }

    /// Whether a query at `epsilon` would reuse the resident index (the
    /// validity-band predicate; false when nothing is resident).
    pub fn would_reuse(&self, epsilon: f64) -> bool {
        self.epsilon_built()
            .is_some_and(|built| in_band(built, epsilon, self.config.reuse_floor))
    }

    /// Drops the resident index and every device snapshot. The next query
    /// rebuilds. In-flight queries finish on the old generation.
    pub fn evict(&self) {
        self.state.lock().resident = None;
    }

    /// Serves one self-join query at radius `epsilon`: all ordered pairs
    /// `(p, q)`, `p ≠ q`, with `dist(p, q) ≤ epsilon` — pair-for-pair
    /// identical to a fresh [`crate::GpuSelfJoin::run`] at the same ε,
    /// whether the resident index was reused or rebuilt.
    pub fn query(&self, epsilon: f64) -> Result<SessionQueryOutput, SelfJoinError> {
        let (resident, reused, build_wall) = self.resident_for(epsilon)?;
        let lease = self.pool.lease();
        let t_touch = Instant::now();
        let (snap, first_touch) = self.snapshot_on(&resident, lease.device(), lease.index())?;
        let touch_wall = t_touch.elapsed();

        // Repeat-ε queries inject the exact pair count of the earlier
        // answer (scaled by the safety factor for batch-buffer headroom)
        // instead of re-running the sampling kernel.
        let cached_count = resident.estimates.lock().get(&epsilon.to_bits()).copied();
        let estimate = match cached_count {
            Some(pairs) => EstimateStage::Precomputed(
                ((pairs as f64) * self.config.join.batching.safety_factor).ceil() as u64,
            ),
            None => EstimateStage::Sample,
        };
        let plan = JoinPlan {
            data: &self.data,
            index: IndexStage::Resident {
                grid: &resident.grid,
                snapshot: &snap.dg,
                hoist: snap.hoist.as_ref(),
            },
            estimate,
            exec: ExecOptions {
                query_epsilon: Some(epsilon),
                ..self.config.join.exec_options()
            },
            launch: self.config.join.launch,
            batching: self.config.join.batching,
            post: PostStage::default(),
        };
        let mut out = execute(&plan, Backend::Device(lease.device()))?;

        // Fold the session-level one-time costs into this query's report:
        // the executor saw a resident index, so it charged neither the
        // build nor the upload — whichever of those this query actually
        // triggered belongs to it.
        out.report.grid_build = build_wall;
        out.report.total += build_wall;
        out.report.modeled_total += build_wall;
        if first_touch {
            out.report.total += touch_wall;
            out.report.modeled_total += snap.upload_modeled;
        }
        resident
            .estimates
            .lock()
            .insert(epsilon.to_bits(), out.report.batching.actual_pairs);

        {
            let mut state = self.state.lock();
            state.stats.queries += 1;
            if cached_count.is_some() {
                state.stats.estimate_hits += 1;
            }
        }
        Ok(SessionQueryOutput {
            table: NeighborTable::from_pairs(self.data.len(), &out.pairs),
            report: out.report,
            reused_index: reused,
            device: lease.index(),
        })
    }

    /// Serves one kNN query (`k` nearest neighbours of every point)
    /// through the resident index, skipping the grid build and upload
    /// that a fresh [`crate::gpu_knn`] would pay.
    ///
    /// Unlike self-joins, kNN is **exact on any cell width** — the ring
    /// search expands until the k-th best distance is covered, so the
    /// validity band does not apply: whatever generation is resident
    /// serves the query (no rebuild thrash when kNN hints interleave
    /// with out-of-band join ε values). `epsilon` is only the cell-width
    /// hint used when nothing is resident yet.
    pub fn knn(&self, epsilon: f64, k: usize) -> Result<SessionKnnOutput, SelfJoinError> {
        // The lock guard must drop before resident_for re-locks.
        let existing = self.state.lock().resident.as_ref().map(Arc::clone);
        let (resident, reused) = match existing {
            Some(resident) => (resident, true),
            None => {
                let (resident, _, _) = self.resident_for(epsilon)?;
                (resident, false)
            }
        };
        let lease = self.pool.lease();
        let (snap, _first_touch) = self.snapshot_on(&resident, lease.device(), lease.index())?;
        let hits = gpu_knn_on(lease.device(), &snap.dg, k)?;
        self.state.lock().stats.knn_queries += 1;
        Ok(SessionKnnOutput {
            hits,
            reused_index: reused,
            device: lease.index(),
        })
    }

    /// Returns the index generation serving `epsilon`, building a new one
    /// when ε is outside the resident band. Returns `(generation,
    /// reused, build_wall)`.
    fn resident_for(&self, epsilon: f64) -> Result<(Arc<Resident>, bool, Duration), SelfJoinError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(SelfJoinError::Grid(
                crate::error::GridBuildError::InvalidEpsilon(epsilon),
            ));
        }
        {
            let mut state = self.state.lock();
            let reusable = state.resident.as_ref().is_some_and(|resident| {
                in_band(resident.grid.epsilon(), epsilon, self.config.reuse_floor)
            });
            if reusable {
                state.stats.index_reuses += 1;
                let resident = state.resident.as_ref().expect("checked above");
                return Ok((Arc::clone(resident), true, Duration::ZERO));
            }
        }
        // Build outside the state lock: a concurrent in-band query keeps
        // serving the old generation meanwhile. Racing rebuilds are
        // correct (each query uses the generation it built; last install
        // wins) — just wasted work in a pathological interleaving.
        let t0 = Instant::now();
        let grid = GridIndex::build(&self.data, epsilon * self.config.build_headroom)?;
        let build_wall = t0.elapsed();
        let resident = Arc::new(Resident {
            grid: Arc::new(grid),
            snapshots: Mutex::new(HashMap::new()),
            estimates: Mutex::new(HashMap::new()),
        });
        let mut state = self.state.lock();
        state.stats.index_builds += 1;
        state.resident = Some(Arc::clone(&resident));
        Ok((resident, false, build_wall))
    }

    /// Returns `device`'s snapshot of this generation, uploading (and
    /// hoisting, on the cell-major path) on first touch. Returns
    /// `(snapshot, first_touch)`.
    fn snapshot_on(
        &self,
        resident: &Resident,
        device: &Device,
        device_index: usize,
    ) -> Result<(Arc<DeviceSnapshot>, bool), SelfJoinError> {
        if let Some(snap) = resident.snapshots.lock().get(&device_index) {
            return Ok((Arc::clone(snap), false));
        }
        // Upload and hoist OUTSIDE the map lock: a first touch on one
        // device must not stall concurrent queries on devices whose
        // snapshot is already cached (or is being built in parallel). Two
        // racing first touches both upload; the loser's copy is dropped
        // below and its device memory freed — wasted work only in a
        // pathological interleaving, never a stall.
        let dg = DeviceGrid::upload(device, &self.data, &resident.grid)?;
        let tm = device.spec().transfer_model();
        let mut upload_modeled = tm.time(dg.h2d_bytes());
        let hoist = match self.config.join.hot_path {
            HotPath::CellMajor => {
                let (plan, stats) = CellMajorPlan::build(
                    device,
                    &dg,
                    self.config.join.unicomp,
                    self.config.join.launch,
                )?;
                upload_modeled += stats.modeled + tm.time(stats.h2d_bytes + stats.d2h_bytes);
                Some(plan)
            }
            HotPath::PerThread => None,
        };
        let snap = Arc::new(DeviceSnapshot {
            dg,
            hoist,
            upload_modeled,
        });
        {
            let mut snapshots = resident.snapshots.lock();
            if let Some(existing) = snapshots.get(&device_index) {
                // Lost a first-touch race; serve the winner's snapshot.
                return Ok((Arc::clone(existing), false));
            }
            snapshots.insert(device_index, Arc::clone(&snap));
        }
        self.state.lock().stats.snapshot_uploads += 1;
        Ok((snap, true))
    }
}

impl std::fmt::Debug for SelfJoinSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfJoinSession")
            .field("points", &self.data.len())
            .field("dim", &self.data.dim())
            .field("devices", &self.pool.len())
            .field("epsilon_built", &self.epsilon_built())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The validity-band predicate (see the module docs).
fn in_band(built: f64, query: f64, reuse_floor: f64) -> bool {
    query <= built && query >= built * reuse_floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfjoin::GpuSelfJoin;
    use sj_datasets::synthetic::{clustered, uniform};

    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SelfJoinSession>()
    };

    #[test]
    fn first_query_builds_then_reuses_in_band() {
        let data = uniform(2, 1200, 71);
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        let eps = 3.0;
        let first = session.query(eps).unwrap();
        assert!(!first.reused_index);
        assert!(first.report.grid_build > Duration::ZERO);
        let second = session.query(eps).unwrap();
        assert!(second.reused_index);
        assert_eq!(second.report.grid_build, Duration::ZERO);
        assert_eq!(first.table, second.table);
        // Reuse is strictly cheaper on the modeled clock: no build, no
        // upload, no hoist.
        assert!(second.report.modeled_total < first.report.modeled_total);
        let stats = session.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_reuses, 1);
        assert_eq!(stats.snapshot_uploads, 1);
    }

    #[test]
    fn in_band_shrunk_epsilon_matches_fresh_join() {
        let data = clustered(2, 1000, 4, 1.0, 0.1, 72);
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        let built = 2.0;
        session.query(built).unwrap();
        for frac in [0.5, 0.7, 0.95] {
            let eps_q = built * frac;
            let out = session.query(eps_q).unwrap();
            assert!(out.reused_index, "frac={frac} should be in band");
            let fresh = GpuSelfJoin::default_device().run(&data, eps_q).unwrap();
            assert_eq!(out.table, fresh.table, "frac={frac}");
        }
    }

    #[test]
    fn out_of_band_epsilon_rebuilds() {
        let data = uniform(2, 800, 73);
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        session.query(2.0).unwrap();
        // Above the built ε: the shell would miss neighbours — rebuild.
        let grown = session.query(3.0).unwrap();
        assert!(!grown.reused_index);
        assert_eq!(session.epsilon_built(), Some(3.0));
        let fresh = GpuSelfJoin::default_device().run(&data, 3.0).unwrap();
        assert_eq!(grown.table, fresh.table);
        // Far below the floor: correct but wasteful — rebuild.
        let shrunk = session.query(1.0).unwrap();
        assert!(!shrunk.reused_index);
        assert_eq!(session.epsilon_built(), Some(1.0));
        assert_eq!(session.stats().index_builds, 3);
    }

    #[test]
    fn band_boundaries_are_inclusive() {
        let data = uniform(2, 600, 74);
        let session = SelfJoinSession::new(data, DevicePool::titan_x(1));
        let built = 4.0;
        session.query(built).unwrap();
        assert!(session.would_reuse(built));
        assert!(session.would_reuse(built * 0.5));
        assert!(!session.would_reuse(built * 0.5 - 1e-9));
        assert!(!session.would_reuse(built + 1e-9));
    }

    #[test]
    fn build_headroom_overbuilds_for_ascending_sweeps() {
        let data = uniform(2, 700, 75);
        let session =
            SelfJoinSession::new(data.clone(), DevicePool::titan_x(1)).with_config(SessionConfig {
                build_headroom: 1.5,
                ..SessionConfig::default()
            });
        let out = session.query(2.0).unwrap();
        assert_eq!(session.epsilon_built(), Some(3.0));
        // The overbuilt grid still answers at the queried ε exactly.
        let fresh = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert_eq!(out.table, fresh.table);
        // An ascending sweep under the ceiling keeps reusing.
        assert!(session.query(2.5).unwrap().reused_index);
        assert!(session.query(3.0).unwrap().reused_index);
        assert!(!session.query(3.1).unwrap().reused_index);
    }

    #[test]
    fn snapshots_upload_once_per_device_generation() {
        let data = uniform(2, 900, 76);
        let session = SelfJoinSession::new(data, DevicePool::titan_x(2));
        let eps = 2.5;
        let mut devices_seen = std::collections::HashSet::new();
        for _ in 0..6 {
            devices_seen.insert(session.query(eps).unwrap().device);
        }
        // Leases alternate across both devices; each uploaded exactly once.
        assert_eq!(devices_seen.len(), 2);
        let stats = session.stats();
        assert_eq!(stats.snapshot_uploads, 2);
        assert_eq!(stats.index_builds, 1);
    }

    #[test]
    fn knn_reuses_the_resident_snapshot() {
        let data = uniform(2, 500, 77);
        let device = Device::new(sim_gpu::DeviceSpec::titan_x_pascal());
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        let eps = 5.0;
        session.query(eps).unwrap();
        let out = session.knn(eps, 6).unwrap();
        assert!(out.reused_index);
        assert_eq!(
            session.stats().snapshot_uploads,
            1,
            "knn re-used the upload"
        );
        let fresh = crate::knn::gpu_knn(&device, &data, eps, 6).unwrap();
        assert_eq!(out.hits.len(), fresh.len());
        for (got, want) in out.hits.iter().zip(&fresh) {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert!((g.dist_sq - w.dist_sq).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn knn_never_triggers_rebuild_thrash() {
        // kNN is exact on any resident cell width, so interleaving kNN
        // hints far outside the join band must not rebuild the index.
        let data = uniform(2, 600, 82);
        let session = SelfJoinSession::single_device(data);
        session.query(2.0).unwrap();
        let out = session.knn(8.0, 4).unwrap();
        assert!(out.reused_index, "resident grid serves any kNN hint");
        assert_eq!(session.epsilon_built(), Some(2.0), "no rebuild");
        assert!(session.query(2.0).unwrap().reused_index, "band intact");
        assert_eq!(session.stats().index_builds, 1);
        // With nothing resident, the hint seeds the first build.
        session.evict();
        let cold = session.knn(3.0, 4).unwrap();
        assert!(!cold.reused_index);
        assert_eq!(session.epsilon_built(), Some(3.0));
    }

    #[test]
    fn eviction_frees_device_memory() {
        let data = uniform(2, 1000, 78);
        let pool = DevicePool::titan_x(2);
        let session = SelfJoinSession::new(data, pool.clone());
        session.query(2.0).unwrap();
        session.query(2.0).unwrap();
        assert!(pool.total_used_bytes() > 0, "snapshots are resident");
        session.evict();
        assert_eq!(pool.total_used_bytes(), 0, "eviction frees all snapshots");
    }

    #[test]
    fn drop_frees_device_memory() {
        let data = uniform(2, 800, 79);
        let pool = DevicePool::titan_x(1);
        {
            let session = SelfJoinSession::new(data, pool.clone());
            session.query(2.0).unwrap();
            assert!(pool.total_used_bytes() > 0);
        }
        assert_eq!(pool.total_used_bytes(), 0);
    }

    #[test]
    fn invalid_epsilon_surfaces_error() {
        let session = SelfJoinSession::single_device(uniform(2, 50, 80));
        assert!(matches!(session.query(-1.0), Err(SelfJoinError::Grid(_))));
        assert!(matches!(
            session.query(f64::NAN),
            Err(SelfJoinError::Grid(_))
        ));
    }

    #[test]
    #[should_panic(expected = "reuse_floor")]
    fn bad_reuse_floor_rejected() {
        let _ = SelfJoinSession::single_device(uniform(2, 10, 81)).with_config(SessionConfig {
            reuse_floor: 0.0,
            ..SessionConfig::default()
        });
    }
}
