//! Dataset-resident query sessions: build the index once, serve many
//! queries.
//!
//! The paper amortizes *transfers* across batches (§V-A); a serving
//! deployment must also amortize the *index*. Every [`crate::GpuSelfJoin`]
//! call rebuilds the ε-coupled grid and re-uploads the device snapshot —
//! fine for a one-shot figure, fatal for sustained query traffic where
//! the same dataset answers query after query. [`SelfJoinSession`] pins a
//! dataset and keeps three things resident across queries:
//!
//! 1. the built [`GridIndex`] (host),
//! 2. one [`DeviceGrid`] snapshot per pool device it has touched, and
//! 3. the hoisted [`CellMajorPlan`] cached alongside each snapshot (the
//!    per-cell neighbor CSR is ε′-independent, so one hoist serves every
//!    in-band query).
//!
//! ## The validity band
//!
//! A grid built at ε_built serves any query radius ε′ ≤ ε_built exactly:
//! the one-cell adjacent shell covers every radius up to the cell width,
//! and only the kernels' distance threshold changes
//! ([`ExecOptions::query_epsilon`]). Serving ε′ ≪ ε_built is *correct*
//! but wasteful — candidate cells grow as `(ε_built/ε′)ᵈ` relative to a
//! right-sized grid — so the session rebuilds once ε′ falls below
//! `reuse_floor · ε_built` (default 0.5). Queries above ε_built always
//! rebuild (the shell would miss neighbours). Together:
//!
//! ```text
//! reuse  ⇔  reuse_floor · ε_built ≤ ε′ ≤ ε_built
//! ```
//!
//! ## Concurrency
//!
//! Sessions are `Send + Sync`; queries take `&self`. Each query leases
//! the least-loaded pool device ([`DevicePool::lease`]) so concurrent
//! sessions — or concurrent queries on one session — spread across
//! devices. Result correctness is untouched by interleaving: every query
//! runs against an immutable `Arc`'d index generation, and a concurrent
//! rebuild simply installs a new generation while in-flight queries
//! finish on the old one (device memory is freed when the last query
//! drops its `Arc`).

use crate::batching::ExecOptions;
use crate::cell_major::{CellMajorPlan, HotPath};
use crate::device_grid::DeviceGrid;
use crate::error::SelfJoinError;
use crate::grid::GridIndex;
use crate::knn::{gpu_knn_on, KnnHit};
use crate::plan::{execute, Backend, EstimateStage, IndexStage, JoinPlan, JoinReport, PostStage};
use crate::result::NeighborTable;
use crate::selfjoin::SelfJoinConfig;
use parking_lot::Mutex;
use sim_gpu::{Device, DeviceLease, DevicePool, Evictor, LedgerEntry};
use sj_datasets::Dataset;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide session id source — the owner tag sessions register their
/// snapshots under in the pool's [`sim_gpu::MemoryLedger`].
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// EWMA weight of the newest observation in the session's cost model.
const COST_EWMA_ALPHA: f64 = 0.3;

/// Configuration of a resident session.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Per-query join configuration (hot path, UNICOMP, launch geometry,
    /// batching tunables).
    pub join: SelfJoinConfig,
    /// Lower edge of the validity band as a fraction of ε_built: a
    /// resident index is reused while
    /// `reuse_floor · ε_built ≤ ε′ ≤ ε_built`. Must lie in `(0, 1]`;
    /// `1.0` disables reuse for any ε′ ≠ ε_built.
    pub reuse_floor: f64,
    /// Headroom factor applied when (re)building: the index is built at
    /// `ε · build_headroom` (≥ 1), so an ε-sweep ascending toward the
    /// headroom ceiling keeps hitting the band instead of rebuilding
    /// every step. Default 1.0 (build exactly at the queried ε).
    pub build_headroom: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            join: SelfJoinConfig::default(),
            reuse_floor: 0.5,
            build_headroom: 1.0,
        }
    }
}

/// Cumulative counters of one session (all queries since creation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Self-join queries served.
    pub queries: u64,
    /// kNN queries served.
    pub knn_queries: u64,
    /// Queries that reused the resident index.
    pub index_reuses: u64,
    /// Queries whose result-size estimate came from the exact count of an
    /// earlier same-ε query (the sampling kernel was skipped).
    pub estimate_hits: u64,
    /// Index (re)builds — the first query plus every out-of-band ε.
    pub index_builds: u64,
    /// Device snapshot uploads (once per device per index generation,
    /// plus one per re-upload after an eviction).
    pub snapshot_uploads: u64,
    /// Resident snapshots dropped under memory pressure (LRU ledger
    /// eviction or [`SelfJoinSession::evict_snapshot`]).
    pub snapshot_evictions: u64,
    /// Snapshot uploads that re-established residency a *previous* upload
    /// of the same generation had already paid for — the price of an
    /// eviction on a device the session still queries.
    pub snapshot_reuploads: u64,
    /// Snapshots force-dropped after a device fault: the device's copy is
    /// lost with it, and the next query touching the device transparently
    /// re-uploads (counted there as a re-upload).
    pub snapshot_invalidations: u64,
}

/// One device's resident copy of the current index generation.
struct DeviceSnapshot {
    dg: DeviceGrid,
    /// Hoisted cell-major plan (when the session runs that hot path).
    hoist: Option<CellMajorPlan>,
    /// Modeled one-time cost of establishing this residency: snapshot
    /// upload + hoisting kernels + CSR transfer. Charged to the first
    /// query that touches the device, then amortized away.
    upload_modeled: Duration,
    /// Registration in the pool's snapshot ledger; unregisters (exactly
    /// once) when the snapshot drops, whether by eviction, generation
    /// replacement or session drop.
    ledger_entry: LedgerEntry,
}

/// One index generation: the host grid plus per-device snapshots.
struct Resident {
    grid: Arc<GridIndex>,
    /// Device index → snapshot, populated lazily on first touch.
    snapshots: Mutex<HashMap<usize, Arc<DeviceSnapshot>>>,
    /// Devices that have uploaded this generation at least once — a
    /// second upload on such a device is a *re-upload* (post-eviction).
    uploaded_devices: Mutex<HashSet<usize>>,
    /// ε′ bits → exact directed pair count of an already-served query.
    /// Query streams repeat ε values; a hit replaces the sampling
    /// estimate kernel with the exact count from the previous answer
    /// (invalidated with the generation — a rebuild changes the grid, not
    /// the answer, but the cache rides the generation's lifetime anyway).
    estimates: Mutex<HashMap<u64, u64>>,
}

struct SessionState {
    resident: Option<Arc<Resident>>,
    stats: SessionStats,
}

/// Learned per-session cost coefficients (modeled seconds), updated by an
/// EWMA after every served query — the calibration behind
/// [`SelfJoinSession::projected_cost`].
#[derive(Clone, Copy, Debug, Default)]
struct CostModel {
    /// Modeled seconds of a resident query per work unit, where one unit
    /// is one point scanned or one result pair produced (kernels and
    /// result transfers both scale with it).
    query_secs_per_unit: Option<f64>,
    /// Modeled seconds of an index (re)build including the first-touch
    /// snapshot upload.
    build_secs: Option<f64>,
}

fn ewma(slot: &mut Option<f64>, observation: f64) {
    *slot = Some(match *slot {
        Some(prev) => prev + COST_EWMA_ALPHA * (observation - prev),
        None => observation,
    });
}

/// Projected modeled cost of a prospective query, from the session's
/// cached result-size estimates plus the learned batching cost model —
/// the admission signal a serving frontend reads *without* touching a
/// device.
#[derive(Clone, Copy, Debug)]
pub struct ProjectedCost {
    /// Projected modeled response time (build included when needed).
    pub modeled: Duration,
    /// Projected directed result pairs the query will produce.
    pub expected_pairs: u64,
    /// Whether the query would fall outside the validity band and force
    /// an index rebuild.
    pub needs_build: bool,
    /// Whether every coefficient behind `modeled` comes from observed
    /// queries (false while the session is cold — admission controllers
    /// should admit uncalibrated queries rather than guess).
    pub calibrated: bool,
}

/// Output of one session self-join query.
#[derive(Clone, Debug)]
pub struct SessionQueryOutput {
    /// Directed, self-excluded neighbour lists at the queried ε′.
    pub table: NeighborTable,
    /// Timings and counters. `grid_build` and `modeled_total` include the
    /// session-level index build / first-touch upload when this query
    /// paid them; on reuse both shrink to the pure query cost — the
    /// amortization the `query_throughput` bench measures.
    pub report: JoinReport,
    /// Whether the resident index served this query (false = rebuilt).
    pub reused_index: bool,
    /// Pool device that executed the query.
    pub device: usize,
}

/// Output of one session kNN query.
#[derive(Clone, Debug)]
pub struct SessionKnnOutput {
    /// Per-query hits, each sorted by distance (ties by id).
    pub hits: Vec<Vec<KnnHit>>,
    /// Whether the resident index served this query (false = rebuilt).
    pub reused_index: bool,
    /// Pool device that executed the query.
    pub device: usize,
}

/// A dataset-resident self-join/kNN session over a device pool.
///
/// See the [module docs](self) for the residency and validity-band
/// semantics. Dropping the session releases every resident snapshot
/// (device memory returns to the pool).
pub struct SelfJoinSession {
    /// Ledger owner tag (see [`Self::id`]).
    id: u64,
    data: Dataset,
    pool: DevicePool,
    config: SessionConfig,
    state: Mutex<SessionState>,
    model: Mutex<CostModel>,
    /// Snapshot evictions (LRU or manual). Kept outside `state` because
    /// ledger evictors fire without a session handle — they share this
    /// counter through an `Arc`.
    evictions: Arc<AtomicU64>,
}

impl SelfJoinSession {
    /// Pins `data` to a session over `pool` with default configuration.
    pub fn new(data: Dataset, pool: DevicePool) -> Self {
        Self {
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            data,
            pool,
            config: SessionConfig::default(),
            state: Mutex::new(SessionState {
                resident: None,
                stats: SessionStats::default(),
            }),
            model: Mutex::new(CostModel::default()),
            evictions: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A session over a single simulated TITAN X.
    pub fn single_device(data: Dataset) -> Self {
        Self::new(data, DevicePool::titan_x(1))
    }

    /// Overrides the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `reuse_floor` is outside `(0, 1]` or `build_headroom`
    /// is below 1.
    pub fn with_config(mut self, config: SessionConfig) -> Self {
        assert!(
            config.reuse_floor > 0.0 && config.reuse_floor <= 1.0,
            "reuse_floor must be in (0, 1], got {}",
            config.reuse_floor
        );
        assert!(
            config.build_headroom >= 1.0,
            "build_headroom must be >= 1, got {}",
            config.build_headroom
        );
        self.config = config;
        self
    }

    /// The pinned dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The device pool queries lease from.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Process-unique session id — the owner tag this session's snapshots
    /// carry in the pool's [`sim_gpu::MemoryLedger`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.state.lock().stats;
        stats.snapshot_evictions = self.evictions.load(Ordering::Relaxed);
        stats
    }

    /// The ε the resident index was built with, if one is resident.
    pub fn epsilon_built(&self) -> Option<f64> {
        self.state
            .lock()
            .resident
            .as_ref()
            .map(|r| r.grid.epsilon())
    }

    /// Whether a query at `epsilon` would reuse the resident index (the
    /// validity-band predicate; false when nothing is resident).
    pub fn would_reuse(&self, epsilon: f64) -> bool {
        self.epsilon_built()
            .is_some_and(|built| in_band(built, epsilon, self.config.reuse_floor))
    }

    /// Drops the resident index and every device snapshot. The next query
    /// rebuilds. In-flight queries finish on the old generation.
    pub fn evict(&self) {
        self.state.lock().resident = None;
    }

    /// Serves one self-join query at radius `epsilon`: all ordered pairs
    /// `(p, q)`, `p ≠ q`, with `dist(p, q) ≤ epsilon` — pair-for-pair
    /// identical to a fresh [`crate::GpuSelfJoin::run`] at the same ε,
    /// whether the resident index was reused or rebuilt.
    ///
    /// Device faults are absorbed here: on an injected crash or transient
    /// failure the query retries on a fresh lease (the pool skips devices
    /// in probation), up to one attempt past the pool size, so callers of
    /// the unpinned path see faults only when every device is failing.
    pub fn query(&self, epsilon: f64) -> Result<SessionQueryOutput, SelfJoinError> {
        let attempts = self.pool.len() + 1;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                sj_obs::registry()
                    .counter("sj_session_fault_retries_total", &[])
                    .inc();
            }
            match self.query_with(epsilon, self.pool.lease()) {
                Err(e) if e.is_fault() => last = Some(e),
                other => return other,
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// [`Self::query`] pinned to a specific pool device — serving
    /// frontends with a worker thread per device dispatch through this so
    /// each worker drives exactly the snapshot cache it owns.
    pub fn query_on(
        &self,
        epsilon: f64,
        device_index: usize,
    ) -> Result<SessionQueryOutput, SelfJoinError> {
        self.query_with(epsilon, self.pool.lease_device(device_index))
    }

    fn query_with(
        &self,
        epsilon: f64,
        lease: DeviceLease,
    ) -> Result<SessionQueryOutput, SelfJoinError> {
        let mut span = sj_obs::Span::enter("session.query");
        span.label("session", self.id);
        span.label("epsilon", epsilon);
        span.label("device", lease.index());
        let (resident, reused, build_wall) = self.resident_for(epsilon)?;
        span.label("decision", if reused { "reuse" } else { "rebuild" });
        let t_touch = Instant::now();
        let (snap, first_touch) = self.snapshot_on(&resident, lease.device(), lease.index())?;
        let touch_wall = t_touch.elapsed();
        snap.ledger_entry.touch();

        // Repeat-ε queries inject the exact pair count of the earlier
        // answer (scaled by the safety factor for batch-buffer headroom)
        // instead of re-running the sampling kernel.
        let cached_count = resident.estimates.lock().get(&epsilon.to_bits()).copied();
        let estimate = match cached_count {
            Some(pairs) => EstimateStage::Precomputed(
                ((pairs as f64) * self.config.join.batching.safety_factor).ceil() as u64,
            ),
            None => EstimateStage::Sample,
        };
        let plan = JoinPlan {
            data: &self.data,
            index: IndexStage::Resident {
                grid: &resident.grid,
                snapshot: &snap.dg,
                hoist: snap.hoist.as_ref(),
            },
            estimate,
            exec: ExecOptions {
                query_epsilon: Some(epsilon),
                ..self.config.join.exec_options()
            },
            launch: self.config.join.launch,
            batching: self.config.join.batching,
            post: PostStage::default(),
        };
        let mut out = match execute(&plan, Backend::Device(lease.device())) {
            Ok(out) => out,
            Err(e) => {
                if e.is_fault() {
                    // Whatever was resident on that device is gone with it
                    // (a crash wipes device memory; even a transient leaves
                    // the snapshot's liveness unproven). Drop the snapshot
                    // so the next query touching the device re-uploads
                    // through the ordinary eviction/re-upload path.
                    self.invalidate_snapshot(&resident, lease.index());
                }
                return Err(e);
            }
        };

        // Calibrate the cost model from what the query actually cost on
        // the modeled clock (pure query cost — the report has not had the
        // session-level one-time costs folded in yet).
        {
            let units = (self.data.len() as u64 + out.report.batching.actual_pairs) as f64;
            let mut model = self.model.lock();
            ewma(
                &mut model.query_secs_per_unit,
                out.report.modeled_total.as_secs_f64() / units.max(1.0),
            );
            if !reused {
                let mut build_modeled = build_wall;
                if first_touch {
                    build_modeled += snap.upload_modeled;
                }
                ewma(&mut model.build_secs, build_modeled.as_secs_f64());
            }
        }

        // Fold the session-level one-time costs into this query's report:
        // the executor saw a resident index, so it charged neither the
        // build nor the upload — whichever of those this query actually
        // triggered belongs to it.
        out.report.grid_build = build_wall;
        out.report.total += build_wall;
        out.report.modeled_total += build_wall;
        if first_touch {
            out.report.total += touch_wall;
            out.report.modeled_total += snap.upload_modeled;
        }
        resident
            .estimates
            .lock()
            .insert(epsilon.to_bits(), out.report.batching.actual_pairs);

        {
            let mut state = self.state.lock();
            state.stats.queries += 1;
            if cached_count.is_some() {
                state.stats.estimate_hits += 1;
            }
        }
        Ok(SessionQueryOutput {
            table: NeighborTable::from_pairs(self.data.len(), &out.pairs),
            report: out.report,
            reused_index: reused,
            device: lease.index(),
        })
    }

    /// Serves one kNN query (`k` nearest neighbours of every point)
    /// through the resident index, skipping the grid build and upload
    /// that a fresh [`crate::gpu_knn`] would pay.
    ///
    /// Unlike self-joins, kNN is **exact on any cell width** — the ring
    /// search expands until the k-th best distance is covered, so the
    /// validity band does not apply: whatever generation is resident
    /// serves the query (no rebuild thrash when kNN hints interleave
    /// with out-of-band join ε values). `epsilon` is only the cell-width
    /// hint used when nothing is resident yet.
    pub fn knn(&self, epsilon: f64, k: usize) -> Result<SessionKnnOutput, SelfJoinError> {
        // The lock guard must drop before resident_for re-locks.
        let existing = self.state.lock().resident.as_ref().map(Arc::clone);
        let (resident, reused) = match existing {
            Some(resident) => (resident, true),
            None => {
                let (resident, _, _) = self.resident_for(epsilon)?;
                (resident, false)
            }
        };
        let lease = self.pool.lease();
        let (snap, _first_touch) = self.snapshot_on(&resident, lease.device(), lease.index())?;
        snap.ledger_entry.touch();
        let hits = gpu_knn_on(lease.device(), &snap.dg, k)?;
        self.state.lock().stats.knn_queries += 1;
        Ok(SessionKnnOutput {
            hits,
            reused_index: reused,
            device: lease.index(),
        })
    }

    /// Returns the index generation serving `epsilon`, building a new one
    /// when ε is outside the resident band. Returns `(generation,
    /// reused, build_wall)`.
    fn resident_for(&self, epsilon: f64) -> Result<(Arc<Resident>, bool, Duration), SelfJoinError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(SelfJoinError::Grid(
                crate::error::GridBuildError::InvalidEpsilon(epsilon),
            ));
        }
        {
            let mut state = self.state.lock();
            let reusable = state.resident.as_ref().is_some_and(|resident| {
                in_band(resident.grid.epsilon(), epsilon, self.config.reuse_floor)
            });
            if reusable {
                state.stats.index_reuses += 1;
                let resident = state.resident.as_ref().expect("checked above");
                return Ok((Arc::clone(resident), true, Duration::ZERO));
            }
        }
        // Build outside the state lock: a concurrent in-band query keeps
        // serving the old generation meanwhile. Racing rebuilds are
        // correct (each query uses the generation it built; last install
        // wins) — just wasted work in a pathological interleaving.
        let t0 = Instant::now();
        let mut bspan = sj_obs::Span::enter("session.build");
        bspan.label("epsilon_built", epsilon * self.config.build_headroom);
        let grid = GridIndex::build(&self.data, epsilon * self.config.build_headroom)?;
        drop(bspan);
        let build_wall = t0.elapsed();
        let resident = Arc::new(Resident {
            grid: Arc::new(grid),
            snapshots: Mutex::new(HashMap::new()),
            uploaded_devices: Mutex::new(HashSet::new()),
            estimates: Mutex::new(HashMap::new()),
        });
        let mut state = self.state.lock();
        state.stats.index_builds += 1;
        state.resident = Some(Arc::clone(&resident));
        Ok((resident, false, build_wall))
    }

    /// Returns `device`'s snapshot of this generation, uploading (and
    /// hoisting, on the cell-major path) on first touch — making room in
    /// the pool's snapshot ledger first, and registering the new snapshot
    /// with it so LRU eviction can reclaim it later. Returns
    /// `(snapshot, first_touch)`.
    fn snapshot_on(
        &self,
        resident: &Arc<Resident>,
        device: &Device,
        device_index: usize,
    ) -> Result<(Arc<DeviceSnapshot>, bool), SelfJoinError> {
        if let Some(snap) = resident.snapshots.lock().get(&device_index) {
            return Ok((Arc::clone(snap), false));
        }
        // Budgeted pools evict LRU snapshots (this session's or another's)
        // *before* the upload allocates, so the budget holds throughout.
        // The projection is exact for the grid part and an upper bound for
        // the hoist CSR. The permit serializes concurrent budgeted uploads
        // pool-wide — without it, two sessions could both fit "the same"
        // freed space and jointly overshoot the budget.
        let mut uspan = sj_obs::Span::enter("session.upload");
        uspan.label("session", self.id);
        uspan.label("device", device_index);
        let ledger = self.pool.memory_ledger();
        let _permit = ledger.budget().map(|_| ledger.upload_permit());
        let mut projected = DeviceGrid::projected_bytes(&self.data, &resident.grid);
        ledger.make_room(projected);
        // Upload and hoist OUTSIDE the map lock: a first touch on one
        // device must not stall concurrent queries on devices whose
        // snapshot is already cached (or is being built in parallel). Two
        // racing first touches both upload; the loser's copy is dropped
        // below and its device memory freed — wasted work only in a
        // pathological interleaving, never a stall.
        device.fault_check(sim_gpu::FaultOp::Upload)?;
        let dg = DeviceGrid::upload(device, &self.data, &resident.grid)?;
        let tm = device.spec().transfer_model();
        let mut upload_modeled = tm.time(dg.h2d_bytes());
        let mut resident_bytes = dg.h2d_bytes();
        let hoist = match self.config.join.hot_path {
            HotPath::CellMajor => {
                // Room for the full snapshot (grid + CSR): the grid part
                // is allocated but not yet registered, so it must still be
                // counted against the budget here.
                projected += CellMajorPlan::projected_bytes_upper(&dg);
                ledger.make_room(projected);
                let (plan, stats) = CellMajorPlan::build(
                    device,
                    &dg,
                    self.config.join.unicomp,
                    self.config.join.launch,
                )?;
                upload_modeled += stats.modeled + tm.time(stats.h2d_bytes + stats.d2h_bytes);
                resident_bytes += plan.resident_bytes();
                Some(plan)
            }
            HotPath::PerThread => None,
        };
        // The evictor the ledger will call under memory pressure (shares
        // the idle-check-then-remove rule with `evict_snapshot`).
        let weak = Arc::downgrade(resident);
        let evictions = Arc::clone(&self.evictions);
        let evict: Evictor = Arc::new(move || {
            let Some(resident) = weak.upgrade() else {
                return false;
            };
            try_evict_snapshot(&resident, device_index, &evictions)
        });
        let ledger_entry = ledger.register(self.id, device_index, resident_bytes, evict);
        let snap = Arc::new(DeviceSnapshot {
            dg,
            hoist,
            upload_modeled,
            ledger_entry,
        });
        {
            let mut snapshots = resident.snapshots.lock();
            if let Some(existing) = snapshots.get(&device_index) {
                // Lost a first-touch race; serve the winner's snapshot.
                return Ok((Arc::clone(existing), false));
            }
            snapshots.insert(device_index, Arc::clone(&snap));
        }
        let reupload = !resident.uploaded_devices.lock().insert(device_index);
        uspan.label("bytes", snap.dg.h2d_bytes());
        uspan.label("reupload", u64::from(reupload));
        uspan.set_modeled_dur(snap.upload_modeled.as_secs_f64());
        {
            let mut state = self.state.lock();
            state.stats.snapshot_uploads += 1;
            if reupload {
                state.stats.snapshot_reuploads += 1;
                sj_obs::registry()
                    .counter("sj_session_reuploads_total", &[])
                    .inc();
            }
        }
        Ok((snap, true))
    }

    /// Evicts one device's resident snapshot, freeing its device memory;
    /// the next query touching that device transparently re-uploads.
    /// Returns `false` when there is nothing resident on the device or a
    /// running query still uses the snapshot (evicting it would free no
    /// memory until the query finished anyway).
    pub fn evict_snapshot(&self, device_index: usize) -> bool {
        let resident = self.state.lock().resident.as_ref().map(Arc::clone);
        let Some(resident) = resident else {
            return false;
        };
        try_evict_snapshot(&resident, device_index, &self.evictions)
    }

    /// Force-drops `device_index`'s snapshot after a device fault. Unlike
    /// [`try_evict_snapshot`], in-flight use does not block removal — the
    /// fault already invalidated the device's copy, and any live `Arc`s
    /// keep the (simulated) buffers alive only until their queries unwind.
    fn invalidate_snapshot(&self, resident: &Resident, device_index: usize) {
        let removed = resident.snapshots.lock().remove(&device_index).is_some();
        if removed {
            self.state.lock().stats.snapshot_invalidations += 1;
            sj_obs::registry()
                .counter("sj_session_snapshot_invalidations_total", &[])
                .inc();
        }
    }

    /// Projects the modeled cost of a query at `epsilon` without touching
    /// a device: the expected result size comes from the generation's
    /// exact-count cache (scaled from the nearest cached ε when the exact
    /// value is absent) and the time coefficients from the EWMA-calibrated
    /// cost model. Serving frontends use this as their admission signal;
    /// while `calibrated` is false the projection is a prior, not a
    /// measurement.
    pub fn projected_cost(&self, epsilon: f64) -> ProjectedCost {
        let n = self.data.len() as u64;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            // Garbage ε would poison the nearest-ε search below (NaN log
            // ratios); report an uncalibrated zero-cost build so the
            // caller proceeds to the query path, whose validation turns
            // it into the proper error.
            return ProjectedCost {
                modeled: Duration::ZERO,
                expected_pairs: 0,
                needs_build: true,
                calibrated: false,
            };
        }
        let needs_build = !self.would_reuse(epsilon);
        let dim = self.data.dim().max(1) as i32;
        let (expected_pairs, pairs_known) = {
            let state = self.state.lock();
            match state.resident.as_ref() {
                Some(resident) => {
                    let estimates = resident.estimates.lock();
                    match estimates.get(&epsilon.to_bits()) {
                        Some(&pairs) => (pairs, true),
                        None => {
                            // Nearest cached ε (log distance), scaled by
                            // the volume ratio (ε′/ε)^dim — pair counts
                            // grow with the ball volume.
                            let nearest = estimates
                                .iter()
                                .map(|(bits, &pairs)| (f64::from_bits(*bits), pairs))
                                .filter(|(eps, _)| *eps > 0.0)
                                .min_by(|a, b| {
                                    let da = (epsilon / a.0).ln().abs();
                                    let db = (epsilon / b.0).ln().abs();
                                    da.partial_cmp(&db).expect("finite cached eps")
                                });
                            match nearest {
                                Some((eps_c, pairs)) => {
                                    let scaled = pairs as f64 * (epsilon / eps_c).powi(dim);
                                    (scaled.ceil() as u64, true)
                                }
                                None => (n.saturating_mul(8), false),
                            }
                        }
                    }
                }
                None => (n.saturating_mul(8), false),
            }
        };
        let model = *self.model.lock();
        // Cold-session prior: a work unit costs about what moving one
        // result pair over PCIe does.
        let per_unit = model.query_secs_per_unit.unwrap_or_else(|| {
            let tm = self.pool.device(0).spec().transfer_model();
            tm.time(std::mem::size_of::<crate::result::Pair>())
                .as_secs_f64()
        });
        let mut secs = per_unit * (n + expected_pairs) as f64;
        let mut calibrated = model.query_secs_per_unit.is_some() && pairs_known;
        if needs_build {
            match model.build_secs {
                Some(build) => secs += build,
                None => calibrated = false,
            }
        }
        ProjectedCost {
            modeled: Duration::from_secs_f64(secs.max(0.0)),
            expected_pairs,
            needs_build,
            calibrated,
        }
    }
}

impl std::fmt::Debug for SelfJoinSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfJoinSession")
            .field("points", &self.data.len())
            .field("dim", &self.data.dim())
            .field("devices", &self.pool.len())
            .field("epsilon_built", &self.epsilon_built())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The validity-band predicate (see the module docs).
fn in_band(built: f64, query: f64, reuse_floor: f64) -> bool {
    query <= built && query >= built * reuse_floor
}

/// The one eviction rule, shared by the ledger's LRU evictor and
/// [`SelfJoinSession::evict_snapshot`]: drop `device_index`'s snapshot
/// from the generation's map unless a running query still holds it (the
/// map's `Arc` is then not the only one, and evicting would free no
/// memory anyway). Returns whether a snapshot was evicted.
fn try_evict_snapshot(resident: &Resident, device_index: usize, evictions: &AtomicU64) -> bool {
    let mut snapshots = resident.snapshots.lock();
    let in_use = match snapshots.get(&device_index) {
        Some(snap) => Arc::strong_count(snap) > 1,
        None => return false,
    };
    if in_use {
        return false;
    }
    snapshots.remove(&device_index);
    evictions.fetch_add(1, Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfjoin::GpuSelfJoin;
    use sj_datasets::synthetic::{clustered, uniform};

    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SelfJoinSession>()
    };

    #[test]
    fn first_query_builds_then_reuses_in_band() {
        let data = uniform(2, 1200, 71);
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        let eps = 3.0;
        let first = session.query(eps).unwrap();
        assert!(!first.reused_index);
        assert!(first.report.grid_build > Duration::ZERO);
        let second = session.query(eps).unwrap();
        assert!(second.reused_index);
        assert_eq!(second.report.grid_build, Duration::ZERO);
        assert_eq!(first.table, second.table);
        // Reuse is strictly cheaper on the modeled clock: no build, no
        // upload, no hoist.
        assert!(second.report.modeled_total < first.report.modeled_total);
        let stats = session.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_reuses, 1);
        assert_eq!(stats.snapshot_uploads, 1);
    }

    #[test]
    fn in_band_shrunk_epsilon_matches_fresh_join() {
        let data = clustered(2, 1000, 4, 1.0, 0.1, 72);
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        let built = 2.0;
        session.query(built).unwrap();
        for frac in [0.5, 0.7, 0.95] {
            let eps_q = built * frac;
            let out = session.query(eps_q).unwrap();
            assert!(out.reused_index, "frac={frac} should be in band");
            let fresh = GpuSelfJoin::default_device().run(&data, eps_q).unwrap();
            assert_eq!(out.table, fresh.table, "frac={frac}");
        }
    }

    #[test]
    fn out_of_band_epsilon_rebuilds() {
        let data = uniform(2, 800, 73);
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        session.query(2.0).unwrap();
        // Above the built ε: the shell would miss neighbours — rebuild.
        let grown = session.query(3.0).unwrap();
        assert!(!grown.reused_index);
        assert_eq!(session.epsilon_built(), Some(3.0));
        let fresh = GpuSelfJoin::default_device().run(&data, 3.0).unwrap();
        assert_eq!(grown.table, fresh.table);
        // Far below the floor: correct but wasteful — rebuild.
        let shrunk = session.query(1.0).unwrap();
        assert!(!shrunk.reused_index);
        assert_eq!(session.epsilon_built(), Some(1.0));
        assert_eq!(session.stats().index_builds, 3);
    }

    #[test]
    fn band_boundaries_are_inclusive() {
        let data = uniform(2, 600, 74);
        let session = SelfJoinSession::new(data, DevicePool::titan_x(1));
        let built = 4.0;
        session.query(built).unwrap();
        assert!(session.would_reuse(built));
        assert!(session.would_reuse(built * 0.5));
        assert!(!session.would_reuse(built * 0.5 - 1e-9));
        assert!(!session.would_reuse(built + 1e-9));
    }

    #[test]
    fn build_headroom_overbuilds_for_ascending_sweeps() {
        let data = uniform(2, 700, 75);
        let session =
            SelfJoinSession::new(data.clone(), DevicePool::titan_x(1)).with_config(SessionConfig {
                build_headroom: 1.5,
                ..SessionConfig::default()
            });
        let out = session.query(2.0).unwrap();
        assert_eq!(session.epsilon_built(), Some(3.0));
        // The overbuilt grid still answers at the queried ε exactly.
        let fresh = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert_eq!(out.table, fresh.table);
        // An ascending sweep under the ceiling keeps reusing.
        assert!(session.query(2.5).unwrap().reused_index);
        assert!(session.query(3.0).unwrap().reused_index);
        assert!(!session.query(3.1).unwrap().reused_index);
    }

    #[test]
    fn snapshots_upload_once_per_device_generation() {
        let data = uniform(2, 900, 76);
        let session = SelfJoinSession::new(data, DevicePool::titan_x(2));
        let eps = 2.5;
        let mut devices_seen = std::collections::HashSet::new();
        for _ in 0..6 {
            devices_seen.insert(session.query(eps).unwrap().device);
        }
        // Leases alternate across both devices; each uploaded exactly once.
        assert_eq!(devices_seen.len(), 2);
        let stats = session.stats();
        assert_eq!(stats.snapshot_uploads, 2);
        assert_eq!(stats.index_builds, 1);
    }

    #[test]
    fn knn_reuses_the_resident_snapshot() {
        let data = uniform(2, 500, 77);
        let device = Device::new(sim_gpu::DeviceSpec::titan_x_pascal());
        let session = SelfJoinSession::new(data.clone(), DevicePool::titan_x(1));
        let eps = 5.0;
        session.query(eps).unwrap();
        let out = session.knn(eps, 6).unwrap();
        assert!(out.reused_index);
        assert_eq!(
            session.stats().snapshot_uploads,
            1,
            "knn re-used the upload"
        );
        let fresh = crate::knn::gpu_knn(&device, &data, eps, 6).unwrap();
        assert_eq!(out.hits.len(), fresh.len());
        for (got, want) in out.hits.iter().zip(&fresh) {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert!((g.dist_sq - w.dist_sq).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn knn_never_triggers_rebuild_thrash() {
        // kNN is exact on any resident cell width, so interleaving kNN
        // hints far outside the join band must not rebuild the index.
        let data = uniform(2, 600, 82);
        let session = SelfJoinSession::single_device(data);
        session.query(2.0).unwrap();
        let out = session.knn(8.0, 4).unwrap();
        assert!(out.reused_index, "resident grid serves any kNN hint");
        assert_eq!(session.epsilon_built(), Some(2.0), "no rebuild");
        assert!(session.query(2.0).unwrap().reused_index, "band intact");
        assert_eq!(session.stats().index_builds, 1);
        // With nothing resident, the hint seeds the first build.
        session.evict();
        let cold = session.knn(3.0, 4).unwrap();
        assert!(!cold.reused_index);
        assert_eq!(session.epsilon_built(), Some(3.0));
    }

    #[test]
    fn eviction_frees_device_memory() {
        let data = uniform(2, 1000, 78);
        let pool = DevicePool::titan_x(2);
        let session = SelfJoinSession::new(data, pool.clone());
        session.query(2.0).unwrap();
        session.query(2.0).unwrap();
        assert!(pool.total_used_bytes() > 0, "snapshots are resident");
        session.evict();
        assert_eq!(pool.total_used_bytes(), 0, "eviction frees all snapshots");
    }

    #[test]
    fn drop_frees_device_memory() {
        let data = uniform(2, 800, 79);
        let pool = DevicePool::titan_x(1);
        {
            let session = SelfJoinSession::new(data, pool.clone());
            session.query(2.0).unwrap();
            assert!(pool.total_used_bytes() > 0);
        }
        assert_eq!(pool.total_used_bytes(), 0);
    }

    #[test]
    fn invalid_epsilon_surfaces_error() {
        let session = SelfJoinSession::single_device(uniform(2, 50, 80));
        assert!(matches!(session.query(-1.0), Err(SelfJoinError::Grid(_))));
        assert!(matches!(
            session.query(f64::NAN),
            Err(SelfJoinError::Grid(_))
        ));
    }

    #[test]
    fn evict_snapshot_frees_and_reupload_is_transparent() {
        let data = uniform(2, 900, 83);
        let pool = DevicePool::titan_x(1);
        let session = SelfJoinSession::new(data.clone(), pool.clone());
        let eps = 2.5;
        let first = session.query(eps).unwrap();
        assert!(pool.total_used_bytes() > 0);
        assert_eq!(pool.memory_ledger().len(), 1, "snapshot registered");
        assert!(session.evict_snapshot(0));
        assert_eq!(pool.total_used_bytes(), 0, "eviction frees device memory");
        assert_eq!(pool.memory_ledger().len(), 0, "ledger entry unregistered");
        assert!(!session.evict_snapshot(0), "nothing left to evict");
        // The next query transparently re-uploads and answers identically.
        let again = session.query(eps).unwrap();
        assert_eq!(first.table, again.table);
        assert!(again.reused_index, "eviction must not invalidate the index");
        let stats = session.stats();
        assert_eq!(stats.snapshot_evictions, 1);
        assert_eq!(stats.snapshot_reuploads, 1);
        assert_eq!(stats.snapshot_uploads, 2);
        assert_eq!(stats.index_builds, 1, "no rebuild, just re-residency");
    }

    #[test]
    fn budgeted_pool_evicts_lru_session_snapshots() {
        let data_a = uniform(2, 1000, 84);
        let data_b = uniform(2, 1000, 85);
        let pool = DevicePool::titan_x(1);
        let a = SelfJoinSession::new(data_a.clone(), pool.clone());
        let b = SelfJoinSession::new(data_b, pool.clone());
        let out_a = a.query(2.0).unwrap();
        let one_snapshot = pool.memory_ledger().total();
        assert!(one_snapshot > 0);
        // Budget fits roughly one snapshot: serving b must evict a's.
        pool.memory_ledger()
            .set_budget(Some(one_snapshot + one_snapshot / 2));
        b.query(2.0).unwrap();
        assert!(pool.memory_ledger().total() <= one_snapshot + one_snapshot / 2);
        assert_eq!(a.stats().snapshot_evictions, 1, "a's snapshot was LRU");
        assert_eq!(pool.memory_ledger().evictions(), 1);
        // a still answers exactly, re-uploading (and evicting b in turn).
        let again = a.query(2.0).unwrap();
        assert_eq!(out_a.table, again.table);
        assert_eq!(a.stats().snapshot_reuploads, 1);
    }

    #[test]
    fn query_on_pins_the_device() {
        let data = uniform(2, 700, 86);
        let pool = DevicePool::titan_x(3);
        let session = SelfJoinSession::new(data.clone(), pool.clone());
        let out = session.query_on(2.0, 2).unwrap();
        assert_eq!(out.device, 2);
        assert!(pool.device(2).used_bytes() > 0, "snapshot on device 2");
        assert_eq!(pool.device(0).used_bytes(), 0);
        let fresh = GpuSelfJoin::default_device().run(&data, 2.0).unwrap();
        assert_eq!(out.table, fresh.table);
        assert_eq!(pool.active_leases(), vec![0, 0, 0], "lease returned");
    }

    #[test]
    fn projected_cost_calibrates_from_served_queries() {
        let data = uniform(2, 1500, 87);
        let session = SelfJoinSession::single_device(data);
        let eps = 2.0;
        // Cold: a prior, not a measurement.
        let cold = session.projected_cost(eps);
        assert!(!cold.calibrated);
        assert!(cold.needs_build);
        let out = session.query(eps).unwrap();
        // Warm with the exact count cached: calibrated, no build needed.
        let warm = session.projected_cost(eps);
        assert!(warm.calibrated);
        assert!(!warm.needs_build);
        assert_eq!(warm.expected_pairs, out.report.batching.actual_pairs);
        assert!(warm.modeled > Duration::ZERO);
        // Projection for the cached ε tracks the observed modeled cost
        // within a loose band (same model that was calibrated from it).
        let observed = out.report.modeled_total.as_secs_f64();
        let projected = warm.modeled.as_secs_f64();
        assert!(
            projected < observed * 3.0,
            "projected {projected} vs observed {observed}"
        );
        // In-band ε′ without a cached count: scaled from the nearest ε.
        let shrunk = session.projected_cost(eps * 0.8);
        assert!(shrunk.calibrated);
        assert!(shrunk.expected_pairs < warm.expected_pairs);
        assert!(!shrunk.needs_build);
        // Out-of-band ε: build cost folds in, still calibrated (one build
        // has been observed).
        let grown = session.projected_cost(eps * 4.0);
        assert!(grown.needs_build);
        assert!(grown.calibrated);
        assert!(grown.modeled > shrunk.modeled);
    }

    #[test]
    fn session_ids_are_unique() {
        let a = SelfJoinSession::single_device(uniform(2, 10, 88));
        let b = SelfJoinSession::single_device(uniform(2, 10, 89));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "reuse_floor")]
    fn bad_reuse_floor_rejected() {
        let _ = SelfJoinSession::single_device(uniform(2, 10, 81)).with_config(SessionConfig {
            reuse_floor: 0.0,
            ..SessionConfig::default()
        });
    }

    #[test]
    fn unpinned_query_retries_through_transient_fault() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let data = uniform(2, 600, 90);
        let pool = DevicePool::titan_x(1);
        // Launch op 1 = warm query; op 3 fails the second query's launch
        // once (op 2 is its estimate... ops count uploads too, so place
        // the transient on every op in a window to be sure it fires).
        pool.inject_faults(&FaultPlan::new(vec![FaultEvent {
            device: 0,
            after_ops: 3,
            kind: FaultKind::Transient,
        }]));
        let session = SelfJoinSession::new(data.clone(), pool);
        let eps = 2.5;
        let warm = session.query(eps).unwrap();
        // The transient fires somewhere in the next queries; all of them
        // must still answer, exactly.
        let fresh = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        for _ in 0..3 {
            let out = session.query(eps).unwrap();
            assert_eq!(out.table, fresh.table);
        }
        assert_eq!(warm.table, fresh.table);
    }

    #[test]
    fn crash_invalidates_snapshot_and_fails_over() {
        use sim_gpu::{FaultEvent, FaultKind, FaultPlan};
        let data = uniform(2, 800, 91);
        let pool = DevicePool::titan_x(2);
        let session = SelfJoinSession::new(data.clone(), pool.clone());
        let eps = 2.0;
        let fresh = GpuSelfJoin::default_device().run(&data, eps).unwrap();
        // Warm both devices fault-free.
        session.query_on(eps, 0).unwrap();
        session.query_on(eps, 1).unwrap();
        assert_eq!(session.stats().snapshot_uploads, 2);
        // Crash device 1 on its next op; it never heals.
        pool.inject_faults(&FaultPlan::new(vec![FaultEvent {
            device: 1,
            after_ops: 1,
            kind: FaultKind::Crash {
                heal_after_probes: u32::MAX,
            },
        }]));
        // The pinned path surfaces the fault and invalidates the snapshot.
        let err = session.query_on(eps, 1).unwrap_err();
        assert!(err.is_fault());
        let stats = session.stats();
        assert_eq!(stats.snapshot_invalidations, 1);
        // The unpinned path fails over to the survivor transparently.
        let out = session.query(eps).unwrap();
        assert_eq!(out.device, 0);
        assert_eq!(out.table, fresh.table);
        assert!(!pool.is_healthy(1));
    }
}
