//! Device-resident copy of the grid index.
//!
//! Mirrors the paper's kernel inputs (`D`, `A`, `G`, `B`, `M`, ε) as
//! capacity-accounted device buffers plus small scalars that a CUDA kernel
//! would receive by value. The mask arrays `M_j` are flattened into one
//! buffer with per-dimension offsets.

use crate::grid::{CellRange, GridIndex};
use crate::linearize::MAX_DIM;
use sim_gpu::{Device, DeviceBuffer, OutOfMemory};
use sj_datasets::Dataset;

/// The grid index and point data uploaded to the simulated device.
#[derive(Debug)]
pub struct DeviceGrid {
    /// Dimensionality `n`.
    pub dim: usize,
    /// Search radius / cell width ε.
    pub epsilon: f64,
    /// Number of indexed points `|D|`.
    pub num_points: usize,
    /// Grid origin per dimension.
    pub gmin: [f64; MAX_DIM],
    /// Cell counts `|g_j]` per dimension.
    pub cells_per_dim: [u64; MAX_DIM],
    /// Flat row-major point coordinates (`D`), indexed by original id.
    pub coords: DeviceBuffer<f64>,
    /// Cell-major coordinate snapshot, indexed by `A`-slot: slot `s`'s
    /// point (`A[s]`) has its coordinates at `[s * dim, (s + 1) * dim)`,
    /// so a cell's points are one contiguous scan (see
    /// [`GridIndex::reordered_coords`]).
    pub reordered: DeviceBuffer<f64>,
    /// Point ids grouped by cell (`A`).
    pub a: DeviceBuffer<u32>,
    /// Sorted non-empty-cell linear ids (`B`).
    pub b: DeviceBuffer<u64>,
    /// Per-cell point ranges (`G`).
    pub g: DeviceBuffer<CellRange>,
    /// Flattened mask arrays (`M_1 ‖ M_2 ‖ …`).
    pub m_values: DeviceBuffer<u32>,
    /// `m_offsets[j]..m_offsets[j+1]` slices `m_values` for dimension `j`.
    pub m_offsets: [usize; MAX_DIM + 1],
}

impl DeviceGrid {
    /// Uploads a host grid index and its dataset to the device.
    pub fn upload(device: &Device, data: &Dataset, grid: &GridIndex) -> Result<Self, OutOfMemory> {
        let dim = grid.dim();
        assert_eq!(data.dim(), dim, "dataset/grid dimensionality mismatch");
        let mut gmin = [0.0; MAX_DIM];
        gmin[..dim].copy_from_slice(grid.gmin());
        let mut cells_per_dim = [1u64; MAX_DIM];
        cells_per_dim[..dim].copy_from_slice(grid.cells_per_dim());

        let mut m_flat = Vec::new();
        let mut m_offsets = [0usize; MAX_DIM + 1];
        for (j, off) in m_offsets.iter_mut().enumerate().take(dim) {
            *off = m_flat.len();
            m_flat.extend_from_slice(grid.m(j));
        }
        for off in m_offsets.iter_mut().skip(dim) {
            *off = m_flat.len();
        }

        Ok(Self {
            dim,
            epsilon: grid.epsilon(),
            num_points: data.len(),
            gmin,
            cells_per_dim,
            coords: device.alloc_from_host(data.coords())?,
            reordered: device.alloc_from_host(grid.reordered_coords())?,
            a: device.alloc_from_host(grid.a())?,
            b: device.alloc_from_host(grid.b())?,
            g: device.alloc_from_host(grid.g())?,
            m_values: device.alloc_from_host(&m_flat)?,
            m_offsets,
        })
    }

    /// Exact bytes [`Self::upload`] will charge to the device for this
    /// data/grid pair — computable *before* allocating, so a budgeted
    /// caller can make room first (mirrors the buffer list in `upload`).
    pub fn projected_bytes(data: &Dataset, grid: &GridIndex) -> usize {
        let m_total: usize = (0..grid.dim()).map(|j| grid.m(j).len()).sum();
        std::mem::size_of_val(data.coords())
            + std::mem::size_of_val(grid.reordered_coords())
            + std::mem::size_of_val(grid.a())
            + std::mem::size_of_val(grid.b())
            + std::mem::size_of_val(grid.g())
            + m_total * std::mem::size_of::<u32>()
    }

    /// Bytes uploaded host→device (for the transfer-overlap model).
    pub fn h2d_bytes(&self) -> usize {
        self.coords.size_bytes()
            + self.reordered.size_bytes()
            + self.a.size_bytes()
            + self.b.size_bytes()
            + self.g.size_bytes()
            + self.m_values.size_bytes()
    }

    /// The mask slice bounds for dimension `j`.
    #[inline]
    pub fn mask_bounds(&self, j: usize) -> (usize, usize) {
        (self.m_offsets[j], self.m_offsets[j + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_gpu::DeviceSpec;
    use sj_datasets::synthetic::uniform;

    #[test]
    fn upload_mirrors_host_grid() {
        let data = uniform(3, 500, 3);
        let grid = GridIndex::build(&data, 10.0).unwrap();
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let dg = DeviceGrid::upload(&dev, &data, &grid).unwrap();
        assert_eq!(dg.dim, 3);
        assert_eq!(dg.num_points, 500);
        assert_eq!(dg.b.as_slice(), grid.b());
        assert_eq!(dg.a.as_slice(), grid.a());
        assert_eq!(dg.g.as_slice(), grid.g());
        assert_eq!(dg.coords.as_slice(), data.coords());
        assert_eq!(dg.reordered.as_slice(), grid.reordered_coords());
        for j in 0..3 {
            let (lo, hi) = dg.mask_bounds(j);
            assert_eq!(&dg.m_values.as_slice()[lo..hi], grid.m(j));
        }
        assert!(dg.h2d_bytes() > 0);
        assert_eq!(
            dev.used_bytes(),
            dg.h2d_bytes(),
            "device accounting must match uploaded bytes"
        );
        assert_eq!(
            DeviceGrid::projected_bytes(&data, &grid),
            dg.h2d_bytes(),
            "projection must match the actual upload exactly"
        );
    }

    #[test]
    fn upload_fails_on_tiny_device() {
        let data = uniform(2, 100_000, 4);
        let grid = GridIndex::build(&data, 1.0).unwrap();
        let dev = Device::new(DeviceSpec::small_test_device());
        // 100k points × 2 dims × 8 bytes = 1.6 MB coords alone; the small
        // test device has 8 MiB so this fits — shrink further.
        let tiny = Device::new(DeviceSpec::titan_x_with_memory(1024 * 1024));
        assert!(DeviceGrid::upload(&tiny, &data, &grid).is_err());
        assert!(DeviceGrid::upload(&dev, &data, &grid).is_ok());
    }
}
