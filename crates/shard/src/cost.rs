//! Ghost-aware per-shard work projection for the scheduler and the
//! shard-count chooser.
//!
//! One cheap host-side **calibration** pass over the full dataset — an
//! O(n) counting-grid binning plus an exact neighbor scan of a small
//! stride sample — yields a [`CostModel`]: measured per-candidate
//! evaluation cost, per-point grid-build cost, and per-sample neighbor /
//! candidate densities. From the model, [`project_partition`] prices any
//! candidate partition *without touching a device*: each shard's modeled
//! time covers its upload (owned + ghost bytes through the PCIe model),
//! its grid build, and its join scan over owned **and ghost** points —
//! the ghost-band join cost slabs hid from the old count-based estimate.
//!
//! The engine minimizes the LPT makespan of these projections over a
//! candidate set of shard counts ([`project_scaled`] prices candidates on
//! the calibration sample, so the chooser costs microseconds), and the
//! winning projection both schedules the shards and seeds each subplan's
//! result-size estimate — no per-shard estimation kernels run at all.

use crate::partition::{Partition, SamplePass};
use grid_join::error::GridBuildError;
use sim_gpu::{DeviceSpec, TransferModel};
use sj_datasets::{euclidean_sq, Dataset};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Measured host cost of one candidate evaluation is multiplied by this
/// factor to approximate the executed kernel's per-candidate cost (the
/// batched cell-major kernel amortizes far better than the calibration
/// scan's pointer-chasing shell walk), before division by
/// `DeviceSpec::throughput_vs_host_core` yields modeled device time.
///
/// Re-pinned against the cost-model audit: the original value of `10.0`
/// assumed the per-access tracing overhead of the pre-batching kernels,
/// and the audit's `shard_chooser` histogram measured projections 20–80×
/// over the modeled kernel stream. The closed-loop fit (see
/// [`eval_correction`] and the audit's unclamped log-ratio track) puts
/// the batched kernel's effective per-candidate cost at a fraction of
/// one calibration-scan evaluation on this class of host.
pub const TRACED_EVAL_OVERHEAD: f64 = 0.25;

/// Per-observation gain of the [`EvalCorrection`] geometric EWMA: each
/// measured run moves the correction this fraction of the remaining
/// (log-space) gap. One observation halves the error; a handful converge.
const EVAL_CORRECTION_GAIN: f64 = 0.5;

/// The correction factor and each observed ratio are clamped to
/// [1/this, this] — a single pathological measurement (timer glitch,
/// de-scheduled lane) cannot poison the model.
const EVAL_CORRECTION_CLAMP: f64 = 32.0;

/// A closed-loop multiplier on one cost-model component: after every
/// run the engine feeds a (projected, measured) pair for the component
/// into this geometric EWMA, and subsequent calibrations scale that
/// component by the accumulated factor. Two instances exist — one on
/// the eval cost ([`eval_correction`], the multiplier on
/// [`TRACED_EVAL_OVERHEAD`], observed against the executed batches'
/// modeled upload+kernel busy time) and one on the host grid-build rate
/// ([`grid_correction`], the multiplier on [`GRID_BUILD_FACTOR`],
/// observed against the measured per-shard index-build walls). The
/// static constants pin the model to this host class; the corrections
/// track the residual drift the audit observes (dataset shape, cache
/// behavior, load) so projections stay within the audited error band
/// instead of re-diverging. Steering each component with its own
/// measurement matters: a makespan-level loop on the eval knob alone
/// cannot fix a drifting host stage, it just drives the eval factor to
/// its clamp while the aggregate error persists.
///
/// Process-global, like the audit registry it mirrors: corrections
/// learned by one engine benefit the next, and `cargo test`'s concurrent
/// observers all push toward the same host-true ratio.
/// The correction is tracked **per dimensionality** (dimensions above
/// [`EVAL_CORRECTION_DIMS`] share the last slot): the audit shows the
/// drift is strongly dimension-dependent — the 2-D workloads' candidate
/// scans over-project while 6-D under-projects, because the
/// calibration's raw candidate inflation and the kernels' short-circuit
/// distance culling both scale with dimension. A single scalar would
/// converge to the geometric mean of the two and satisfy neither.
pub struct EvalCorrection {
    /// `f64` bits of the current factor, one slot per dimensionality.
    bits: [AtomicU64; EVAL_CORRECTION_DIMS],
}

/// Dimensionalities tracked separately; higher dims share the last slot.
const EVAL_CORRECTION_DIMS: usize = 8;

/// Bits of `1.0f64` — the identity correction.
const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;

/// `const` item so the atomic can seed an array repeat expression.
#[allow(clippy::declare_interior_mutable_const)]
const IDENTITY: AtomicU64 = AtomicU64::new(ONE_BITS);

static EVAL_CORRECTION: EvalCorrection = EvalCorrection {
    bits: [IDENTITY; EVAL_CORRECTION_DIMS],
};

static GRID_CORRECTION: EvalCorrection = EvalCorrection {
    bits: [IDENTITY; EVAL_CORRECTION_DIMS],
};

/// The process-wide correction on the modeled device-stage eval cost.
pub fn eval_correction() -> &'static EvalCorrection {
    &EVAL_CORRECTION
}

/// The process-wide correction on the projected host grid-build rate.
pub fn grid_correction() -> &'static EvalCorrection {
    &GRID_CORRECTION
}

impl Default for EvalCorrection {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalCorrection {
    /// A fresh identity correction (the global one is what calibration
    /// reads; locals exist for tests and offline fits).
    pub fn new() -> Self {
        EvalCorrection {
            bits: [IDENTITY; EVAL_CORRECTION_DIMS],
        }
    }

    fn slot(dim: usize) -> usize {
        dim.clamp(1, EVAL_CORRECTION_DIMS) - 1
    }

    /// Current multiplier applied to freshly calibrated `eval_cost`s for
    /// `dim`-dimensional data.
    pub fn factor(&self, dim: usize) -> f64 {
        f64::from_bits(self.bits[Self::slot(dim)].load(Ordering::Relaxed))
    }

    /// Folds one (projected, measured) pair into the correction:
    /// `factor ← factor · (measured/projected)^gain`, everything clamped.
    /// Non-positive or non-finite inputs are ignored.
    pub fn observe(&self, dim: usize, projected: Duration, measured: Duration) {
        let (p, m) = (projected.as_secs_f64(), measured.as_secs_f64());
        if !(p > 0.0 && m > 0.0 && p.is_finite() && m.is_finite()) {
            return;
        }
        let ratio = (m / p).clamp(1.0 / EVAL_CORRECTION_CLAMP, EVAL_CORRECTION_CLAMP);
        let step = ratio.powf(EVAL_CORRECTION_GAIN);
        let bits = &self.bits[Self::slot(dim)];
        let mut cur = bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) * step)
                .clamp(1.0 / EVAL_CORRECTION_CLAMP, EVAL_CORRECTION_CLAMP)
                .to_bits();
            match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Resets every dimension's correction to the identity (tests;
    /// fresh hosts).
    pub fn reset(&self) {
        for b in &self.bits {
            b.store(ONE_BITS, Ordering::Relaxed);
        }
    }
}

/// The per-shard `GridIndex::build` costs roughly this multiple of the
/// calibration pass's raw binning (sorting, masks, reordered snapshot).
pub const GRID_BUILD_FACTOR: f64 = 3.0;

/// Safety factor applied to projected pair counts before they seed the
/// batching scheme's buffer sizing (mirrors its own 1.25 estimator
/// margin; underestimates only cost an overflow-retry, not correctness).
pub const PAIR_SAFETY: f64 = 1.3;

/// UNICOMP scans roughly this fraction of the full 3^d candidate set
/// (half the neighbor cells plus the id-ordered half of the home cell).
pub const UNICOMP_WORK_FACTOR: f64 = 0.55;

/// Below this many calibration samples inside a shard's box, the
/// projection falls back to the global densities.
const MIN_SAMPLES_PER_SHARD: usize = 8;

/// Cap on the points the calibration pass bins into its counting grid.
/// Beyond this, a stride sample is binned instead and per-cell counts are
/// inflated by the sampling ratio — calibration cost stays bounded while
/// the join work it prices keeps growing with n, so the serial prelude
/// never swamps the parallel speedup it exists to enable.
const BIN_SAMPLE_CAP: usize = 4_096;

/// Approximate H2D bytes per uploaded point: coordinates (8·dim), the
/// reordered snapshot (8·dim), the `A` remap (4) and the amortized
/// `B`/`G`/mask share (~24).
pub fn bytes_per_point(dim: usize) -> usize {
    16 * dim + 28
}

/// Calibration of one (dataset, ε) pair: measured costs plus a stride
/// sample with exact per-point neighbor statistics. All projections for
/// every candidate shard count derive from this one pass.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The search radius the model was calibrated for.
    pub epsilon: f64,
    /// Points in the calibrated dataset.
    pub len: usize,
    /// Mean exact ε-neighbors per sampled point.
    pub avg_neighbors: f64,
    /// Mean candidate evaluations (3^d shell population) per sampled
    /// point.
    pub avg_candidates: f64,
    /// Global ids of the stride sample, in sample order.
    pub sample_ids: Vec<u32>,
    /// Exact ε-neighbor count per sample.
    pub sample_neighbors: Vec<u32>,
    /// Candidate (shell) count per sample.
    pub sample_candidates: Vec<u32>,
    /// The sample's coordinates — a dataset small enough to re-partition
    /// per candidate shard count in microseconds.
    pub sample_data: Dataset,
    /// Modeled device time per candidate evaluation.
    pub eval_cost: Duration,
    /// Modeled per-point cost of the shard's host grid build.
    pub grid_build_per_point: Duration,
    /// Non-empty counting-grid cells observed during binning.
    pub non_empty_cells: usize,
    /// Wall time of the calibration pass itself.
    pub build_time: Duration,
}

/// Calibrates a cost model for `data` at `epsilon` on a device described
/// by `spec`: O(n) counting-grid binning (timed → grid-build cost), then
/// an exact 3^d-shell neighbor scan of a ≤512-point stride sample
/// (timed → per-candidate evaluation cost). Standalone entry point; the
/// engine's fused prelude uses [`calibrate_from_sample`] instead so the
/// dataset is streamed once for partitioning and calibration together.
pub fn calibrate(
    data: &Dataset,
    epsilon: f64,
    spec: &DeviceSpec,
) -> Result<CostModel, GridBuildError> {
    let t0 = Instant::now();
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    if data.len() > u32::MAX as usize {
        return Err(GridBuildError::TooManyPoints(data.len()));
    }
    let n = data.len();
    let dim = data.dim();
    if n == 0 {
        return Ok(empty_model(epsilon, dim, t0));
    }
    // Compact the binned stride sample into a row-major buffer up front:
    // the timed passes below then measure the same access pattern the
    // per-shard grid builds see (contiguous shard-local rows), not
    // strided whole-dataset reads.
    let bstride = n.div_ceil(BIN_SAMPLE_CAP);
    let gids: Vec<u32> = (0..n as u32).step_by(bstride).collect();
    let mut rows = Vec::with_capacity(gids.len() * dim);
    for &g in &gids {
        rows.extend_from_slice(data.point(g as usize));
    }
    Ok(calibrate_core(epsilon, spec, n, dim, &gids, &rows, t0))
}

/// Calibrates from the partition prelude's [`SamplePass`] instead of
/// re-reading the dataset: the binned sample is a stride of the sample
/// pass's slots, so calibration costs O(sample) after the one shared
/// streaming read. [`CostModel::build_time`] covers only the work done
/// here — the caller accounts the shared sample pass once.
pub fn calibrate_from_sample(
    sp: &SamplePass,
    epsilon: f64,
    spec: &DeviceSpec,
) -> Result<CostModel, GridBuildError> {
    let t0 = Instant::now();
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    if sp.len == 0 {
        return Ok(empty_model(epsilon, sp.dim, t0));
    }
    let dim = sp.dim;
    let slot_stride = sp.ids.len().div_ceil(BIN_SAMPLE_CAP).max(1);
    let slots: Vec<usize> = (0..sp.ids.len()).step_by(slot_stride).collect();
    let gids: Vec<u32> = slots.iter().map(|&s| sp.ids[s]).collect();
    let mut rows = Vec::with_capacity(slots.len() * dim);
    for &s in &slots {
        for col in &sp.cols {
            rows.push(col[s]);
        }
    }
    Ok(calibrate_core(epsilon, spec, sp.len, dim, &gids, &rows, t0))
}

fn empty_model(epsilon: f64, dim: usize, t0: Instant) -> CostModel {
    CostModel {
        epsilon,
        len: 0,
        avg_neighbors: 0.0,
        avg_candidates: 0.0,
        sample_ids: Vec::new(),
        sample_neighbors: Vec::new(),
        sample_candidates: Vec::new(),
        sample_data: Dataset::new(dim),
        eval_cost: Duration::ZERO,
        grid_build_per_point: Duration::ZERO,
        non_empty_cells: 0,
        build_time: t0.elapsed(),
    }
}

/// The shared calibration body: `rows` is the binned sample (row-major,
/// one row per entry of `gids`), `n` the full dataset size it stands in
/// for.
fn calibrate_core(
    epsilon: f64,
    spec: &DeviceSpec,
    n: usize,
    dim: usize,
    gids: &[u32],
    rows: &[f64],
    t0: Instant,
) -> CostModel {
    // Counting-grid anchor from the *binned sample's* minima, not a full
    // O(n) min pass: the origin only anchors integer cell coordinates,
    // and points below a sampled min simply land in negative cells —
    // equally hashable. Keeps calibration strictly o(n).
    let mut mins = vec![f64::INFINITY; dim];
    for row in rows.chunks_exact(dim) {
        for (j, &x) in row.iter().enumerate() {
            mins[j] = mins[j].min(x);
        }
    }
    let cell_of = |p: &[f64], out: &mut [i64]| {
        for j in 0..dim {
            out[j] = ((p[j] - mins[j]) / epsilon).floor() as i64;
        }
    };
    // FNV-style combination of the integer cell coordinates. A hash
    // collision merges two cells' candidate lists — harmless for the
    // neighbor counts (exact distance check) and a rounding error on the
    // candidate counts.
    let key_of = |c: &[i64]| -> u64 {
        let mut k: u64 = 0xcbf2_9ce4_8422_2325;
        for &x in c {
            k = (k ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        k
    };

    // Timed binning pass — the raw ingredient of the grid-build cost.
    // Large datasets bin a stride sample (see [`BIN_SAMPLE_CAP`]); the
    // sampled cell populations estimate true populations after inflation
    // by the sampling ratio. Bins hold sample *slots* (row indices).
    let binned = gids.len();
    let inflate = n as f64 / binned as f64;
    let tb = Instant::now();
    let mut bins: HashMap<u64, Vec<u32>> = HashMap::with_capacity(binned / 2 + 16);
    let mut cbuf = vec![0i64; dim];
    for (slot, row) in rows.chunks_exact(dim).enumerate() {
        cell_of(row, &mut cbuf);
        bins.entry(key_of(&cbuf)).or_default().push(slot as u32);
    }
    let bin_wall = tb.elapsed();
    let non_empty_cells = bins.len();
    let grid_build_per_point =
        bin_wall.mul_f64(GRID_BUILD_FACTOR * grid_correction().factor(dim) / binned as f64);

    // Timed exact-neighbor scan of a stride sample: for each sample, the
    // 3^d adjacent shell through the counting grid, exact distance tests
    // for the neighbor count, shell population for the candidate count.
    // Counts observed on the sampled grid are inflated back to full-
    // density estimates.
    let sample_count = binned.min(512);
    let stride = (binned / sample_count).max(1);
    let eps_sq = epsilon * epsilon;
    let shells = 3usize.pow(dim as u32);
    let mut sample_ids = Vec::with_capacity(sample_count);
    let mut sample_neighbors = Vec::with_capacity(sample_count);
    let mut sample_candidates = Vec::with_capacity(sample_count);
    let mut sample_data = Dataset::new(dim);
    let mut total_candidates = 0u64;
    let mut total_neighbors = 0u64;
    let te = Instant::now();
    let mut nbuf = vec![0i64; dim];
    let mut raw_candidates = 0u64;
    for s in 0..sample_count {
        let slot = s * stride;
        let p = &rows[slot * dim..(slot + 1) * dim];
        cell_of(p, &mut cbuf);
        let mut cand = 0u64;
        let mut nb = 0u32;
        for m in 0..shells {
            let mut rem = m;
            for j in 0..dim {
                nbuf[j] = cbuf[j] + (rem % 3) as i64 - 1;
                rem /= 3;
            }
            if let Some(list) = bins.get(&key_of(&nbuf)) {
                cand += list.len() as u64;
                for &o in list {
                    let o = o as usize;
                    if o != slot && euclidean_sq(p, &rows[o * dim..(o + 1) * dim]) <= eps_sq {
                        nb += 1;
                    }
                }
            }
        }
        raw_candidates += cand;
        let cand = (cand as f64 * inflate).round() as u64;
        let nb = (nb as f64 * inflate).round() as u64;
        total_candidates += cand;
        total_neighbors += nb;
        sample_ids.push(gids[slot]);
        sample_neighbors.push(nb.min(u32::MAX as u64) as u32);
        sample_candidates.push(cand.min(u32::MAX as u64) as u32);
        sample_data.push(p);
    }
    let eval_wall = te.elapsed();
    // Per-evaluation cost from the *raw* (scanned) candidate count — the
    // inflated counts estimate full-density work, not work done here.
    // The audit-fed closed-loop correction rides on top of the static
    // overhead constant (see [`eval_correction`]).
    let host_per_eval = eval_wall.div_f64(raw_candidates.max(1) as f64);
    let eval_cost = host_per_eval.mul_f64(
        TRACED_EVAL_OVERHEAD * eval_correction().factor(dim) / spec.throughput_vs_host_core,
    );

    CostModel {
        epsilon,
        len: n,
        avg_neighbors: total_neighbors as f64 / sample_count as f64,
        avg_candidates: total_candidates as f64 / sample_count as f64,
        sample_ids,
        sample_neighbors,
        sample_candidates,
        sample_data,
        eval_cost,
        grid_build_per_point,
        non_empty_cells,
        build_time: t0.elapsed(),
    }
}

/// Projected execution cost of one shard, ghost work included.
#[derive(Clone, Copy, Debug)]
pub struct ShardCost {
    /// Shard index within the partition.
    pub shard: usize,
    /// Owned points.
    pub owned: usize,
    /// Halo ghost points.
    pub ghosts: usize,
    /// Projected directed result pairs over the full local dataset
    /// (safety factor included) — seeds the batching buffer sizing.
    pub predicted_pairs: u64,
    /// Projected candidate evaluations of the shard's join scan (owned
    /// and ghost queries both scan).
    pub scan_work: f64,
    /// Projected H2D bytes of the shard upload (owned + ghosts).
    pub upload_bytes: usize,
    /// The ghost share of [`Self::upload_bytes`] — the replication tax.
    pub ghost_upload_bytes: usize,
    /// Projected **host-stage** time: the shard's grid build, done on the
    /// host by the device's executor task. In a queue, a shard's host
    /// stage overlaps the *previous* shard's device stage.
    pub grid_time: Duration,
    /// Projected **device-stage** time: upload + join scan, modeled.
    pub device_time: Duration,
    /// Total isolated time (`grid_time + device_time`) — the LPT
    /// scheduling weight.
    pub modeled: Duration,
}

impl ShardCost {
    /// Points in the shard-local dataset (owned + ghosts).
    pub fn points(&self) -> usize {
        self.owned + self.ghosts
    }

    /// Scalar scheduling cost: modeled nanoseconds (≥ 1 so empty shards
    /// still round-robin instead of all piling onto device 0).
    pub fn cost(&self) -> u64 {
        (self.modeled.as_nanos() as u64).max(1)
    }
}

/// Prices every shard of a *full* partition: per-shard densities come
/// from the calibration samples falling inside the shard's box (global
/// fallback when too few land there).
pub fn project_partition(
    model: &CostModel,
    part: &Partition,
    spec: &DeviceSpec,
    unicomp: bool,
) -> Vec<ShardCost> {
    let transfer = spec.transfer_model();
    part.shards
        .iter()
        .map(|s| {
            let mut cnt = 0usize;
            let mut nb = 0.0;
            let mut cand = 0.0;
            for (i, p) in model.sample_data.iter().enumerate() {
                if s.owns(p) {
                    cnt += 1;
                    nb += model.sample_neighbors[i] as f64;
                    cand += model.sample_candidates[i] as f64;
                }
            }
            let (mu_n, mu_c) = if cnt >= MIN_SAMPLES_PER_SHARD {
                (nb / cnt as f64, cand / cnt as f64)
            } else {
                (model.avg_neighbors, model.avg_candidates)
            };
            project_shard(
                model,
                s.id,
                s.owned,
                s.ghosts(),
                mu_n,
                mu_c,
                unicomp,
                &transfer,
            )
        })
        .collect()
}

/// Prices a partition of the calibration *sample* as a stand-in for the
/// full dataset: per-shard owned/ghost counts scale by `scale` (≈ n /
/// sample size), densities come from the sample points directly (their
/// `global_ids` index the model's sample arrays). This is what lets the
/// shard-count chooser evaluate many candidate `k` without partitioning
/// the full dataset once per candidate.
pub fn project_scaled(
    model: &CostModel,
    sample_part: &Partition,
    scale: f64,
    spec: &DeviceSpec,
    unicomp: bool,
) -> Vec<ShardCost> {
    let transfer = spec.transfer_model();
    sample_part
        .shards
        .iter()
        .map(|s| {
            let mut nb = 0.0;
            let mut cand = 0.0;
            for &i in &s.global_ids[..s.owned] {
                nb += model.sample_neighbors[i as usize] as f64;
                cand += model.sample_candidates[i as usize] as f64;
            }
            let (mu_n, mu_c) = if s.owned >= MIN_SAMPLES_PER_SHARD {
                (nb / s.owned as f64, cand / s.owned as f64)
            } else {
                (model.avg_neighbors, model.avg_candidates)
            };
            let owned = (s.owned as f64 * scale).round() as usize;
            let ghosts = (s.ghosts() as f64 * scale).round() as usize;
            project_shard(model, s.id, owned, ghosts, mu_n, mu_c, unicomp, &transfer)
        })
        .collect()
}

/// Per-point cost of the materialize passes relative to the sample
/// pass's streaming read: the classify pass walks the cut tree and
/// band-tests every point, the gather re-streams and scatters rows —
/// both heavier than a min/max scan. Pinned against measured
/// materialize walls; the `shard_partition` audit tracks residual drift.
pub const MATERIALIZE_PASS_FACTOR: f64 = 2.0;

/// A single-shard "partition" is a whole-dataset clone: one sequential
/// memcpy, cheaper per point than the streaming scan.
pub const WHOLE_COPY_FACTOR: f64 = 0.5;

/// Models the cost of *making* a candidate partition, the term the
/// shard-count chooser folds into its objective so the argmin stops
/// pretending shards are free: the measured speculative cut-tree build
/// plus the two chunked materialize passes (and the projected ghost
/// tail) priced at the sample pass's measured per-point streaming rate,
/// per lane. `ghosts_scaled` is the candidate's projected ghost-point
/// total (from the scaled sample projection).
pub fn modeled_partition_cost(
    sp: &SamplePass,
    cut_build: Duration,
    num_shards: usize,
    lanes: usize,
    ghosts_scaled: f64,
) -> Duration {
    if num_shards <= 1 {
        return sp.per_point.mul_f64(sp.len as f64 * WHOLE_COPY_FACTOR);
    }
    let lanes = lanes.max(1) as f64;
    let per_lane = (sp.len as f64 / lanes).ceil();
    let pass_points = 2.0 * per_lane + ghosts_scaled.max(0.0) / lanes;
    cut_build + sp.per_point.mul_f64(pass_points * MATERIALIZE_PASS_FACTOR)
}

#[allow(clippy::too_many_arguments)]
fn project_shard(
    model: &CostModel,
    shard: usize,
    owned: usize,
    ghosts: usize,
    mu_neighbors: f64,
    mu_candidates: f64,
    unicomp: bool,
    transfer: &TransferModel,
) -> ShardCost {
    let dim = model.sample_data.dim();
    let local = owned + ghosts;
    let predicted_pairs = (mu_neighbors * local as f64 * PAIR_SAFETY).ceil() as u64;
    let work_factor = if unicomp { UNICOMP_WORK_FACTOR } else { 1.0 };
    let scan_work = local as f64 * mu_candidates * work_factor;
    let upload_bytes = local * bytes_per_point(dim);
    let ghost_upload_bytes = ghosts * bytes_per_point(dim);
    let grid_time = model.grid_build_per_point.mul_f64(local as f64);
    let device_time = transfer.time(upload_bytes) + model.eval_cost.mul_f64(scan_work);
    ShardCost {
        shard,
        owned,
        ghosts,
        predicted_pairs,
        scan_work,
        upload_bytes,
        ghost_upload_bytes,
        grid_time,
        device_time,
        modeled: grid_time + device_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use grid_join::GridIndex;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn projection_close_to_truth_on_uniform_data() {
        let data = uniform(2, 4000, 22);
        let eps = 3.0;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let part = partition(&data, eps, 2).unwrap();
        let costs = project_partition(&model, &part, &spec, true);
        for (c, s) in costs.iter().zip(&part.shards) {
            let grid = GridIndex::build(&s.data, eps).unwrap();
            let truth = grid_join::host_self_join(&s.data, &grid).total_pairs() as f64;
            assert!(
                c.predicted_pairs as f64 >= truth * 0.6,
                "under: {c:?} truth {truth}"
            );
            assert!(
                c.predicted_pairs as f64 <= truth * 3.0,
                "over: {c:?} truth {truth}"
            );
            assert_eq!(c.owned, s.owned);
            assert_eq!(c.ghosts, s.ghosts());
            assert!(c.modeled > Duration::ZERO);
        }
    }

    #[test]
    fn cost_tracks_density_not_count() {
        // Tight clusters: equal-count shards, wildly different pair
        // counts. The projected cost must see the difference without any
        // device kernel running.
        let data = clustered(2, 3000, 3, 1.0, 0.04, 21);
        let eps = 0.4;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let part = partition(&data, eps, 3).unwrap();
        let costs = project_partition(&model, &part, &spec, true);
        assert_eq!(costs.len(), part.shards.len());
        // Density shows up in the device stage (the join scan); the host
        // grid build scales with point count and is balanced here by
        // construction.
        let dev = |c: &ShardCost| c.device_time.as_nanos().max(1);
        let max = costs.iter().map(dev).max().unwrap();
        let min = costs.iter().map(dev).min().unwrap();
        assert!(
            max as f64 / min as f64 > 1.2,
            "projection blind to density: {costs:?}"
        );
    }

    #[test]
    fn ghost_bytes_counted_separately() {
        let data = uniform(2, 3000, 23);
        let eps = 2.0;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let part = partition(&data, eps, 4).unwrap();
        let costs = project_partition(&model, &part, &spec, true);
        assert!(part.ghost_points() > 0, "4 shards must replicate");
        for (c, s) in costs.iter().zip(&part.shards) {
            assert_eq!(c.ghost_upload_bytes, s.ghosts() * bytes_per_point(2));
            assert!(c.upload_bytes >= c.ghost_upload_bytes);
        }
    }

    #[test]
    fn scaled_projection_tracks_full_projection() {
        // Pricing the sample partition at scale must land in the same
        // ballpark as pricing the real partition — it drives the shard-
        // count chooser, so a gross disagreement would mis-size the run.
        let data = uniform(2, 8000, 24);
        let eps = 1.5;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let scale = data.len() as f64 / model.sample_data.len() as f64;
        let k = 4;
        let sample_part = partition(&model.sample_data, eps, k).unwrap();
        let scaled = project_scaled(&model, &sample_part, scale, &spec, true);
        let full = project_partition(&model, &partition(&data, eps, k).unwrap(), &spec, true);
        let sum = |cs: &[ShardCost]| cs.iter().map(|c| c.modeled).sum::<Duration>();
        let (a, b) = (sum(&scaled).as_secs_f64(), sum(&full).as_secs_f64());
        assert!(
            a / b < 4.0 && b / a < 4.0,
            "scaled {a:.6}s vs full {b:.6}s disagree grossly"
        );
    }

    #[test]
    fn empty_dataset_calibrates_to_zero() {
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&Dataset::new(2), 1.0, &spec).unwrap();
        assert_eq!(model.len, 0);
        assert_eq!(model.avg_neighbors, 0.0);
        assert_eq!(model.eval_cost, Duration::ZERO);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let spec = DeviceSpec::titan_x_pascal();
        let data = uniform(2, 10, 25);
        assert!(matches!(
            calibrate(&data, -1.0, &spec),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
        let sp = crate::partition::sample_pass(&data, 1).unwrap();
        assert!(matches!(
            calibrate_from_sample(&sp, f64::NAN, &spec),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn fused_calibration_matches_two_pass() {
        // Below both sample caps the fused path and the standalone pass
        // see the identical point set, so every derived statistic must
        // agree exactly; only the timed costs may differ.
        let data = clustered(3, 3000, 4, 2.0, 0.1, 26);
        let eps = 0.5;
        let spec = DeviceSpec::titan_x_pascal();
        let two_pass = calibrate(&data, eps, &spec).unwrap();
        let sp = crate::partition::sample_pass(&data, 4).unwrap();
        let fused = calibrate_from_sample(&sp, eps, &spec).unwrap();
        assert_eq!(fused.len, two_pass.len);
        assert_eq!(fused.sample_ids, two_pass.sample_ids);
        assert_eq!(fused.sample_neighbors, two_pass.sample_neighbors);
        assert_eq!(fused.sample_candidates, two_pass.sample_candidates);
        assert_eq!(fused.avg_neighbors, two_pass.avg_neighbors);
        assert_eq!(fused.avg_candidates, two_pass.avg_candidates);
        assert_eq!(fused.non_empty_cells, two_pass.non_empty_cells);
        assert_eq!(fused.sample_data.coords(), two_pass.sample_data.coords());
    }

    #[test]
    fn fused_calibration_is_lane_invariant() {
        let data = uniform(2, 5000, 27);
        let spec = DeviceSpec::titan_x_pascal();
        let base = calibrate_from_sample(
            &crate::partition::sample_pass(&data, 1).unwrap(),
            1.5,
            &spec,
        )
        .unwrap();
        for lanes in [2, 5, 16] {
            let m = calibrate_from_sample(
                &crate::partition::sample_pass(&data, lanes).unwrap(),
                1.5,
                &spec,
            )
            .unwrap();
            assert_eq!(m.sample_ids, base.sample_ids, "lanes = {lanes}");
            assert_eq!(m.sample_neighbors, base.sample_neighbors);
            assert_eq!(m.avg_candidates, base.avg_candidates);
        }
    }

    #[test]
    fn correction_converges_geometrically() {
        // A local instance (the global one is shared with concurrently
        // running engine tests). The correction lives in a feedback
        // loop: each projection already embeds the current factor, so
        // emulate that — a raw 4× under-projection must walk the factor
        // to ≈4 (the loop's fixed point), and reset restores 1.
        let c = EvalCorrection::new();
        assert_eq!(c.factor(2), 1.0);
        let raw = Duration::from_millis(25);
        let measured = Duration::from_millis(100);
        for _ in 0..12 {
            c.observe(2, raw.mul_f64(c.factor(2)), measured);
        }
        assert!((c.factor(2) - 4.0).abs() < 0.1, "factor {}", c.factor(2));
        // Slots are independent: 6-D never observed anything.
        assert_eq!(c.factor(6), 1.0);
        let settled = c.factor(2);
        c.observe(2, Duration::ZERO, Duration::from_millis(1)); // ignored
        assert_eq!(c.factor(2), settled);
        c.reset();
        assert_eq!(c.factor(2), 1.0);
    }

    #[test]
    fn correction_is_clamped() {
        let c = EvalCorrection::new();
        for _ in 0..64 {
            c.observe(3, Duration::from_nanos(1), Duration::from_secs(10));
        }
        assert_eq!(c.factor(3), EVAL_CORRECTION_CLAMP);
        for _ in 0..128 {
            c.observe(3, Duration::from_secs(10), Duration::from_nanos(1));
        }
        assert_eq!(c.factor(3), 1.0 / EVAL_CORRECTION_CLAMP);
        // Out-of-range dims share the clamped end slots rather than
        // panicking.
        assert_eq!(c.factor(0), 1.0);
        assert_eq!(c.factor(64), 1.0);
        c.observe(64, Duration::from_nanos(1), Duration::from_secs(10));
        assert!(c.factor(64) > 1.0);
        assert_eq!(c.factor(64), c.factor(EVAL_CORRECTION_DIMS));
    }
}
