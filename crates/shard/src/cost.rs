//! Per-shard work prediction for the scheduler.
//!
//! Reuses the result-set batching scheme's on-device selectivity
//! estimator ([`grid_join::batching::estimate_result_size`]): a sampled
//! count kernel predicts each shard's directed result pairs, and the
//! predicted kernel work — points processed plus pairs produced — becomes
//! the scheduling cost. On skewed datasets two shards with equal point
//! counts can differ by orders of magnitude in pair count; scheduling by
//! this cost, not by `|shard|`, is what keeps the devices balanced.
//!
//! The prediction is also threaded into the shard's join via
//! [`grid_join::BatchingConfig::precomputed_estimate`], so the estimation
//! kernel runs once per shard, not twice.

use crate::partition::Shard;
use grid_join::batching::estimate_result_size;
use grid_join::{BatchingConfig, DeviceGrid, GridIndex, SelfJoinError};
use sim_gpu::Device;
use std::time::Duration;

/// Predicted execution cost of one shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardCost {
    /// Shard index within the partition.
    pub shard: usize,
    /// Points in the shard-local dataset (owned + ghosts).
    pub points: usize,
    /// Predicted directed result pairs (after the estimator's safety
    /// factor), over the full local dataset.
    pub predicted_pairs: u64,
    /// Host wall time of the estimation pass.
    pub estimate_wall: Duration,
    /// Modeled device time of the estimation kernel.
    pub estimate_modeled: Duration,
}

impl ShardCost {
    /// Scalar scheduling cost: kernel work scales with the points scanned
    /// plus the pairs produced (result writes dominate dense shards).
    pub fn cost(&self) -> u64 {
        self.points as u64 + self.predicted_pairs
    }
}

/// Estimates one shard's cost on `device` using the shard's prebuilt
/// index. The device grid is uploaded for the duration of the estimate
/// and freed before returning.
pub fn estimate_shard_cost(
    device: &Device,
    shard: &Shard,
    grid: &GridIndex,
    cfg: &BatchingConfig,
) -> Result<ShardCost, SelfJoinError> {
    let dg = DeviceGrid::upload(device, &shard.data, grid)?;
    let (predicted_pairs, _sample, estimate_wall, estimate_modeled) =
        estimate_result_size(device, &dg, cfg, None)?;
    Ok(ShardCost {
        shard: shard.id,
        points: shard.data.len(),
        predicted_pairs,
        estimate_wall,
        estimate_modeled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use sim_gpu::DeviceSpec;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn cost_tracks_density_not_count() {
        // Three tight clusters on a line: equal-count shards, but the one
        // holding a cluster at small ε has far more pairs than a sparse
        // one. The estimator must see the difference.
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = clustered(2, 3000, 3, 1.0, 0.04, 21);
        let part = partition(&data, 0.4, 3).unwrap();
        let cfg = BatchingConfig::default();
        let costs: Vec<ShardCost> = part
            .shards
            .iter()
            .map(|s| {
                let grid = GridIndex::build(&s.data, 0.4).unwrap();
                estimate_shard_cost(&dev, s, &grid, &cfg).unwrap()
            })
            .collect();
        assert_eq!(costs.len(), part.shards.len());
        for (c, s) in costs.iter().zip(&part.shards) {
            assert_eq!(c.points, s.data.len());
        }
        // All memory released after estimation.
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn prediction_close_to_truth_on_uniform_shard() {
        let dev = Device::new(DeviceSpec::titan_x_pascal());
        let data = uniform(2, 4000, 22);
        let part = partition(&data, 3.0, 2).unwrap();
        let shard = &part.shards[0];
        let grid = GridIndex::build(&shard.data, 3.0).unwrap();
        let cost = estimate_shard_cost(&dev, shard, &grid, &BatchingConfig::default()).unwrap();
        let truth = grid_join::host_self_join(&shard.data, &grid).total_pairs() as f64;
        // The estimator carries a 1.25 safety factor.
        assert!(
            cost.predicted_pairs as f64 >= truth * 0.8,
            "under: {cost:?} truth {truth}"
        );
        assert!(
            cost.predicted_pairs as f64 <= truth * 2.5,
            "over: {cost:?} truth {truth}"
        );
        assert!(cost.cost() >= cost.predicted_pairs);
    }
}
