//! Ghost-aware per-shard work projection for the scheduler and the
//! shard-count chooser.
//!
//! One cheap host-side **calibration** pass over the full dataset — an
//! O(n) counting-grid binning plus an exact neighbor scan of a small
//! stride sample — yields a [`CostModel`]: measured per-candidate
//! evaluation cost, per-point grid-build cost, and per-sample neighbor /
//! candidate densities. From the model, [`project_partition`] prices any
//! candidate partition *without touching a device*: each shard's modeled
//! time covers its upload (owned + ghost bytes through the PCIe model),
//! its grid build, and its join scan over owned **and ghost** points —
//! the ghost-band join cost slabs hid from the old count-based estimate.
//!
//! The engine minimizes the LPT makespan of these projections over a
//! candidate set of shard counts ([`project_scaled`] prices candidates on
//! the calibration sample, so the chooser costs microseconds), and the
//! winning projection both schedules the shards and seeds each subplan's
//! result-size estimate — no per-shard estimation kernels run at all.

use crate::partition::Partition;
use grid_join::error::GridBuildError;
use sim_gpu::{DeviceSpec, TransferModel};
use sj_datasets::{euclidean_sq, Dataset};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Measured host cost of one candidate evaluation is multiplied by this
/// factor to approximate the *traced* kernel's host cost (the substrate
/// routes every access through the tracer), before division by
/// `DeviceSpec::throughput_vs_host_core` yields modeled device time. A
/// model constant, tuned against the executed pipeline's timings.
pub const TRACED_EVAL_OVERHEAD: f64 = 10.0;

/// The per-shard `GridIndex::build` costs roughly this multiple of the
/// calibration pass's raw binning (sorting, masks, reordered snapshot).
pub const GRID_BUILD_FACTOR: f64 = 3.0;

/// Safety factor applied to projected pair counts before they seed the
/// batching scheme's buffer sizing (mirrors its own 1.25 estimator
/// margin; underestimates only cost an overflow-retry, not correctness).
pub const PAIR_SAFETY: f64 = 1.3;

/// UNICOMP scans roughly this fraction of the full 3^d candidate set
/// (half the neighbor cells plus the id-ordered half of the home cell).
pub const UNICOMP_WORK_FACTOR: f64 = 0.55;

/// Below this many calibration samples inside a shard's box, the
/// projection falls back to the global densities.
const MIN_SAMPLES_PER_SHARD: usize = 8;

/// Cap on the points the calibration pass bins into its counting grid.
/// Beyond this, a stride sample is binned instead and per-cell counts are
/// inflated by the sampling ratio — calibration cost stays bounded while
/// the join work it prices keeps growing with n, so the serial prelude
/// never swamps the parallel speedup it exists to enable.
const BIN_SAMPLE_CAP: usize = 4_096;

/// Approximate H2D bytes per uploaded point: coordinates (8·dim), the
/// reordered snapshot (8·dim), the `A` remap (4) and the amortized
/// `B`/`G`/mask share (~24).
pub fn bytes_per_point(dim: usize) -> usize {
    16 * dim + 28
}

/// Calibration of one (dataset, ε) pair: measured costs plus a stride
/// sample with exact per-point neighbor statistics. All projections for
/// every candidate shard count derive from this one pass.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The search radius the model was calibrated for.
    pub epsilon: f64,
    /// Points in the calibrated dataset.
    pub len: usize,
    /// Mean exact ε-neighbors per sampled point.
    pub avg_neighbors: f64,
    /// Mean candidate evaluations (3^d shell population) per sampled
    /// point.
    pub avg_candidates: f64,
    /// Global ids of the stride sample, in sample order.
    pub sample_ids: Vec<u32>,
    /// Exact ε-neighbor count per sample.
    pub sample_neighbors: Vec<u32>,
    /// Candidate (shell) count per sample.
    pub sample_candidates: Vec<u32>,
    /// The sample's coordinates — a dataset small enough to re-partition
    /// per candidate shard count in microseconds.
    pub sample_data: Dataset,
    /// Modeled device time per candidate evaluation.
    pub eval_cost: Duration,
    /// Modeled per-point cost of the shard's host grid build.
    pub grid_build_per_point: Duration,
    /// Non-empty counting-grid cells observed during binning.
    pub non_empty_cells: usize,
    /// Wall time of the calibration pass itself.
    pub build_time: Duration,
}

/// Calibrates a cost model for `data` at `epsilon` on a device described
/// by `spec`: O(n) counting-grid binning (timed → grid-build cost), then
/// an exact 3^d-shell neighbor scan of a ≤1024-point stride sample
/// (timed → per-candidate evaluation cost).
pub fn calibrate(
    data: &Dataset,
    epsilon: f64,
    spec: &DeviceSpec,
) -> Result<CostModel, GridBuildError> {
    let t0 = Instant::now();
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    if data.len() > u32::MAX as usize {
        return Err(GridBuildError::TooManyPoints(data.len()));
    }
    let n = data.len();
    let dim = data.dim();
    if n == 0 {
        return Ok(CostModel {
            epsilon,
            len: 0,
            avg_neighbors: 0.0,
            avg_candidates: 0.0,
            sample_ids: Vec::new(),
            sample_neighbors: Vec::new(),
            sample_candidates: Vec::new(),
            sample_data: Dataset::new(dim),
            eval_cost: Duration::ZERO,
            grid_build_per_point: Duration::ZERO,
            non_empty_cells: 0,
            build_time: t0.elapsed(),
        });
    }

    // Counting-grid anchor from the *binned sample's* minima, not a full
    // O(n) min pass: the origin only anchors integer cell coordinates,
    // and points below a sampled min simply land in negative cells —
    // equally hashable. Keeps calibration strictly o(n).
    let bstride = n.div_ceil(BIN_SAMPLE_CAP);
    let binned_ids: Vec<u32> = (0..n as u32).step_by(bstride).collect();
    let mut mins = vec![f64::INFINITY; dim];
    for &g in &binned_ids {
        for (j, &x) in data.point(g as usize).iter().enumerate() {
            mins[j] = mins[j].min(x);
        }
    }
    let cell_of = |p: &[f64], out: &mut [i64]| {
        for j in 0..dim {
            out[j] = ((p[j] - mins[j]) / epsilon).floor() as i64;
        }
    };
    // FNV-style combination of the integer cell coordinates. A hash
    // collision merges two cells' candidate lists — harmless for the
    // neighbor counts (exact distance check) and a rounding error on the
    // candidate counts.
    let key_of = |c: &[i64]| -> u64 {
        let mut k: u64 = 0xcbf2_9ce4_8422_2325;
        for &x in c {
            k = (k ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        k
    };

    // Timed binning pass — the raw ingredient of the grid-build cost.
    // Large datasets bin a stride sample (see [`BIN_SAMPLE_CAP`]); the
    // sampled cell populations estimate true populations after inflation
    // by the sampling ratio.
    let binned = binned_ids.len();
    let inflate = n as f64 / binned as f64;
    let tb = Instant::now();
    let mut bins: HashMap<u64, Vec<u32>> = HashMap::with_capacity(binned / 2 + 16);
    let mut cbuf = vec![0i64; dim];
    for &g in &binned_ids {
        cell_of(data.point(g as usize), &mut cbuf);
        bins.entry(key_of(&cbuf)).or_default().push(g);
    }
    let bin_wall = tb.elapsed();
    let non_empty_cells = bins.len();
    let grid_build_per_point = bin_wall.mul_f64(GRID_BUILD_FACTOR / binned as f64);

    // Timed exact-neighbor scan of a stride sample: for each sample, the
    // 3^d adjacent shell through the counting grid, exact distance tests
    // for the neighbor count, shell population for the candidate count.
    // Counts observed on the sampled grid are inflated back to full-
    // density estimates.
    let sample_count = binned.min(512);
    let stride = (binned / sample_count).max(1);
    let eps_sq = epsilon * epsilon;
    let shells = 3usize.pow(dim as u32);
    let mut sample_ids = Vec::with_capacity(sample_count);
    let mut sample_neighbors = Vec::with_capacity(sample_count);
    let mut sample_candidates = Vec::with_capacity(sample_count);
    let mut sample_data = Dataset::new(dim);
    let mut total_candidates = 0u64;
    let mut total_neighbors = 0u64;
    let te = Instant::now();
    let mut nbuf = vec![0i64; dim];
    let mut raw_candidates = 0u64;
    for s in 0..sample_count {
        let g = binned_ids[s * stride] as usize;
        let p = data.point(g);
        cell_of(p, &mut cbuf);
        let mut cand = 0u64;
        let mut nb = 0u32;
        for m in 0..shells {
            let mut rem = m;
            for j in 0..dim {
                nbuf[j] = cbuf[j] + (rem % 3) as i64 - 1;
                rem /= 3;
            }
            if let Some(list) = bins.get(&key_of(&nbuf)) {
                cand += list.len() as u64;
                for &o in list {
                    if o as usize != g && euclidean_sq(p, data.point(o as usize)) <= eps_sq {
                        nb += 1;
                    }
                }
            }
        }
        raw_candidates += cand;
        let cand = (cand as f64 * inflate).round() as u64;
        let nb = (nb as f64 * inflate).round() as u64;
        total_candidates += cand;
        total_neighbors += nb;
        sample_ids.push(g as u32);
        sample_neighbors.push(nb.min(u32::MAX as u64) as u32);
        sample_candidates.push(cand.min(u32::MAX as u64) as u32);
        sample_data.push(p);
    }
    let eval_wall = te.elapsed();
    // Per-evaluation cost from the *raw* (scanned) candidate count — the
    // inflated counts estimate full-density work, not work done here.
    let host_per_eval = eval_wall.div_f64(raw_candidates.max(1) as f64);
    let eval_cost = host_per_eval.mul_f64(TRACED_EVAL_OVERHEAD / spec.throughput_vs_host_core);

    Ok(CostModel {
        epsilon,
        len: n,
        avg_neighbors: total_neighbors as f64 / sample_count as f64,
        avg_candidates: total_candidates as f64 / sample_count as f64,
        sample_ids,
        sample_neighbors,
        sample_candidates,
        sample_data,
        eval_cost,
        grid_build_per_point,
        non_empty_cells,
        build_time: t0.elapsed(),
    })
}

/// Projected execution cost of one shard, ghost work included.
#[derive(Clone, Copy, Debug)]
pub struct ShardCost {
    /// Shard index within the partition.
    pub shard: usize,
    /// Owned points.
    pub owned: usize,
    /// Halo ghost points.
    pub ghosts: usize,
    /// Projected directed result pairs over the full local dataset
    /// (safety factor included) — seeds the batching buffer sizing.
    pub predicted_pairs: u64,
    /// Projected candidate evaluations of the shard's join scan (owned
    /// and ghost queries both scan).
    pub scan_work: f64,
    /// Projected H2D bytes of the shard upload (owned + ghosts).
    pub upload_bytes: usize,
    /// The ghost share of [`Self::upload_bytes`] — the replication tax.
    pub ghost_upload_bytes: usize,
    /// Projected **host-stage** time: the shard's grid build, done on the
    /// host by the device's executor task. In a queue, a shard's host
    /// stage overlaps the *previous* shard's device stage.
    pub grid_time: Duration,
    /// Projected **device-stage** time: upload + join scan, modeled.
    pub device_time: Duration,
    /// Total isolated time (`grid_time + device_time`) — the LPT
    /// scheduling weight.
    pub modeled: Duration,
}

impl ShardCost {
    /// Points in the shard-local dataset (owned + ghosts).
    pub fn points(&self) -> usize {
        self.owned + self.ghosts
    }

    /// Scalar scheduling cost: modeled nanoseconds (≥ 1 so empty shards
    /// still round-robin instead of all piling onto device 0).
    pub fn cost(&self) -> u64 {
        (self.modeled.as_nanos() as u64).max(1)
    }
}

/// Prices every shard of a *full* partition: per-shard densities come
/// from the calibration samples falling inside the shard's box (global
/// fallback when too few land there).
pub fn project_partition(
    model: &CostModel,
    part: &Partition,
    spec: &DeviceSpec,
    unicomp: bool,
) -> Vec<ShardCost> {
    let transfer = spec.transfer_model();
    part.shards
        .iter()
        .map(|s| {
            let mut cnt = 0usize;
            let mut nb = 0.0;
            let mut cand = 0.0;
            for (i, p) in model.sample_data.iter().enumerate() {
                if s.owns(p) {
                    cnt += 1;
                    nb += model.sample_neighbors[i] as f64;
                    cand += model.sample_candidates[i] as f64;
                }
            }
            let (mu_n, mu_c) = if cnt >= MIN_SAMPLES_PER_SHARD {
                (nb / cnt as f64, cand / cnt as f64)
            } else {
                (model.avg_neighbors, model.avg_candidates)
            };
            project_shard(
                model,
                s.id,
                s.owned,
                s.ghosts(),
                mu_n,
                mu_c,
                unicomp,
                &transfer,
            )
        })
        .collect()
}

/// Prices a partition of the calibration *sample* as a stand-in for the
/// full dataset: per-shard owned/ghost counts scale by `scale` (≈ n /
/// sample size), densities come from the sample points directly (their
/// `global_ids` index the model's sample arrays). This is what lets the
/// shard-count chooser evaluate many candidate `k` without partitioning
/// the full dataset once per candidate.
pub fn project_scaled(
    model: &CostModel,
    sample_part: &Partition,
    scale: f64,
    spec: &DeviceSpec,
    unicomp: bool,
) -> Vec<ShardCost> {
    let transfer = spec.transfer_model();
    sample_part
        .shards
        .iter()
        .map(|s| {
            let mut nb = 0.0;
            let mut cand = 0.0;
            for &i in &s.global_ids[..s.owned] {
                nb += model.sample_neighbors[i as usize] as f64;
                cand += model.sample_candidates[i as usize] as f64;
            }
            let (mu_n, mu_c) = if s.owned >= MIN_SAMPLES_PER_SHARD {
                (nb / s.owned as f64, cand / s.owned as f64)
            } else {
                (model.avg_neighbors, model.avg_candidates)
            };
            let owned = (s.owned as f64 * scale).round() as usize;
            let ghosts = (s.ghosts() as f64 * scale).round() as usize;
            project_shard(model, s.id, owned, ghosts, mu_n, mu_c, unicomp, &transfer)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn project_shard(
    model: &CostModel,
    shard: usize,
    owned: usize,
    ghosts: usize,
    mu_neighbors: f64,
    mu_candidates: f64,
    unicomp: bool,
    transfer: &TransferModel,
) -> ShardCost {
    let dim = model.sample_data.dim();
    let local = owned + ghosts;
    let predicted_pairs = (mu_neighbors * local as f64 * PAIR_SAFETY).ceil() as u64;
    let work_factor = if unicomp { UNICOMP_WORK_FACTOR } else { 1.0 };
    let scan_work = local as f64 * mu_candidates * work_factor;
    let upload_bytes = local * bytes_per_point(dim);
    let ghost_upload_bytes = ghosts * bytes_per_point(dim);
    let grid_time = model.grid_build_per_point.mul_f64(local as f64);
    let device_time = transfer.time(upload_bytes) + model.eval_cost.mul_f64(scan_work);
    ShardCost {
        shard,
        owned,
        ghosts,
        predicted_pairs,
        scan_work,
        upload_bytes,
        ghost_upload_bytes,
        grid_time,
        device_time,
        modeled: grid_time + device_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use grid_join::GridIndex;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn projection_close_to_truth_on_uniform_data() {
        let data = uniform(2, 4000, 22);
        let eps = 3.0;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let part = partition(&data, eps, 2).unwrap();
        let costs = project_partition(&model, &part, &spec, true);
        for (c, s) in costs.iter().zip(&part.shards) {
            let grid = GridIndex::build(&s.data, eps).unwrap();
            let truth = grid_join::host_self_join(&s.data, &grid).total_pairs() as f64;
            assert!(
                c.predicted_pairs as f64 >= truth * 0.6,
                "under: {c:?} truth {truth}"
            );
            assert!(
                c.predicted_pairs as f64 <= truth * 3.0,
                "over: {c:?} truth {truth}"
            );
            assert_eq!(c.owned, s.owned);
            assert_eq!(c.ghosts, s.ghosts());
            assert!(c.modeled > Duration::ZERO);
        }
    }

    #[test]
    fn cost_tracks_density_not_count() {
        // Tight clusters: equal-count shards, wildly different pair
        // counts. The projected cost must see the difference without any
        // device kernel running.
        let data = clustered(2, 3000, 3, 1.0, 0.04, 21);
        let eps = 0.4;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let part = partition(&data, eps, 3).unwrap();
        let costs = project_partition(&model, &part, &spec, true);
        assert_eq!(costs.len(), part.shards.len());
        let max = costs.iter().map(ShardCost::cost).max().unwrap();
        let min = costs.iter().map(ShardCost::cost).min().unwrap();
        assert!(
            max as f64 / min as f64 > 1.2,
            "projection blind to density: {costs:?}"
        );
    }

    #[test]
    fn ghost_bytes_counted_separately() {
        let data = uniform(2, 3000, 23);
        let eps = 2.0;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let part = partition(&data, eps, 4).unwrap();
        let costs = project_partition(&model, &part, &spec, true);
        assert!(part.ghost_points() > 0, "4 shards must replicate");
        for (c, s) in costs.iter().zip(&part.shards) {
            assert_eq!(c.ghost_upload_bytes, s.ghosts() * bytes_per_point(2));
            assert!(c.upload_bytes >= c.ghost_upload_bytes);
        }
    }

    #[test]
    fn scaled_projection_tracks_full_projection() {
        // Pricing the sample partition at scale must land in the same
        // ballpark as pricing the real partition — it drives the shard-
        // count chooser, so a gross disagreement would mis-size the run.
        let data = uniform(2, 8000, 24);
        let eps = 1.5;
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&data, eps, &spec).unwrap();
        let scale = data.len() as f64 / model.sample_data.len() as f64;
        let k = 4;
        let sample_part = partition(&model.sample_data, eps, k).unwrap();
        let scaled = project_scaled(&model, &sample_part, scale, &spec, true);
        let full = project_partition(&model, &partition(&data, eps, k).unwrap(), &spec, true);
        let sum = |cs: &[ShardCost]| cs.iter().map(|c| c.modeled).sum::<Duration>();
        let (a, b) = (sum(&scaled).as_secs_f64(), sum(&full).as_secs_f64());
        assert!(
            a / b < 4.0 && b / a < 4.0,
            "scaled {a:.6}s vs full {b:.6}s disagree grossly"
        );
    }

    #[test]
    fn empty_dataset_calibrates_to_zero() {
        let spec = DeviceSpec::titan_x_pascal();
        let model = calibrate(&Dataset::new(2), 1.0, &spec).unwrap();
        assert_eq!(model.len, 0);
        assert_eq!(model.avg_neighbors, 0.0);
        assert_eq!(model.eval_cost, Duration::ZERO);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let spec = DeviceSpec::titan_x_pascal();
        let data = uniform(2, 10, 25);
        assert!(matches!(
            calibrate(&data, -1.0, &spec),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
    }
}
