//! **sj-shard**: a sharded multi-device self-join engine.
//!
//! The paper's GPU-SJ (Gowanlock & Karsin 2018) runs on one device; its
//! result-set batching exists precisely because a single GPU's memory
//! bounds the join. This crate scales *out*: the dataset is spatially
//! sharded across a pool of simulated devices and the ε-grid join runs on
//! all of them concurrently — the trajectory the authors took in their
//! later multi-GPU self-join work. Four pieces compose the engine:
//!
//! * [`partition`] — splits space into contiguous, grid-aligned slabs
//!   along the widest dimension, each carrying an ε-wide ghost/halo band
//!   (the halo-ownership invariant below).
//! * [`cost`] — predicts each shard's work by reusing the batching
//!   scheme's on-device selectivity estimator, so the scheduler sees
//!   *cost*, not point count.
//! * [`schedule`] — longest-processing-time assignment of shards to
//!   devices by predicted cost; skewed datasets balance because a dense
//!   shard counts for what it costs.
//! * [`engine`] — [`ShardedSelfJoin`]: one executor task per device runs
//!   its shard queue through [`grid_join::GpuSelfJoin`], streaming each
//!   shard's ownership-filtered pairs into a deduplicating merge.
//!
//! ```
//! use sj_shard::ShardedSelfJoin;
//! use sj_datasets::synthetic::uniform;
//!
//! let data = uniform(2, 2_000, 7);
//! let out = ShardedSelfJoin::titan_x(4).run(&data, 2.0).unwrap();
//! assert!(out.table.is_symmetric());
//! assert_eq!(out.report.duplicates_merged, 0); // exclusive ownership
//! ```
//!
//! # The halo-ownership invariant
//!
//! Every shard owns a contiguous slab `[lo, hi)` of the global ε-grid
//! along the split dimension (`lo`/`hi` are cell boundaries, so shards are
//! grid-aligned), and additionally carries **ghost** copies of every
//! foreign point within the ε-wide halo band `[lo − ε, hi + ε]`. Two
//! facts make the merged result exact:
//!
//! 1. **Completeness.** If `p` is owned by shard `s` and
//!    `dist(p, q) ≤ ε`, then `q`'s coordinate along the split dimension
//!    differs from `p`'s by at most ε, so `q` lies inside `s`'s halo band
//!    and is present (owned or ghost) in `s`'s local dataset. The local
//!    join therefore finds every neighbour of every owned point. (The
//!    band is widened by a ~1 ppb relative guard so floating-point
//!    rounding at cell boundaries can never exclude a true neighbour.)
//! 2. **Exclusivity.** The slabs partition space, so every point is owned
//!    by exactly one shard, and a shard only reports pairs whose *key* is
//!    an owned point (ghost-keyed pairs are dropped by the ownership
//!    filter in `grid_join`). Hence each directed pair `(p, q)` is
//!    reported by exactly one shard — the owner of `p` — and the merge
//!    needs no cross-shard reconciliation (it still deduplicates and
//!    counts, as a cheap runtime check of this invariant).
//!
//! Together: the union of per-shard results equals the single-device
//! result pair-for-pair, which the workspace's property tests assert for
//! random datasets, ε values and shard counts.

pub mod cost;
pub mod engine;
pub mod partition;
pub mod schedule;

pub use cost::{estimate_shard_cost, ShardCost};
pub use engine::{ShardRunReport, ShardedConfig, ShardedOutput, ShardedReport, ShardedSelfJoin};
pub use partition::{partition, Partition, Shard};
pub use schedule::{lpt_schedule, Assignment};
