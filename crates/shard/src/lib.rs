//! **sj-shard**: a sharded multi-device self-join engine.
//!
//! The paper's GPU-SJ (Gowanlock & Karsin 2018) runs on one device; its
//! result-set batching exists precisely because a single GPU's memory
//! bounds the join. This crate scales *out*: the dataset is spatially
//! sharded across a pool of simulated devices and the ε-grid join runs on
//! all of them concurrently — the trajectory the authors took in their
//! later multi-GPU self-join work. Four pieces compose the engine:
//!
//! * [`partition`] — recursive kd-style splits: each sub-region is cut
//!   along its widest remaining dimension at a grid-aligned boundary,
//!   yielding compact **boxes** instead of thin slabs. Each box carries an
//!   ε-wide ghost/halo band per face (the halo-ownership invariant
//!   below); compact boxes have far less ε-surface per owned point than
//!   slabs, so the ghost tax stays flat as shard counts grow.
//! * [`cost`] — a ghost-aware cost model calibrated by one cheap host
//!   pass ([`calibrate`]): per-shard work is projected from sampled
//!   neighbourhood densities *including* the ghost-band join work and the
//!   ghost upload bytes, so the scheduler — and the shard-count chooser —
//!   see *cost*, not point count.
//! * [`schedule`] — longest-processing-time assignment of shards to
//!   devices by projected cost, and [`modeled_makespan`], the busiest-
//!   device bound the engine minimizes when choosing how many shards to
//!   cut at all.
//! * [`engine`] — [`ShardedSelfJoin`]: prices candidate shard counts on
//!   the calibration sample, partitions at the modeled-makespan argmin,
//!   then runs one executor task per device. Ownership is **fused into
//!   the kernels** as an emit-time window over each shard's owned-prefix
//!   ids, so ghost-keyed pairs are never materialized and the merge is
//!   pure concatenation.
//!
//! ```
//! use sj_shard::ShardedSelfJoin;
//! use sj_datasets::synthetic::uniform;
//!
//! let data = uniform(2, 2_000, 7);
//! let out = ShardedSelfJoin::titan_x(4).run(&data, 2.0).unwrap();
//! assert!(out.table.is_symmetric());
//! assert_eq!(out.report.duplicates_merged, 0); // exclusive ownership
//! ```
//!
//! # The halo-ownership invariant
//!
//! Every shard owns an axis-aligned box `∏ⱼ [loⱼ, hiⱼ)` of space (bounds
//! lie on global ε-grid cell boundaries, so shards are grid-aligned), and
//! additionally carries **ghost** copies of every foreign point within
//! the ε-widened box `∏ⱼ [loⱼ − ε, hiⱼ + ε]`. Two facts make the merged
//! result exact:
//!
//! 1. **Completeness.** If `p` is owned by shard `s` and
//!    `dist(p, q) ≤ ε`, then `q`'s coordinate differs from `p`'s by at
//!    most ε in *every* dimension, so `q` lies inside `s`'s ε-widened box
//!    and is present (owned or ghost) in `s`'s local dataset. The local
//!    join therefore finds every neighbour of every owned point. (The
//!    halo is widened by a ~1 ppb relative guard so floating-point
//!    rounding at cell boundaries can never exclude a true neighbour.)
//! 2. **Exclusivity.** The boxes partition space, so every point is owned
//!    by exactly one shard, and a shard only emits pairs whose *key* is
//!    an owned point: each shard orders its local ids owned-first, and
//!    the kernels carry an `Ownership` window that drops ghost-keyed
//!    pairs at emit time — one comparison before the result-buffer
//!    reservation, no ghost pair ever materialized. Hence each directed
//!    pair `(p, q)` is reported by exactly one shard — the owner of `p` —
//!    and the merge is plain concatenation (debug builds still run the
//!    dedup pass and assert it found nothing).
//!
//! Together: the union of per-shard results equals the single-device
//! result pair-for-pair, which the workspace's property tests assert for
//! random datasets, dimensions, ε values and shard counts.

pub mod cost;
pub mod engine;
pub mod partition;
pub mod schedule;

pub use cost::{
    calibrate, calibrate_from_sample, eval_correction, grid_correction, project_partition,
    project_scaled, CostModel, EvalCorrection, ShardCost,
};
pub use engine::{ShardRunReport, ShardedConfig, ShardedOutput, ShardedReport, ShardedSelfJoin};
pub use partition::{
    build_cuts, materialize, partition, sample_pass, CutTree, Partition, SamplePass, Shard,
};
pub use schedule::{argmin_shard_count, lpt_schedule, modeled_makespan, Assignment};
