//! Spatial partitioning into grid-aligned slabs with ε halos.
//!
//! Shards are contiguous runs of ε-grid columns along one dimension (the
//! widest one, where slabs are cheapest relative to their halo area). Cut
//! positions are chosen from the per-point column distribution so each
//! shard owns roughly the same number of points; the cost-based scheduler
//! downstream corrects for density skew *within* equal-count shards.
//!
//! See the crate docs for the halo-ownership invariant this module
//! establishes.

use grid_join::error::GridBuildError;
use sj_datasets::Dataset;
use std::time::{Duration, Instant};

/// Relative widening of the ε halo band guarding against floating-point
/// rounding at cell boundaries (see crate docs, invariant 1).
pub const HALO_SLACK: f64 = 1e-9;

/// One spatial shard: an owned slab plus its ε-halo ghosts.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Shard index within the partition.
    pub id: usize,
    /// Owned slab lower bound along the split dimension (a grid-cell
    /// boundary; the first shard conceptually extends to −∞).
    pub lo: f64,
    /// Owned slab upper bound (exclusive; the last shard extends to +∞).
    pub hi: f64,
    /// Shard-local dataset: owned points first, then halo ghosts.
    pub data: Dataset,
    /// Number of owned points (the prefix of `data`).
    pub owned: usize,
    /// Local→global point-id map (`global_ids[local] = global`).
    pub global_ids: Vec<u32>,
}

impl Shard {
    /// Number of ghost points carried for the halo.
    pub fn ghosts(&self) -> usize {
        self.data.len() - self.owned
    }
}

/// A complete spatial partition of a dataset.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Dimension the slabs cut across.
    pub split_dim: usize,
    /// The search radius the halos were sized for.
    pub epsilon: f64,
    /// The shards, in slab order. Never empty; shards with zero owned
    /// points are dropped (the requested shard count is an upper bound).
    pub shards: Vec<Shard>,
    /// Wall time of the partitioning pass.
    pub build_time: Duration,
}

impl Partition {
    /// Total ghost points across shards (the replication overhead).
    pub fn ghost_points(&self) -> usize {
        self.shards.iter().map(Shard::ghosts).sum()
    }

    /// Total owned points (equals the input size).
    pub fn owned_points(&self) -> usize {
        self.shards.iter().map(|s| s.owned).sum()
    }
}

/// Splits `data` into at most `num_shards` grid-aligned slabs with ε-wide
/// halos. Requesting one shard (or partitioning data too narrow to cut)
/// yields a single ghost-free shard.
pub fn partition(
    data: &Dataset,
    epsilon: f64,
    num_shards: usize,
) -> Result<Partition, GridBuildError> {
    let t0 = Instant::now();
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    if data.len() > u32::MAX as usize {
        return Err(GridBuildError::TooManyPoints(data.len()));
    }
    let num_shards = num_shards.max(1);
    if data.is_empty() || num_shards == 1 {
        return Ok(Partition {
            split_dim: 0,
            epsilon,
            shards: vec![whole_shard(data)],
            build_time: t0.elapsed(),
        });
    }

    // Split along the widest dimension: for a fixed shard count the halo
    // volume fraction scales with ε / slab width, so the dimension with
    // the most ε cells minimizes replication. (Single fused pass: the
    // partition sits on the response-time path.)
    let dim = data.dim();
    let mut mins = vec![f64::INFINITY; dim];
    let mut maxs = vec![f64::NEG_INFINITY; dim];
    for p in data.iter() {
        for j in 0..dim {
            mins[j] = mins[j].min(p[j]);
            maxs[j] = maxs[j].max(p[j]);
        }
    }
    let split_dim = (0..data.dim())
        .max_by(|&a, &b| {
            let (sa, sb) = (maxs[a] - mins[a], maxs[b] - mins[b]);
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);

    // Column geometry identical to `GridIndex` for this dimension: origin
    // min − ε, cell side ε — cuts land on global grid-cell boundaries.
    let gmin = mins[split_dim] - epsilon;
    let span = (maxs[split_dim] + epsilon) - gmin;
    let ncols = (span / epsilon).floor() as u64 + 1;
    let col_of = |x: f64| -> u64 {
        let c = ((x - gmin) / epsilon).floor();
        let c = if c < 0.0 { 0 } else { c as u64 };
        c.min(ncols - 1)
    };
    let cols: Vec<u64> = data.iter().map(|p| col_of(p[split_dim])).collect();
    let n = cols.len();

    // Equal-count cuts, constrained to be strictly increasing (narrow
    // data yields fewer shards). The common case walks a per-column
    // histogram; degenerate geometries (far more columns than points)
    // fall back to sorted per-point columns.
    let mut cuts: Vec<u64> = Vec::with_capacity(num_shards - 1);
    if ncols <= 4 * n as u64 + 1024 {
        let mut counts = vec![0u32; ncols as usize];
        for &c in &cols {
            counts[c as usize] += 1;
        }
        let mut cum = 0usize;
        let mut s = 1usize;
        for (c, &k) in counts.iter().enumerate() {
            if s >= num_shards || (c as u64) + 1 >= ncols {
                break;
            }
            cum += k as usize;
            // Cut after column c once the left side reaches its quantile
            // target (only at populated columns, so no shard is empty).
            if k > 0 && cum >= s * n / num_shards {
                cuts.push(c as u64 + 1);
                while s < num_shards && cum >= s * n / num_shards {
                    s += 1;
                }
            }
        }
    } else {
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        for s in 1..num_shards {
            let candidate = (sorted[s * n / num_shards] + 1).max(cuts.last().map_or(1, |&c| c + 1));
            if candidate >= ncols {
                break;
            }
            cuts.push(candidate);
        }
    }

    // Owner of a point = index of the slab its column falls in.
    let owner_of = |col: u64| -> usize { cuts.partition_point(|&c| c <= col) };
    let nshards = cuts.len() + 1;

    // Slab coordinate bounds (cell boundaries) and halo bands.
    let halo = epsilon * (1.0 + HALO_SLACK);
    let bound = |cut: u64| gmin + cut as f64 * epsilon;
    let lo_of = |s: usize| {
        if s == 0 {
            f64::NEG_INFINITY
        } else {
            bound(cuts[s - 1])
        }
    };
    let hi_of = |s: usize| {
        if s == nshards - 1 {
            f64::INFINITY
        } else {
            bound(cuts[s])
        }
    };

    // One pass assigns each point to its owner and to every slab whose
    // halo band contains it — a short walk over adjacent slabs (slabs
    // narrower than ε make a point ghost to more than one neighbour).
    let mut owned_ids: Vec<Vec<u32>> = vec![Vec::new(); nshards];
    let mut ghost_ids: Vec<Vec<u32>> = vec![Vec::new(); nshards];
    for (g, p) in data.iter().enumerate() {
        let x = p[split_dim];
        let o = owner_of(cols[g]);
        owned_ids[o].push(g as u32);
        let mut t = o;
        while t > 0 && x <= hi_of(t - 1) + halo {
            t -= 1;
            ghost_ids[t].push(g as u32);
        }
        let mut t = o;
        while t + 1 < nshards && x >= lo_of(t + 1) - halo {
            t += 1;
            ghost_ids[t].push(g as u32);
        }
    }

    let mut shards = Vec::with_capacity(nshards);
    for s in 0..nshards {
        if owned_ids[s].is_empty() {
            continue;
        }
        let mut local = Dataset::new(data.dim());
        let mut global_ids = Vec::with_capacity(owned_ids[s].len() + ghost_ids[s].len());
        for &id in owned_ids[s].iter().chain(&ghost_ids[s]) {
            local.push(data.point(id as usize));
            global_ids.push(id);
        }
        shards.push(Shard {
            id: shards.len(),
            lo: lo_of(s),
            hi: hi_of(s),
            data: local,
            owned: owned_ids[s].len(),
            global_ids,
        });
    }

    Ok(Partition {
        split_dim,
        epsilon,
        shards,
        build_time: t0.elapsed(),
    })
}

fn whole_shard(data: &Dataset) -> Shard {
    Shard {
        id: 0,
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        data: data.clone(),
        owned: data.len(),
        global_ids: (0..data.len() as u32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn ownership_partitions_the_dataset() {
        let data = uniform(3, 3000, 11);
        let part = partition(&data, 5.0, 4).unwrap();
        assert!(part.shards.len() >= 2, "uniform 3-D data should cut");
        let mut owned: Vec<u32> = part
            .shards
            .iter()
            .flat_map(|s| s.global_ids[..s.owned].iter().copied())
            .collect();
        owned.sort_unstable();
        assert_eq!(owned, (0..3000u32).collect::<Vec<_>>());
        assert_eq!(part.owned_points(), 3000);
    }

    #[test]
    fn shard_data_matches_global_coordinates() {
        let data = uniform(2, 800, 12);
        let part = partition(&data, 4.0, 3).unwrap();
        for s in &part.shards {
            assert_eq!(s.data.len(), s.global_ids.len());
            for (local, &g) in s.global_ids.iter().enumerate() {
                assert_eq!(s.data.point(local), data.point(g as usize));
            }
        }
    }

    #[test]
    fn halo_contains_every_near_boundary_foreign_point() {
        // For every shard, every foreign point within ε of the owned slab
        // (along the split dim) must appear as a ghost.
        let data = uniform(2, 2000, 13);
        let eps = 3.0;
        let part = partition(&data, eps, 4).unwrap();
        let j = part.split_dim;
        for s in &part.shards {
            let ghosts: std::collections::HashSet<u32> =
                s.global_ids[s.owned..].iter().copied().collect();
            let owned: std::collections::HashSet<u32> =
                s.global_ids[..s.owned].iter().copied().collect();
            for (g, p) in data.iter().enumerate() {
                let x = p[j];
                if !owned.contains(&(g as u32)) && x >= s.lo - eps && x <= s.hi + eps {
                    assert!(
                        ghosts.contains(&(g as u32)),
                        "point {g} at {x} missing from halo of [{}, {})",
                        s.lo,
                        s.hi
                    );
                }
            }
        }
    }

    #[test]
    fn owned_points_lie_inside_their_slab() {
        let data = uniform(2, 1500, 14);
        let part = partition(&data, 2.0, 5).unwrap();
        let j = part.split_dim;
        for s in &part.shards {
            for local in 0..s.owned {
                let x = s.data.point(local)[j];
                assert!(x >= s.lo && x < s.hi, "{x} outside [{}, {})", s.lo, s.hi);
            }
        }
    }

    #[test]
    fn cuts_are_grid_aligned() {
        let data = uniform(2, 2000, 15);
        let eps = 2.5;
        let part = partition(&data, eps, 4).unwrap();
        let j = part.split_dim;
        let gmin = data.min_per_dim().unwrap()[j] - eps;
        for s in &part.shards {
            for b in [s.lo, s.hi] {
                if b.is_finite() {
                    let k = (b - gmin) / eps;
                    assert!(
                        (k - k.round()).abs() < 1e-9,
                        "bound {b} is not a cell boundary (k = {k})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_shard_has_no_ghosts() {
        let data = uniform(2, 500, 16);
        let part = partition(&data, 1.0, 1).unwrap();
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].ghosts(), 0);
        assert_eq!(part.shards[0].owned, 500);
    }

    #[test]
    fn empty_dataset_yields_one_empty_shard() {
        let part = partition(&Dataset::new(3), 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].data.len(), 0);
        assert_eq!(part.ghost_points(), 0);
    }

    #[test]
    fn narrow_data_degrades_to_fewer_shards() {
        // All points inside one ε cell: no valid cut exists.
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push(&[5.0 + (i as f64) * 1e-4, 5.0 + (i as f64) * 1e-4]);
        }
        let part = partition(&d, 10.0, 8).unwrap();
        assert_eq!(part.shards.len(), 1);
    }

    #[test]
    fn equal_count_cuts_balance_owned_points() {
        let data = uniform(2, 4000, 17);
        let part = partition(&data, 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 4);
        for s in &part.shards {
            assert!(
                s.owned >= 500 && s.owned <= 2000,
                "shard owns {} of 4000",
                s.owned
            );
        }
    }

    #[test]
    fn skewed_data_still_partitions_exhaustively() {
        let data = clustered(2, 3000, 3, 1.0, 0.05, 18);
        let part = partition(&data, 0.5, 4).unwrap();
        assert_eq!(part.owned_points(), 3000);
        assert!(!part.shards.is_empty());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let data = uniform(2, 10, 19);
        assert!(matches!(
            partition(&data, 0.0, 2),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            partition(&data, f64::NAN, 2),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
    }
}
