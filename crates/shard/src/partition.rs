//! Recursive kd-style partitioning into grid-aligned boxes with ε halos.
//!
//! Shards are axis-aligned boxes produced by recursive binary splits:
//! each sub-region is cut along its widest remaining dimension (by its
//! data-clipped box span), at an ε-grid cell boundary closest to the
//! region's point-count quantile. Versus 1-D slabs, boxes shrink the
//! surface-to-volume ratio — and with it the ε-halo ghost fraction — as
//! the shard count grows: 8 slabs share 14 internal faces all cutting the
//! same dimension, while a 4×2 kd split exposes far less internal surface
//! per shard.
//!
//! See the crate docs for the halo-ownership invariant this module
//! establishes. Assignment is by *coordinate* test (`x < b` against each
//! cut), so [`Shard::owns`] box membership is exactly the recursion's
//! assignment — no floating-point disagreement between the two is
//! possible.
//!
//! ## Cost structure
//!
//! The partition sits on the engine's critical path before any device
//! stream starts, so it is built to touch the full dataset as little as
//! possible and to keep what it must touch off the serial spine. The
//! recursion runs on a stride **sample** (cuts only need quantiles, and a
//! sample quantile snapped to a grid boundary is as good as an exact
//! one); the full dataset is then read by three streaming passes —
//! bounds + sample, ownership/ghost classification, owned-prefix gather —
//! each executed as independent contiguous chunks, one per host lane
//! (see [`partition_par`]): `build_time` charges the serial recursion
//! plus the slowest lane of each pass, the same host-parallel convention
//! the engine applies to its per-device streams. Because the sample's
//! points are real points, a cut that leaves sample points on both sides
//! leaves real points on both sides — every leaf owns at least one point
//! by construction.

use grid_join::error::GridBuildError;
use sj_datasets::Dataset;
use std::time::{Duration, Instant};

/// Relative widening of the ε halo band guarding against floating-point
/// rounding at cell boundaries (see crate docs, invariant 1).
pub const HALO_SLACK: f64 = 1e-9;

/// One spatial shard: an owned axis-aligned box plus its ε-halo ghosts.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Shard index within the partition.
    pub id: usize,
    /// Per-dimension owned-box lower bounds (inclusive; grid-cell
    /// boundaries, or −∞ on un-cut faces).
    pub lo: Vec<f64>,
    /// Per-dimension owned-box upper bounds (exclusive, or +∞).
    pub hi: Vec<f64>,
    /// Shard-local dataset: owned points first, then halo ghosts.
    pub data: Dataset,
    /// Number of owned points (the prefix of `data`).
    pub owned: usize,
    /// Local→global point-id map (`global_ids[local] = global`).
    pub global_ids: Vec<u32>,
}

impl Shard {
    /// Number of ghost points carried for the halo.
    pub fn ghosts(&self) -> usize {
        self.data.len() - self.owned
    }

    /// Whether `p` lies inside the owned box (`lo[j] ≤ p[j] < hi[j]` in
    /// every dimension) — exactly the partitioner's assignment test, so
    /// ownership regions tile space and are pairwise disjoint.
    pub fn owns(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((&lo, &hi), &x)| lo <= x && x < hi)
    }

    /// Whether `p` lies inside the box widened by `halo` on every face —
    /// the ghost-band membership test.
    pub fn in_halo(&self, p: &[f64], halo: f64) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((&lo, &hi), &x)| x >= lo - halo && x <= hi + halo)
    }
}

/// A complete spatial partition of a dataset.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Dimensions the recursion cut across, in cut order (empty for a
    /// single shard).
    pub cut_dims: Vec<usize>,
    /// The search radius the halos were sized for.
    pub epsilon: f64,
    /// The shards, sorted by box lower bounds. Never empty; every shard
    /// owns at least one point (the requested count is an upper bound).
    pub shards: Vec<Shard>,
    /// Modeled build time: serial recursion plus the slowest lane of
    /// each chunked full-data pass (measured wall time when built with
    /// one lane — see [`partition_par`]).
    pub build_time: Duration,
}

impl Partition {
    /// Total ghost points across shards (the replication overhead).
    pub fn ghost_points(&self) -> usize {
        self.shards.iter().map(Shard::ghosts).sum()
    }

    /// Total owned points (equals the input size).
    pub fn owned_points(&self) -> usize {
        self.shards.iter().map(|s| s.owned).sum()
    }

    /// Ghost points as a fraction of owned points (0.0 for empty input).
    pub fn ghost_fraction(&self) -> f64 {
        let owned = self.owned_points();
        if owned == 0 {
            0.0
        } else {
            self.ghost_points() as f64 / owned as f64
        }
    }
}

/// One open sub-region of the kd recursion (sample slots, not global
/// ids).
struct Region {
    slots: Vec<u32>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Data-clipped box spans (the box intersected with the dataset's
    /// bounding box): cheap per-dimension width estimates maintained
    /// incrementally at each cut instead of rescanned from the points.
    smin: Vec<f64>,
    smax: Vec<f64>,
    /// Shards this region should still split into.
    k: usize,
}

/// A settled leaf box of the recursion.
struct Leaf {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Data-clipped span (box ∩ dataset bounding box) — a superset of the
    /// leaf's true point extent, safe for adjacency pruning.
    smin: Vec<f64>,
    smax: Vec<f64>,
}

/// High bit of a cut-tree child link marks a leaf; the rest is the leaf
/// slot.
const LEAF_BIT: u32 = 1 << 31;

/// One interior node of the cut tree the assignment pass walks: points
/// with `p[dim] < b` descend left. Children are node indices, or leaf
/// slots tagged with [`LEAF_BIT`].
struct CutNode {
    dim: u32,
    b: f64,
    kids: [u32; 2],
}

/// The sample-guided kd recursion state: sample columns in, leaves +
/// pre-order cut dims + the cut tree out.
struct Splitter {
    /// Sample coordinates, column-major: `cols[j][slot]`.
    cols: Vec<Vec<f64>>,
    gmin: Vec<f64>,
    epsilon: f64,
    leaves: Vec<Leaf>,
    cut_dims: Vec<usize>,
    nodes: Vec<CutNode>,
}

/// Splits `data` into at most `num_shards` grid-aligned kd boxes with
/// ε-wide halos, on a single host lane. Equivalent to [`partition_par`]
/// with one lane, where `build_time` is plain measured wall time.
pub fn partition(
    data: &Dataset,
    epsilon: f64,
    num_shards: usize,
) -> Result<Partition, GridBuildError> {
    partition_par(data, epsilon, num_shards, 1)
}

/// Splits `data` into at most `num_shards` grid-aligned kd boxes with
/// ε-wide halos, modeling the build across `lanes` host threads.
///
/// The full-data work — the bounds/sample read, the ownership/ghost
/// classification, and the final gather — is executed as `lanes`
/// independent contiguous chunks whose outputs are disjoint (per-lane
/// counts, per-lane slices of the owner array, per-lane scatter windows),
/// exactly the shape a per-device host thread would run. Each lane is
/// timed individually and [`Partition::build_time`] charges the serial
/// recursion plus the *slowest lane* of each pass — the same
/// host-parallel convention the sharded engine applies to its per-device
/// streams. The partition produced is bit-identical for every lane
/// count; requesting one shard (or data too narrow to cut) yields a
/// single ghost-free shard.
pub fn partition_par(
    data: &Dataset,
    epsilon: f64,
    num_shards: usize,
    lanes: usize,
) -> Result<Partition, GridBuildError> {
    let t0 = Instant::now();
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(GridBuildError::InvalidEpsilon(epsilon));
    }
    if data.len() > u32::MAX as usize {
        return Err(GridBuildError::TooManyPoints(data.len()));
    }
    let num_shards = num_shards.max(1);
    let dim = data.dim();
    if data.is_empty() || num_shards == 1 {
        return Ok(Partition {
            cut_dims: Vec::new(),
            epsilon,
            shards: vec![whole_shard(data)],
            build_time: t0.elapsed(),
        });
    }

    let mut span = sj_obs::Span::enter("shard.partition");
    span.label("shards", num_shards);
    let flat = data.coords();
    let n = data.len();
    let lanes = lanes.clamp(1, n);
    span.label("lanes", lanes);
    let csize = n.div_ceil(lanes);
    let chunks: Vec<(usize, usize)> = (0..lanes)
        .map(|c| (c * csize, ((c + 1) * csize).min(n)))
        .collect();
    // Wall time the chunked passes would have hidden had the lanes run
    // concurrently: Σ lane walls − max lane wall, per pass. Subtracted
    // from the total at the end, it leaves serial work + per-pass
    // makespans without timing every serial snippet in between.
    let mut hidden = Duration::ZERO;

    // Pass 1 (chunked): per-dimension data bounds *and* the recursion's
    // stride sample in one streaming read. Bounds merge associatively;
    // the sample is strided by *global* id, so each lane contributes a
    // disjoint in-order segment and the assembled sample is identical
    // for every lane count.
    let sstride = n.div_ceil(SPLIT_SAMPLE_CAP);
    let mut dmin = vec![f64::INFINITY; dim];
    let mut dmax = vec![f64::NEG_INFINITY; dim];
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n.div_ceil(sstride)); dim];
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for (lane, &(start, end)) in chunks.iter().enumerate() {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", 1u64);
        lspan.label("lane", lane);
        let mut next_sample = start.next_multiple_of(sstride);
        for (i, row) in flat[start * dim..end * dim].chunks_exact(dim).enumerate() {
            for j in 0..dim {
                dmin[j] = dmin[j].min(row[j]);
                dmax[j] = dmax[j].max(row[j]);
            }
            if start + i == next_sample {
                next_sample += sstride;
                for j in 0..dim {
                    cols[j].push(row[j]);
                }
            }
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
    }
    hidden += summed - slowest;
    let nsample = cols[0].len();

    // Cell-boundary geometry identical to `GridIndex` per dimension:
    // origin min − ε, cell side ε — every cut lands on a global grid-cell
    // boundary, so shard faces align with index cells on both sides.
    let gmin: Vec<f64> = dmin.iter().map(|&m| m - epsilon).collect();

    // Recursive binary splits over the sample. Each region cuts its
    // widest dimension (by its data-clipped box span) at the grid
    // boundary nearest its point-count quantile, recursing with ⌊k/2⌋ /
    // ⌈k/2⌉ shard budgets so leaf counts stay balanced.
    let root = Region {
        slots: (0..nsample as u32).collect(),
        lo: vec![f64::NEG_INFINITY; dim],
        hi: vec![f64::INFINITY; dim],
        smin: dmin,
        smax: dmax,
        k: num_shards,
    };
    let mut sp = Splitter {
        cols,
        gmin,
        epsilon,
        leaves: Vec::new(),
        cut_dims: Vec::new(),
        nodes: Vec::new(),
    };
    let tree_root = sp.split(root);
    let Splitter {
        mut leaves,
        cut_dims,
        mut nodes,
        ..
    } = sp;

    // Deterministic shard order: lexicographic by box lower bounds. The
    // cut tree's leaf links are re-pointed through the permutation.
    let nshards = leaves.len();
    let mut order: Vec<usize> = (0..nshards).collect();
    order.sort_by(|&a, &b| {
        leaves[a]
            .lo
            .iter()
            .zip(&leaves[b].lo)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut leaf_to_shard = vec![0u32; nshards];
    for (shard, &slot) in order.iter().enumerate() {
        leaf_to_shard[slot] = shard as u32;
    }
    for node in &mut nodes {
        for kid in &mut node.kids {
            if *kid & LEAF_BIT != 0 {
                *kid = LEAF_BIT | leaf_to_shard[(*kid & !LEAF_BIT) as usize];
            }
        }
    }
    {
        let mut permuted: Vec<Option<Leaf>> = leaves.drain(..).map(Some).collect();
        leaves = order
            .iter()
            .map(|&slot| permuted[slot].take().expect("permutation is a bijection"))
            .collect();
    }

    // Halo-band geometry per shard, flattened `[s * dim + j]` so the hot
    // passes below chase no per-shard Vec pointers: the widened
    // (ghost-membership) box, the shrunk interior box, and the adjacency
    // list used to prune the per-point band tests.
    let halo = epsilon * (1.0 + HALO_SLACK);
    let mut wlo = vec![0.0f64; nshards * dim];
    let mut whi = vec![0.0f64; nshards * dim];
    let mut ilo = vec![0.0f64; nshards * dim];
    let mut ihi = vec![0.0f64; nshards * dim];
    for (s, l) in leaves.iter().enumerate() {
        for j in 0..dim {
            wlo[s * dim + j] = l.lo[j] - halo;
            whi[s * dim + j] = l.hi[j] + halo;
            ilo[s * dim + j] = l.lo[j] + halo;
            ihi[s * dim + j] = l.hi[j] - halo;
        }
    }
    // takers[t]: shards whose halo band reaches into shard t's points
    // (the data-clipped span bounds t's extent from above, so pruning
    // never misses a ghost).
    let takers: Vec<Vec<u32>> = (0..nshards)
        .map(|t| {
            (0..nshards)
                .filter(|&s| {
                    s != t
                        && (0..dim).all(|j| {
                            leaves[t].smin[j] <= whi[s * dim + j]
                                && leaves[t].smax[j] >= wlo[s * dim + j]
                        })
                })
                .map(|s| s as u32)
                .collect()
        })
        .collect();

    // Pass 2 (chunked): classify every point. The cut-tree walk
    // (branchless child select) yields the owner, recorded in a per-point
    // owner array (each lane writes its own slice) and per-lane per-shard
    // counts; a point strictly farther than the halo from every face of
    // its own box cannot lie in any other shard's halo (disjoint axis-
    // aligned boxes always have a separating axis), and away from the cut
    // surfaces that is almost every point — one box test retires it.
    // Boundary-band points test only the adjacent shards, and ghosts are
    // gathered right here (they are the rare case). Leaf count is capped
    // by the sample size, so owners fit u16.
    struct LaneOut {
        counts: Vec<u32>,
        ghost_ids: Vec<Vec<u32>>,
        ghost_coords: Vec<Vec<f64>>,
    }
    let mut owners = vec![0u16; n];
    let mut lane_outs: Vec<LaneOut> = Vec::with_capacity(lanes);
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for (lane, &(start, end)) in chunks.iter().enumerate() {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", 2u64);
        lspan.label("lane", lane);
        let mut out = LaneOut {
            counts: vec![0u32; nshards],
            ghost_ids: vec![Vec::new(); nshards],
            ghost_coords: vec![Vec::new(); nshards],
        };
        for (i, p) in flat[start * dim..end * dim].chunks_exact(dim).enumerate() {
            let g = start + i;
            let t = {
                let mut link = tree_root;
                loop {
                    if link & LEAF_BIT != 0 {
                        break (link & !LEAF_BIT) as usize;
                    }
                    let node = &nodes[link as usize];
                    link = node.kids[(p[node.dim as usize] >= node.b) as usize];
                }
            };
            owners[g] = t as u16;
            out.counts[t] += 1;
            let interior = p
                .iter()
                .zip(&ilo[t * dim..t * dim + dim])
                .zip(&ihi[t * dim..t * dim + dim])
                .all(|((&x, &l), &h)| x > l && x < h);
            if interior {
                continue;
            }
            for &s in &takers[t] {
                let s = s as usize;
                let in_band = p
                    .iter()
                    .zip(&wlo[s * dim..s * dim + dim])
                    .zip(&whi[s * dim..s * dim + dim])
                    .all(|((&x, &l), &h)| x >= l && x <= h);
                if in_band {
                    out.ghost_ids[s].push(g as u32);
                    out.ghost_coords[s].extend_from_slice(p);
                }
            }
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
        lane_outs.push(out);
    }
    hidden += summed - slowest;

    // Exact-size shard buffers from the lane counts: owned points first
    // (each (lane, shard) pair gets a disjoint scatter window, in lane
    // order, so ids stay ascending), then the ghost tail copied from the
    // per-lane gathers. Zeroed allocation is calloc — pages are faulted
    // by the fill pass either way.
    let mut owned_of = vec![0usize; nshards];
    let mut ghosts_of = vec![0usize; nshards];
    for out in &lane_outs {
        for (s, (o, g)) in owned_of.iter_mut().zip(&mut ghosts_of).enumerate() {
            *o += out.counts[s] as usize;
            *g += out.ghost_ids[s].len();
        }
    }
    let mut ids_buf: Vec<Vec<u32>> = (0..nshards)
        .map(|s| vec![0u32; owned_of[s] + ghosts_of[s]])
        .collect();
    let mut coords_buf: Vec<Vec<f64>> = (0..nshards)
        .map(|s| vec![0.0f64; (owned_of[s] + ghosts_of[s]) * dim])
        .collect();
    // Per-lane scatter cursors, and the ghost tails (small — the halo
    // bands hold a few percent of the points).
    let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(lanes);
    let mut next = vec![0usize; nshards];
    for out in &lane_outs {
        cursors.push(next.clone());
        for (nx, &c) in next.iter_mut().zip(&out.counts) {
            *nx += c as usize;
        }
    }
    // Ghost tails, chunked by *shard* (round-robin over lanes): each
    // shard's tail is a disjoint buffer region, so lanes can copy their
    // shards' tails independently.
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for lane in 0..lanes.min(nshards) {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", "ghost_tails");
        lspan.label("lane", lane);
        for s in (lane..nshards).step_by(lanes) {
            let mut cur = owned_of[s];
            for out in &lane_outs {
                let len = out.ghost_ids[s].len();
                ids_buf[s][cur..cur + len].copy_from_slice(&out.ghost_ids[s]);
                coords_buf[s][cur * dim..(cur + len) * dim].copy_from_slice(&out.ghost_coords[s]);
                cur += len;
            }
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
    }
    hidden += summed - slowest;
    drop(lane_outs);

    // Pass 3 (chunked): gather the owned prefixes. Each lane re-streams
    // its rows and scatters them into its own windows of the shard
    // buffers — sequential writes per shard, no merge step afterwards.
    let mut slowest = Duration::ZERO;
    let mut summed = Duration::ZERO;
    for (c, &(start, end)) in chunks.iter().enumerate() {
        let tl = Instant::now();
        let mut lspan = sj_obs::Span::enter("shard.partition.lane");
        lspan.label("pass", 3u64);
        lspan.label("lane", c);
        let cur = &mut cursors[c];
        for (i, p) in flat[start * dim..end * dim].chunks_exact(dim).enumerate() {
            let g = start + i;
            let s = owners[g] as usize;
            ids_buf[s][cur[s]] = g as u32;
            coords_buf[s][cur[s] * dim..cur[s] * dim + dim].copy_from_slice(p);
            cur[s] += 1;
        }
        let w = tl.elapsed();
        slowest = slowest.max(w);
        summed += w;
    }
    hidden += summed - slowest;

    let shards: Vec<Shard> = ids_buf
        .into_iter()
        .zip(coords_buf)
        .zip(&leaves)
        .enumerate()
        .map(|(s, ((ids, coords), leaf))| Shard {
            id: s,
            lo: leaf.lo.clone(),
            hi: leaf.hi.clone(),
            data: Dataset::from_flat(dim, coords),
            owned: owned_of[s],
            global_ids: ids,
        })
        .collect();

    span.label("shards_out", shards.len());
    span.label(
        "ghost_points",
        shards.iter().map(|s| s.data.len() - s.owned).sum::<usize>(),
    );
    Ok(Partition {
        cut_dims,
        epsilon,
        shards,
        build_time: t0.elapsed().saturating_sub(hidden),
    })
}

/// Cap on the stride sample the kd recursion runs over. Cuts derived
/// from sample quantiles cost O(sample · log k) instead of O(n · log k);
/// below the cap the "sample" is the whole dataset and behavior is
/// exact.
const SPLIT_SAMPLE_CAP: usize = 8_192;

impl Splitter {
    /// Recursively splits one region, appending settled leaves, pre-order
    /// cut dimensions (this region's cut, then the left subtree's, then
    /// the right's) and cut-tree nodes; returns the subtree's child link.
    fn split(&mut self, r: Region) -> u32 {
        if r.k <= 1 || r.slots.len() <= 1 {
            return self.leaf(r);
        }
        let Some((j, b, left_slots, right_slots)) = self.cut_region(&r) else {
            // No dimension offers a cut with both sides non-empty (all
            // sample points share one ε-cell in every dimension): leaf.
            return self.leaf(r);
        };
        let kl = r.k / 2;
        let kr = r.k - kl;
        let mut left_hi = r.hi.clone();
        left_hi[j] = b;
        let mut right_lo = r.lo.clone();
        right_lo[j] = b;
        let mut left_smax = r.smax.clone();
        left_smax[j] = left_smax[j].min(b);
        let mut right_smin = r.smin.clone();
        right_smin[j] = right_smin[j].max(b);
        let left = Region {
            slots: left_slots,
            lo: r.lo,
            hi: left_hi,
            smin: r.smin,
            smax: left_smax,
            k: kl,
        };
        let right = Region {
            slots: right_slots,
            lo: right_lo,
            hi: r.hi,
            smin: right_smin,
            smax: r.smax,
            k: kr,
        };
        self.cut_dims.push(j);
        let node = self.nodes.len();
        self.nodes.push(CutNode {
            dim: j as u32,
            b,
            kids: [u32::MAX, u32::MAX],
        });
        let lkid = self.split(left);
        let rkid = self.split(right);
        self.nodes[node].kids = [lkid, rkid];
        node as u32
    }

    fn leaf(&mut self, r: Region) -> u32 {
        self.leaves.push(Leaf {
            lo: r.lo,
            hi: r.hi,
            smin: r.smin,
            smax: r.smax,
        });
        LEAF_BIT | (self.leaves.len() - 1) as u32
    }

    /// Finds the best cut of one region: dimensions in descending span
    /// order (data-clipped box spans), each probed at the two grid
    /// boundaries bracketing the region's balance quantile; the first
    /// boundary with both sides non-empty wins. Returns `(dim, boundary,
    /// left_slots, right_slots)` with the coordinate test `x < boundary`
    /// deciding sides.
    #[allow(clippy::type_complexity)]
    fn cut_region(&self, r: &Region) -> Option<(usize, f64, Vec<u32>, Vec<u32>)> {
        let dim = self.cols.len();
        let n = r.slots.len();
        let mut dims: Vec<usize> = (0..dim).collect();
        dims.sort_by(|&a, &b| (r.smax[b] - r.smin[b]).total_cmp(&(r.smax[a] - r.smin[a])));

        // Left child's share of the region's points under the ⌊k/2⌋
        // budget.
        let kl = r.k / 2;
        let stride = n.div_ceil(QUANTILE_SAMPLE);
        for &j in &dims {
            let col = &self.cols[j];
            let mut vals: Vec<f64> = r
                .slots
                .iter()
                .step_by(stride)
                .map(|&g| col[g as usize])
                .collect();
            let target = (vals.len() * kl / r.k).clamp(1, vals.len() - 1);
            let (_, &mut v, _) = vals.select_nth_unstable_by(target, f64::total_cmp);
            // The two cell boundaries bracketing the quantile value v:
            // the upper one keeps v (a real point of the region) on the
            // left, so the left side is non-empty by construction; the
            // lower one keeps v on the right, so the right side is. Only
            // a region whose points all share one ε-column in dimension j
            // rejects both.
            let c = ((v - self.gmin[j]) / self.epsilon).floor();
            for b in [
                self.gmin[j] + (c + 1.0) * self.epsilon,
                self.gmin[j] + c * self.epsilon,
            ] {
                // Count first (a branch-free reduction the compiler can
                // vectorize), fill only once the boundary is known good:
                // the coordinate test is a coin flip near the quantile,
                // and a predicted branch per point costs more than the
                // whole count.
                let lcnt: usize = r
                    .slots
                    .iter()
                    .map(|&g| (col[g as usize] < b) as usize)
                    .sum();
                if lcnt == 0 || lcnt == n {
                    continue;
                }
                // Single output buffer, branch-free cursor select: left
                // side fills from the front, right side from `lcnt`.
                // Point order (ascending global id) is preserved on both
                // sides.
                let mut buf = vec![0u32; n];
                let (mut li, mut ri) = (0usize, lcnt);
                for &g in &r.slots {
                    let is_left = (col[g as usize] < b) as usize;
                    let idx = if is_left == 1 { li } else { ri };
                    buf[idx] = g;
                    li += is_left;
                    ri += 1 - is_left;
                }
                let right = buf.split_off(lcnt);
                return Some((j, b, buf, right));
            }
        }
        None
    }
}

/// Sample cap for the balance-quantile estimate: larger regions stride-
/// sample this many coordinates instead of selecting over all of them.
/// The cut snaps to an ε-grid boundary anyway, so quantile precision
/// beyond a fraction of a percent buys nothing.
const QUANTILE_SAMPLE: usize = 4_096;

fn whole_shard(data: &Dataset) -> Shard {
    Shard {
        id: 0,
        lo: vec![f64::NEG_INFINITY; data.dim()],
        hi: vec![f64::INFINITY; data.dim()],
        data: data.clone(),
        owned: data.len(),
        global_ids: (0..data.len() as u32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datasets::synthetic::{clustered, uniform};

    #[test]
    fn ownership_partitions_the_dataset() {
        let data = uniform(3, 3000, 11);
        let part = partition(&data, 5.0, 4).unwrap();
        assert!(part.shards.len() >= 2, "uniform 3-D data should cut");
        let mut owned: Vec<u32> = part
            .shards
            .iter()
            .flat_map(|s| s.global_ids[..s.owned].iter().copied())
            .collect();
        owned.sort_unstable();
        assert_eq!(owned, (0..3000u32).collect::<Vec<_>>());
        assert_eq!(part.owned_points(), 3000);
    }

    #[test]
    fn owns_matches_the_assignment() {
        let data = uniform(2, 2000, 12);
        let part = partition(&data, 2.0, 6).unwrap();
        for (g, p) in data.iter().enumerate() {
            let owners: Vec<usize> = part
                .shards
                .iter()
                .filter(|s| s.owns(p))
                .map(|s| s.id)
                .collect();
            assert_eq!(owners.len(), 1, "point {g} owned by {owners:?}");
            let s = &part.shards[owners[0]];
            assert!(s.global_ids[..s.owned].contains(&(g as u32)));
        }
    }

    #[test]
    fn shard_data_matches_global_coordinates() {
        let data = uniform(2, 800, 12);
        let part = partition(&data, 4.0, 3).unwrap();
        for s in &part.shards {
            assert_eq!(s.data.len(), s.global_ids.len());
            for (local, &g) in s.global_ids.iter().enumerate() {
                assert_eq!(s.data.point(local), data.point(g as usize));
            }
        }
    }

    #[test]
    fn halo_contains_every_near_boundary_foreign_point() {
        // For every shard, every foreign point inside the ε-widened box
        // must appear as a ghost.
        let data = uniform(2, 2000, 13);
        let eps = 3.0;
        let part = partition(&data, eps, 4).unwrap();
        for s in &part.shards {
            let present: std::collections::HashSet<u32> = s.global_ids.iter().copied().collect();
            for (g, p) in data.iter().enumerate() {
                if s.in_halo(p, eps) {
                    assert!(
                        present.contains(&(g as u32)),
                        "point {g} missing from halo of shard {}",
                        s.id
                    );
                }
            }
        }
    }

    #[test]
    fn owned_points_lie_inside_their_box() {
        let data = uniform(2, 1500, 14);
        let part = partition(&data, 2.0, 5).unwrap();
        for s in &part.shards {
            for local in 0..s.owned {
                assert!(s.owns(s.data.point(local)), "shard {} box violated", s.id);
            }
        }
    }

    #[test]
    fn cuts_are_grid_aligned_in_every_dimension() {
        let data = uniform(2, 2000, 15);
        let eps = 2.5;
        let part = partition(&data, eps, 4).unwrap();
        let mins = data.min_per_dim().unwrap();
        for s in &part.shards {
            for (j, &m) in mins.iter().enumerate() {
                for b in [s.lo[j], s.hi[j]] {
                    if b.is_finite() {
                        let k = (b - (m - eps)) / eps;
                        assert!(
                            (k - k.round()).abs() < 1e-9,
                            "bound {b} (dim {j}) is not a cell boundary (k = {k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kd_cuts_use_multiple_dimensions() {
        // A square uniform cloud split 4 ways should cut both dimensions
        // (2×2 boxes), not stack 4 slabs along one axis.
        let data = uniform(2, 4000, 20);
        let part = partition(&data, 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 4);
        let mut dims = part.cut_dims.clone();
        dims.sort_unstable();
        dims.dedup();
        assert_eq!(dims, vec![0, 1], "cuts: {:?}", part.cut_dims);
    }

    #[test]
    fn boxes_ghost_less_than_slabs_at_high_shard_counts() {
        // The tentpole claim in miniature: at 8 shards on square data the
        // kd boxes (4×2) replicate far less than 8 slabs would. The slab
        // ghost fraction for width-w slabs is ~2ε/w per internal face;
        // assert the kd partition stays under the slab bound.
        let data = uniform(2, 20_000, 21);
        let eps = 1.0;
        let part = partition(&data, eps, 8).unwrap();
        assert_eq!(part.shards.len(), 8);
        // 8 slabs over a 100-unit extent: width 12.5, interior slabs see
        // two ε bands ≈ 2·1/12.5 = 16% each ⇒ ~14% overall. The 4×2 kd
        // grid halves one direction's face count; expect clearly less.
        assert!(
            part.ghost_fraction() < 0.14,
            "kd ghost fraction {:.3} not better than slabs",
            part.ghost_fraction()
        );
    }

    #[test]
    fn single_shard_has_no_ghosts() {
        let data = uniform(2, 500, 16);
        let part = partition(&data, 1.0, 1).unwrap();
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].ghosts(), 0);
        assert_eq!(part.shards[0].owned, 500);
        assert!(part.cut_dims.is_empty());
    }

    #[test]
    fn empty_dataset_yields_one_empty_shard() {
        let part = partition(&Dataset::new(3), 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].data.len(), 0);
        assert_eq!(part.ghost_points(), 0);
        assert_eq!(part.ghost_fraction(), 0.0);
    }

    #[test]
    fn narrow_data_degrades_to_fewer_shards() {
        // All points inside one ε cell in every dimension: no valid cut.
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push(&[5.0 + (i as f64) * 1e-4, 5.0 + (i as f64) * 1e-4]);
        }
        let part = partition(&d, 10.0, 8).unwrap();
        assert_eq!(part.shards.len(), 1);
    }

    #[test]
    fn equal_count_cuts_balance_owned_points() {
        let data = uniform(2, 4000, 17);
        let part = partition(&data, 1.0, 4).unwrap();
        assert_eq!(part.shards.len(), 4);
        for s in &part.shards {
            assert!(
                s.owned >= 500 && s.owned <= 2000,
                "shard owns {} of 4000",
                s.owned
            );
        }
    }

    #[test]
    fn skewed_data_still_partitions_exhaustively() {
        let data = clustered(2, 3000, 3, 1.0, 0.05, 18);
        let part = partition(&data, 0.5, 4).unwrap();
        assert_eq!(part.owned_points(), 3000);
        assert!(!part.shards.is_empty());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let data = uniform(2, 10, 19);
        assert!(matches!(
            partition(&data, 0.0, 2),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            partition(&data, f64::NAN, 2),
            Err(GridBuildError::InvalidEpsilon(_))
        ));
    }
}
